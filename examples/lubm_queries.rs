//! Runs the paper's 26-query LUBM workload (Appendix A) against
//! SuccinctEdge and prints per-query latency and cardinality.
//!
//! ```text
//! cargo run --release --example lubm_queries            # full 100K graph
//! cargo run --release --example lubm_queries -- 10000   # 10K subset
//! ```

use std::time::Instant;
use succinct_edge::datagen::{lubm, workload};
use succinct_edge::ontology::lubm_ontology;
use succinct_edge::sparql::{execute_query, QueryOptions};
use succinct_edge::store::SuccinctEdgeStore;

fn main() {
    let limit: Option<usize> = std::env::args().nth(1).and_then(|a| a.parse().ok());
    let mut graph = lubm::generate(1, 42);
    if let Some(n) = limit {
        graph.truncate(n);
    }
    println!("LUBM graph: {} triples", graph.len());

    let onto = lubm_ontology();
    let t0 = Instant::now();
    let store = SuccinctEdgeStore::build(&onto, &graph).expect("LUBM graph is valid");
    println!(
        "store built in {:.1} ms ({} type / {} object / {} datatype triples)\n",
        t0.elapsed().as_secs_f64() * 1e3,
        store.stats().n_type_triples,
        store.stats().n_object_triples,
        store.stats().n_datatype_triples,
    );

    println!("{:<5} {:>9} {:>12}  notes", "query", "answers", "time (ms)");
    for wq in workload::full_workload(&graph) {
        let opts = if wq.reasoning {
            QueryOptions::default()
        } else {
            QueryOptions::without_reasoning()
        };
        let t = Instant::now();
        let rs = execute_query(&store, &wq.text, &opts).expect("workload query runs");
        let dt = t.elapsed();
        let note = match (wq.reasoning, wq.paper_cardinality) {
            (true, _) => "RDFS reasoning (LiteMat intervals)",
            (false, Some(_)) => "",
            _ => "",
        };
        println!(
            "{:<5} {:>9} {:>12.3}  {}",
            wq.id,
            rs.len(),
            dt.as_secs_f64() * 1e3,
            note
        );
    }
}
