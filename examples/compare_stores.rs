//! Side-by-side comparison of the three architectures on one dataset:
//! SuccinctEdge (single succinct index), the in-memory multi-index
//! baseline, and the disk-based B+tree baseline — a miniature of the
//! paper's Figures 8–11 plus a reasoning query.
//!
//! ```text
//! cargo run --release --example compare_stores            # 10K triples
//! cargo run --release --example compare_stores -- 50000
//! ```

use std::time::Instant;
use succinct_edge::baselines::{rewrite_with_ontology, DiskStore, MultiIndexStore};
use succinct_edge::datagen::{lubm, workload};
use succinct_edge::ontology::lubm_ontology;
use succinct_edge::sparql::{execute_query, parse_query, QueryOptions};
use succinct_edge::store::SuccinctEdgeStore;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);
    let mut graph = lubm::generate(1, 42);
    graph.truncate(n);
    let onto = lubm_ontology();
    let dicts = onto.encode().expect("ontology encodes");
    println!("dataset: {} triples\n", graph.len());

    // ---- construction (Figure 8) -------------------------------------------
    let t = Instant::now();
    let se = SuccinctEdgeStore::build(&onto, &graph).expect("builds");
    let t_se = t.elapsed();
    let t = Instant::now();
    let mem = MultiIndexStore::build(&graph);
    let t_mem = t.elapsed();
    let t = Instant::now();
    let disk = DiskStore::build_temp(&graph, 256).expect("builds");
    let t_disk = t.elapsed();
    println!("construction time (Fig 8):");
    println!("  SuccinctEdge     {:>9.2} ms", t_se.as_secs_f64() * 1e3);
    println!("  MultiIndex (mem) {:>9.2} ms", t_mem.as_secs_f64() * 1e3);
    println!("  DiskStore        {:>9.2} ms", t_disk.as_secs_f64() * 1e3);

    // ---- sizes (Figures 9-11) ----------------------------------------------
    println!("\ndictionary size persisted (Fig 9):");
    println!(
        "  SuccinctEdge     {:>9.1} KiB",
        se.dictionary_serialized_size() as f64 / 1024.0
    );
    println!(
        "  baselines        {:>9.1} KiB",
        mem.dictionary().serialized_size() as f64 / 1024.0
    );
    println!("\ntriple storage without dictionary (Fig 10):");
    println!(
        "  SuccinctEdge     {:>9.1} KiB  (1 succinct index)",
        se.triple_serialized_size() as f64 / 1024.0
    );
    println!(
        "  MultiIndex (mem) {:>9.1} KiB  (3 sorted permutations)",
        mem.triple_serialized_size() as f64 / 1024.0
    );
    println!(
        "  DiskStore        {:>9.1} KiB  (3 B+trees, page granular)",
        disk.triple_serialized_size() as f64 / 1024.0
    );
    println!("\nRAM footprint (Fig 11):");
    println!(
        "  SuccinctEdge     {:>9.1} KiB",
        se.memory_footprint() as f64 / 1024.0
    );
    println!(
        "  MultiIndex (mem) {:>9.1} KiB",
        mem.memory_footprint() as f64 / 1024.0
    );

    // ---- one reasoning query (Figure 14) ------------------------------------
    let r2 = workload::r_queries(&graph)
        .into_iter()
        .find(|q| q.id == "R2")
        .expect("R2 exists");
    let t = Instant::now();
    let a = execute_query(&se, &r2.text, &QueryOptions::default()).expect("runs");
    let t_a = t.elapsed();
    let parsed = parse_query(&r2.text).expect("parses");
    let (rewritten, branches) = rewrite_with_ontology(&parsed, &dicts).expect("rewrites");
    let t = Instant::now();
    let b = mem.query(&rewritten).expect("runs");
    let t_b = t.elapsed();
    let t = Instant::now();
    let c = disk.query(&rewritten).expect("runs");
    let t_c = t.elapsed();
    println!("\nreasoning query R2 (Fig 14):");
    println!(
        "  SuccinctEdge     {:>9.2} ms  ({} answers, LiteMat intervals, no rewriting)",
        t_a.as_secs_f64() * 1e3,
        a.len()
    );
    println!(
        "  MultiIndex (mem) {:>9.2} ms  ({} answers, UNION rewriting: {branches} branches)",
        t_b.as_secs_f64() * 1e3,
        b.len()
    );
    println!(
        "  DiskStore        {:>9.2} ms  ({} answers, UNION rewriting: {branches} branches)",
        t_c.as_secs_f64() * 1e3,
        c.len()
    );
    let stats = disk.io_stats();
    println!(
        "\ndisk baseline IO: {} page reads, {} page writes, {} pool hits / {} misses",
        stats.disk_reads, stats.disk_writes, stats.hits, stats.misses
    );
    disk.destroy().expect("cleanup");
}
