//! The paper's §2 anomaly scenario, incremental edition.
//!
//! `water_anomaly.rs` follows the paper's execution model: one fresh
//! SuccinctEdge store per graph instance, the continuous query runs once
//! per instance. This example runs the same pipeline through `se-stream`
//! twice:
//!
//! 1. a single long-lived [`HybridStore`] (delta overlay, inline
//!    compaction), and
//! 2. the sharded engine — [`ShardedHybridStore`] with the water
//!    workload's per-station-group routing policy, **background**
//!    per-shard compaction, and the **persistent worker pool forced on**
//!    (these sensor batches are far below the adaptive break-even, which
//!    is precisely the regime the parked per-shard workers exist for) —
//!    behind the same [`StreamSession`] API.
//!
//! Both ingest the same measurement batches (with a sliding retention
//! window deleting expired observations), evaluate the same registered
//! anomaly query per batch, and must raise identical alerts; the sharded
//! run reports its apply-latency tail to show compaction leaving the hot
//! path.
//!
//! ```text
//! cargo run --example stream_anomaly
//! ```

use std::sync::Arc;
use succinct_edge::datagen::water::{generate_stream, water_shard_group, StreamBatch, WaterConfig};
use succinct_edge::datagen::workload::water_anomaly_query;
use succinct_edge::ontology::water_ontology;
use succinct_edge::rdf::Graph;
use succinct_edge::sparql::QueryOptions;
use succinct_edge::store::TripleSource;
use succinct_edge::stream::{
    CompactionPolicy, HybridStore, IngestMode, ShardPolicy, ShardedHybridStore, StreamSession,
    StreamStore,
};

/// Streams every batch through one engine, printing a per-batch line
/// (`extra` appends engine-specific columns) and each alert. Returns the
/// alert total and the per-batch apply latencies in milliseconds.
fn drive<S: StreamStore>(
    label: &str,
    session: &mut StreamSession<S>,
    batches: &[StreamBatch],
    extra: impl Fn(&S) -> String,
) -> (usize, Vec<f64>) {
    session
        .register_query(
            "water-anomaly",
            &water_anomaly_query(),
            QueryOptions::default(),
        )
        .expect("workload query parses");
    let mut total_alerts = 0usize;
    let mut latencies_ms = Vec::with_capacity(batches.len());
    for (tick, batch) in batches.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let outcome = session
            .apply_batch(&batch.inserts, &batch.deletes)
            .expect("batch applies");
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        latencies_ms.push(dt);
        let alerts = &outcome.results[0].results;
        println!(
            "{label} batch {tick:2}: +{:<3} -{:<3} | store {:5} triples{} | {dt:>8.3} ms | {} alert(s){}",
            outcome.report.inserted,
            outcome.report.deleted,
            session.store().len(),
            extra(session.store()),
            alerts.len(),
            if outcome.report.compacted { "  [compacted]" } else { "" },
        );
        for row in &alerts.rows {
            let station = row[0].as_ref().map_or("?", |t| t.str_value());
            let value = row[3].as_ref().map_or("?", |t| t.str_value());
            println!("    ALERT station={station} rawValue={value}");
        }
        total_alerts += alerts.len();
    }
    (total_alerts, latencies_ms)
}

fn p99(latencies: &[f64]) -> f64 {
    let mut v = latencies.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[((v.len() - 1) as f64 * 0.99).round() as usize]
}

fn main() {
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.25,
        seed: 42,
    };
    let batches = generate_stream(&cfg, 20, 4);
    let policy = CompactionPolicy { max_overlay: 160 };
    println!(
        "continuous query registered once:\n{}\n",
        water_anomaly_query()
    );

    // ---- engine 1: single hybrid store, inline compaction ------------------
    let store = HybridStore::build(&onto, &Graph::new())
        .expect("empty baseline builds")
        .with_policy(policy);
    let mut single = StreamSession::new(store);
    let (alerts_single, lat_single) = drive("single ", &mut single, &batches, |_| String::new());
    let len_single = single.store().len();

    // ---- engine 2: sharded store, background compaction --------------------
    println!();
    let sharded = ShardedHybridStore::build_with_policy(
        &onto,
        &Graph::new(),
        3,
        ShardPolicy::ByIri(Arc::new(water_shard_group)),
    )
    .expect("empty sharded baseline builds")
    .with_policy(policy)
    .with_background_compaction(true)
    .with_ingest_mode(IngestMode::Pooled);
    let mut session = StreamSession::new(sharded);
    let (alerts_sharded, lat_sharded) = drive("sharded", &mut session, &batches, |s| {
        format!(
            " | overlay {:3} | pending {}",
            s.overlay_len(),
            s.pending_compactions()
        )
    });
    session.store_mut().flush_compactions();
    let len_sharded = session.store().len();

    let stats = session.store().stats();
    println!(
        "\nsingle : {alerts_single} alerts | {len_single} triples | p99 apply {:.3} ms",
        p99(&lat_single)
    );
    println!(
        "sharded: {alerts_sharded} alerts | {len_sharded} triples | p99 apply {:.3} ms | {} compactions ({} background) across {} shards | {} batches pooled over {} parked workers",
        p99(&lat_sharded),
        stats.compactions,
        stats.background_compactions,
        session.store().shard_count(),
        stats.pooled_batches,
        session.store().worker_threads(),
    );
    assert_eq!(
        alerts_single, alerts_sharded,
        "engines must agree on alerts"
    );
    assert_eq!(len_single, len_sharded, "engines must agree on the store");
    println!(
        "note: both engines raise identical alerts — the sliding window \
         retires old observations, both differently-annotated stations keep \
         being caught by the single reasoning-enabled query (§2), and the \
         sharded engine keeps layer rebuilds off the ingest hot path."
    );
}
