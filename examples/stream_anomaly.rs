//! The paper's §2 anomaly scenario, incremental edition.
//!
//! `water_anomaly.rs` follows the paper's execution model: one fresh
//! SuccinctEdge store per graph instance, the continuous query runs once
//! per instance. This example runs the same pipeline through `se-stream`
//! twice:
//!
//! 1. a single long-lived [`HybridStore`] (delta overlay, inline
//!    compaction), and
//! 2. the sharded engine — [`ShardedHybridStore`] with the water
//!    workload's per-station-group routing policy, **background**
//!    per-shard compaction, and the **persistent worker pool forced on**
//!    (these sensor batches are far below the adaptive break-even, which
//!    is precisely the regime the parked per-shard workers exist for) —
//!    behind the same [`StreamSession`] API.
//!
//! Both ingest the same measurement batches (with a sliding retention
//! window deleting expired observations), evaluate the same registered
//! anomaly query per batch, and must raise identical alerts; the sharded
//! run reports its apply-latency tail to show compaction leaving the hot
//! path.
//!
//! A third run demonstrates **v02 recovery**: the sharded session is
//! killed mid-stream (checkpointed with the O(delta) `save` — no
//! compaction — and dropped), resumed from the sharded manifest with the
//! same routing hook, and must raise the *identical alert sequence* as
//! the uninterrupted run.
//!
//! ```text
//! cargo run --example stream_anomaly
//! ```

use std::sync::Arc;
use succinct_edge::datagen::water::{generate_stream, water_shard_group, StreamBatch, WaterConfig};
use succinct_edge::datagen::workload::water_anomaly_query;
use succinct_edge::ontology::water_ontology;
use succinct_edge::rdf::Graph;
use succinct_edge::sparql::QueryOptions;
use succinct_edge::store::TripleSource;
use succinct_edge::stream::{
    CompactionPolicy, HybridStore, IngestMode, ShardPolicy, ShardedHybridStore, StreamSession,
    StreamStore,
};

/// Registers the §2 anomaly query on a session.
fn register<S: StreamStore>(session: &mut StreamSession<S>) {
    session
        .register_query(
            "water-anomaly",
            &water_anomaly_query(),
            QueryOptions::default(),
        )
        .expect("workload query parses");
}

/// Streams `batches` through one engine, printing a per-batch line
/// (`extra` appends engine-specific columns) and each alert. `tick0`
/// offsets the printed batch numbers for resumed runs. Returns the
/// per-batch alert rows (sorted — the comparable alert sequence) and the
/// per-batch apply latencies in milliseconds.
fn drive<S: StreamStore>(
    label: &str,
    session: &mut StreamSession<S>,
    batches: &[StreamBatch],
    tick0: usize,
    extra: impl Fn(&S) -> String,
) -> (Vec<Vec<String>>, Vec<f64>) {
    let mut alert_rows = Vec::with_capacity(batches.len());
    let mut latencies_ms = Vec::with_capacity(batches.len());
    for (i, batch) in batches.iter().enumerate() {
        let tick = tick0 + i;
        let t0 = std::time::Instant::now();
        let outcome = session
            .apply_batch(&batch.inserts, &batch.deletes)
            .expect("batch applies");
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        latencies_ms.push(dt);
        let alerts = &outcome.results[0].results;
        println!(
            "{label} batch {tick:2}: +{:<3} -{:<3} | store {:5} triples{} | {dt:>8.3} ms | {} alert(s){}",
            outcome.report.inserted,
            outcome.report.deleted,
            session.store().len(),
            extra(session.store()),
            alerts.len(),
            if outcome.report.compacted { "  [compacted]" } else { "" },
        );
        for row in &alerts.rows {
            let station = row[0].as_ref().map_or("?", |t| t.str_value());
            let value = row[3].as_ref().map_or("?", |t| t.str_value());
            println!("    ALERT station={station} rawValue={value}");
        }
        let mut rows: Vec<String> = alerts.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        alert_rows.push(rows);
    }
    (alert_rows, latencies_ms)
}

fn p99(latencies: &[f64]) -> f64 {
    let mut v = latencies.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[((v.len() - 1) as f64 * 0.99).round() as usize]
}

fn main() {
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.25,
        seed: 42,
    };
    let batches = generate_stream(&cfg, 20, 4);
    let policy = CompactionPolicy { max_overlay: 160 };
    println!(
        "continuous query registered once:\n{}\n",
        water_anomaly_query()
    );

    // ---- engine 1: single hybrid store, inline compaction ------------------
    let store = HybridStore::build(&onto, &Graph::new())
        .expect("empty baseline builds")
        .with_policy(policy);
    let mut single = StreamSession::new(store);
    register(&mut single);
    let (rows_single, lat_single) = drive("single ", &mut single, &batches, 0, |_| String::new());
    let alerts_single: usize = rows_single.iter().map(Vec::len).sum();
    let len_single = single.store().len();

    // ---- engine 2: sharded store, background compaction --------------------
    println!();
    let build_sharded = || {
        ShardedHybridStore::build_with_policy(
            &onto,
            &Graph::new(),
            3,
            ShardPolicy::ByIri(Arc::new(water_shard_group)),
        )
        .expect("empty sharded baseline builds")
        .with_policy(policy)
        .with_background_compaction(true)
        .with_ingest_mode(IngestMode::Pooled)
    };
    let sharded_extra = |s: &ShardedHybridStore| {
        format!(
            " | overlay {:3} | pending {}",
            s.overlay_len(),
            s.pending_compactions()
        )
    };
    let mut session = StreamSession::new(build_sharded());
    register(&mut session);
    let (rows_sharded, lat_sharded) = drive("sharded", &mut session, &batches, 0, sharded_extra);
    let alerts_sharded: usize = rows_sharded.iter().map(Vec::len).sum();
    session.store_mut().flush_compactions();
    let len_sharded = session.store().len();

    // ---- engine 3: kill mid-stream, recover from the v02 manifest ----------
    println!();
    let ckpt = std::env::temp_dir().join(format!("se-anomaly-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let restart_at = batches.len() / 2;
    let mut doomed = StreamSession::new(build_sharded());
    register(&mut doomed);
    let (rows_before, _) = drive(
        "recover",
        &mut doomed,
        &batches[..restart_at],
        0,
        sharded_extra,
    );
    let dirty_overlay = doomed.store().overlay_len();
    let report = doomed.save(&ckpt).expect("checkpoint writes");
    println!(
        "recover checkpoint @ batch {restart_at}: overlay {dirty_overlay} entries captured raw \
         (no compaction), {} baseline file(s) + {} delta bytes written",
        report.baseline_files_written, report.delta_bytes,
    );
    drop(doomed); // the "kill": workers join, in-memory state is gone
    let reloaded = ShardedHybridStore::load_with_policy(
        &ckpt,
        &onto,
        Some(ShardPolicy::ByIri(Arc::new(water_shard_group))),
    )
    .expect("manifest loads")
    .with_background_compaction(true)
    .with_ingest_mode(IngestMode::Pooled);
    let mut recovered = StreamSession::resume_with_store(&ckpt, reloaded).expect("session resumes");
    println!(
        "recover restart: {} triples, {} continuous query re-registered from session.v02",
        recovered.store().len(),
        recovered.registry().len(),
    );
    let (rows_after, _) = drive(
        "recover",
        &mut recovered,
        &batches[restart_at..],
        restart_at,
        sharded_extra,
    );
    recovered.store_mut().flush_compactions();
    let rows_recovered: Vec<Vec<String>> = rows_before.into_iter().chain(rows_after).collect();
    assert_eq!(
        rows_recovered, rows_sharded,
        "the recovered session must raise the identical alert sequence"
    );
    let len_recovered = recovered.store().len();
    let _ = std::fs::remove_dir_all(&ckpt);

    let stats = session.store().stats();
    println!(
        "\nsingle : {alerts_single} alerts | {len_single} triples | p99 apply {:.3} ms",
        p99(&lat_single)
    );
    println!(
        "sharded: {alerts_sharded} alerts | {len_sharded} triples | p99 apply {:.3} ms | {} compactions ({} background) across {} shards | {} batches pooled over {} parked workers",
        p99(&lat_sharded),
        stats.compactions,
        stats.background_compactions,
        session.store().shard_count(),
        stats.pooled_batches,
        session.store().worker_threads(),
    );
    println!(
        "recover: killed after batch {restart_at}, resumed from the sharded \
         manifest — identical alert sequence, {len_recovered} triples"
    );
    assert_eq!(
        alerts_single, alerts_sharded,
        "engines must agree on alerts"
    );
    assert_eq!(len_single, len_sharded, "engines must agree on the store");
    assert_eq!(
        len_single, len_recovered,
        "recovery must agree on the store"
    );
    println!(
        "note: both engines raise identical alerts — the sliding window \
         retires old observations, both differently-annotated stations keep \
         being caught by the single reasoning-enabled query (§2), the \
         sharded engine keeps layer rebuilds off the ingest hot path, and a \
         mid-stream kill + v02 reload reproduces the alert stream exactly."
    );
}
