//! The paper's §2 anomaly scenario, incremental edition.
//!
//! `water_anomaly.rs` follows the paper's execution model: one fresh
//! SuccinctEdge store per graph instance, the continuous query runs once
//! per instance. This example runs the same pipeline through `se-stream`:
//! one long-lived [`HybridStore`] ingests measurement batches (with a
//! sliding retention window deleting expired observations), the anomaly
//! query is registered once and re-evaluated per batch, and the overlay
//! periodically compacts back into the succinct baseline.
//!
//! ```text
//! cargo run --example stream_anomaly
//! ```

use succinct_edge::datagen::water::{generate_stream, WaterConfig};
use succinct_edge::datagen::workload::water_anomaly_query;
use succinct_edge::ontology::water_ontology;
use succinct_edge::rdf::Graph;
use succinct_edge::sparql::QueryOptions;
use succinct_edge::store::TripleSource;
use succinct_edge::stream::{CompactionPolicy, HybridStore, StreamSession};

fn main() {
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.25,
        seed: 42,
    };
    let batches = generate_stream(&cfg, 20, 4);

    // Empty baseline; everything arrives through the stream.
    let store = HybridStore::build(&onto, &Graph::new())
        .expect("empty baseline builds")
        .with_policy(CompactionPolicy { max_overlay: 160 });
    let mut session = StreamSession::new(store);
    session
        .register_query(
            "water-anomaly",
            &water_anomaly_query(),
            QueryOptions::default(),
        )
        .expect("workload query parses");

    println!(
        "continuous query registered once:\n{}\n",
        water_anomaly_query()
    );
    let mut total_alerts = 0usize;
    for (tick, batch) in batches.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let outcome = session
            .apply_batch(&batch.inserts, &batch.deletes)
            .expect("batch applies");
        let dt = t0.elapsed();
        let alerts = &outcome.results[0].results;
        println!(
            "batch {tick:2}: +{:<3} -{:<3} triples | store {:5} triples, overlay {:4} | {:>8.3} ms | {} alert(s){}",
            outcome.report.inserted,
            outcome.report.deleted,
            session.store().len(),
            session.store().delta().overlay_len(),
            dt.as_secs_f64() * 1e3,
            alerts.len(),
            if outcome.report.compacted { "  [compacted]" } else { "" },
        );
        for row in &alerts.rows {
            let station = row[0].as_ref().map_or("?", |t| t.str_value());
            let value = row[3].as_ref().map_or("?", |t| t.str_value());
            println!("    ALERT station={station} rawValue={value}");
        }
        total_alerts += alerts.len();
    }
    let stats = session.store().stats();
    println!(
        "\n{total_alerts} alerts over {} batches | {} compactions | ingested +{} / -{}",
        batches.len(),
        stats.compactions,
        stats.total_inserted,
        stats.total_deleted,
    );
    println!(
        "note: the sliding window retires old observations, so alerts age out \
         instead of accumulating — and both differently-annotated stations \
         keep being caught by the single reasoning-enabled query (§2)."
    );
}
