//! The paper's motivating example (§2): anomaly detection over a potable
//! water distribution network at the edge.
//!
//! Two stations measure pressure with *different* QUDT annotations and
//! units (Bar at station 1, hectopascal at station 2). One single SPARQL
//! query — written against the abstract `qudt:PressureUnit` concept —
//! catches anomalies on both, because LiteMat reasoning resolves the unit
//! hierarchy and a BIND normalizes the units.
//!
//! ```text
//! cargo run --example water_anomaly
//! ```

use succinct_edge::datagen::water::{generate_with, WaterConfig};
use succinct_edge::datagen::workload::water_anomaly_query;
use succinct_edge::ontology::water_ontology;
use succinct_edge::sparql::{exec, parse_query, QueryOptions};
use succinct_edge::store::SuccinctEdgeStore;

fn main() {
    let onto = water_ontology();
    let query = parse_query(&water_anomaly_query()).expect("workload query parses");
    let opts = QueryOptions::default();
    println!("continuous query:\n{}\n", water_anomaly_query());

    // Simulate the edge deployment: a stream of measurement graph
    // instances, one SuccinctEdge store per instance, the query runs once
    // per instance (the paper's execution model).
    let mut total_alerts = 0usize;
    for tick in 0..10u64 {
        let graph = generate_with(&WaterConfig {
            stations: 2,
            rounds: 6,
            anomaly_rate: 0.25,
            seed: 42 + tick,
        });
        let t0 = std::time::Instant::now();
        let store = SuccinctEdgeStore::build(&onto, &graph).expect("sensor graph is valid");
        let build_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        let alerts = exec::execute(&store, &query, &opts).expect("query runs");
        let query_time = t1.elapsed();

        println!(
            "instance {tick:2}: {} triples, build {:>7.3} ms, query {:>7.3} ms, {} alert(s)",
            graph.len(),
            build_time.as_secs_f64() * 1e3,
            query_time.as_secs_f64() * 1e3,
            alerts.len()
        );
        for row in &alerts.rows {
            let station = row[0].as_ref().map_or("?", |t| t.str_value());
            let ts = row[2].as_ref().map_or("?", |t| t.str_value());
            let value = row[3].as_ref().map_or("?", |t| t.str_value());
            println!("    ALERT station={station} time={ts} rawValue={value}");
            total_alerts += 1;
        }
    }
    println!("\n{total_alerts} alerts over 10 instances");
    println!(
        "note: alerts appear for BOTH stations although they annotate pressure \
         with different concepts (PressureOrStressUnit vs PressureUnit) and \
         different units (Bar vs hectopascal) — that is §2's point."
    );
}
