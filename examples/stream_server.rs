//! The §2 anomaly scenario served over TCP: one `se-server`, many
//! concurrent clients.
//!
//! The server owns a sharded streaming store; around it:
//!
//! * a **subscriber** registers the paper's anomaly query and receives
//!   its full answer set once, then only per-tick changes — ticks that
//!   leave the answers untouched push nothing, and the client folds the
//!   change frames back into the full set;
//! * a **feeder** streams the water measurement batches (with the
//!   sliding retention window deleting expired observations);
//! * four **concurrent writers** ingest disjoint side-channel readings
//!   at the same time, exercising group-commit coalescing;
//! * a **reader** runs point queries against epoch-pinned snapshots
//!   while all of the above is in flight — never blocked by ingest.
//!
//! The pushed alert sequence must equal the one produced by a local
//! single-threaded [`StreamSession`] replay of the same batches, and the
//! run asserts it.
//!
//! ```text
//! cargo run --example stream_server
//! ```
//!
//! Two extra modes drive the durability story end to end (the CI
//! crash-recovery job runs them back to back):
//!
//! ```text
//! cargo run --example stream_server -- --crash <dir> <batches>
//! cargo run --example stream_server -- --recover <dir> <batches>
//! ```
//!
//! `--crash` serves a WAL-attached store, ingests `<batches>` ack-gated
//! batches over TCP and then kills the process without any shutdown —
//! no writer drain, no checkpoint, destructors skipped. `--recover`
//! reopens the directory the way a restarted server would, asserts the
//! recovered epoch equals every acked batch, re-serves the data and
//! shuts down gracefully.

use std::time::Duration;
use succinct_edge::datagen::water::{generate_stream, WaterConfig};
use succinct_edge::datagen::workload::water_anomaly_query;
use succinct_edge::ontology::water_ontology;
use succinct_edge::rdf::{Graph, Term, Triple};
use succinct_edge::server::{Client, Server, ServerConfig};
use succinct_edge::sparql::{QueryOptions, ResultSet};
use succinct_edge::stream::{ShardedHybridStore, StreamSession, WalConfig};

/// Sorted row strings: result sets compare as multisets.
fn normalize(rs: &ResultSet) -> Vec<String> {
    let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

/// Writer `k`'s side-channel batch: disjoint per-writer IRIs, so the
/// concurrent ingest commutes with the water stream.
fn side_batch(k: usize, round: usize) -> Graph {
    Graph::from_triples((0..4).map(|j| {
        Triple::new(
            Term::iri(format!("http://side.example/meter{k}_{}", round * 4 + j)),
            Term::iri(format!("http://side.example/feed{k}")),
            Term::literal(format!("{}", round * 4 + j)),
        )
    }))
}

/// Batch `i` of the crash workload: three distinct readings, so epoch
/// `e` implies exactly `3 * e` rows under the crash feed.
fn crash_batch(i: u64) -> Graph {
    Graph::from_triples((0..3).map(|j| {
        Triple::new(
            Term::iri(format!("http://crash.example/s{i}_{j}")),
            Term::iri("http://crash.example/feed"),
            Term::literal(format!("{}", i * 3 + j)),
        )
    }))
}

const CRASH_QUERY: &str = "SELECT ?s ?v WHERE { ?s <http://crash.example/feed> ?v }";

/// `--crash`: ingest `batches` ack-gated batches into a WAL-attached
/// server, then die without any shutdown path running.
fn crash_mode(dir: &std::path::Path, batches: u64) -> ! {
    let _ = std::fs::remove_dir_all(dir);
    let mut store =
        ShardedHybridStore::build(&water_ontology(), &Graph::new(), 2).expect("store builds");
    store
        .attach_wal(dir, WalConfig::default())
        .expect("wal attaches");
    let server =
        Server::start(store, "127.0.0.1:0", ServerConfig::default()).expect("server binds");
    let mut c = Client::connect(server.addr()).expect("client connects");
    let mut acked = 0;
    for i in 0..batches {
        acked = c.ingest(&crash_batch(i), &Graph::new()).expect("ack").epoch;
    }
    println!("crash: {acked} batch(es) acked, dying without shutdown");
    // The whole point: no shutdown request, no writer drain, no save —
    // destructors don't run. Every ack above must still be on disk.
    std::process::exit(0);
}

/// `--recover`: reopen the crashed directory, assert nothing acked was
/// lost, and serve the recovered store.
fn recover_mode(dir: &std::path::Path, batches: u64) {
    let store = ShardedHybridStore::load(dir, &water_ontology()).expect("recovery loads");
    assert_eq!(
        store.epoch(),
        batches,
        "recovered epoch must equal the acked batches"
    );
    let server =
        Server::start(store, "127.0.0.1:0", ServerConfig::default()).expect("server binds");
    let mut c = Client::connect(server.addr()).expect("client connects");
    let rows = c
        .query(CRASH_QUERY, &QueryOptions::default())
        .expect("query runs");
    assert_eq!(
        rows.results.len() as u64,
        3 * batches,
        "recovered rows must cover every acked batch"
    );
    let ack = c
        .ingest(&crash_batch(batches), &Graph::new())
        .expect("recovered server takes new batches");
    assert_eq!(ack.epoch, batches + 1);
    c.shutdown().expect("shutdown acked");
    server.join();
    println!(
        "recover: epoch {batches} with {} row(s) — no acked batch lost",
        rows.results.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let [_, mode, dir, batches] = args.as_slice() {
        let dir = std::path::PathBuf::from(dir);
        let batches: u64 = batches.parse().expect("batch count parses");
        match mode.as_str() {
            "--crash" => crash_mode(&dir, batches),
            "--recover" => return recover_mode(&dir, batches),
            other => panic!("unknown mode {other}; use --crash or --recover"),
        }
    }

    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.25,
        seed: 42,
    };
    let batches = generate_stream(&cfg, 20, 4);
    let opts = QueryOptions::default();

    let store = ShardedHybridStore::build(&onto, &Graph::new(), 4).expect("store builds");
    let server = Server::start(
        store,
        "127.0.0.1:0",
        ServerConfig {
            tick: Duration::from_millis(2),
        },
    )
    .expect("server binds");
    let addr = server.addr();
    println!("server listening on {addr}");

    // Subscriber: the anomaly query's answers arrive as pushes.
    let mut sub = Client::connect(addr).expect("subscriber connects");
    sub.subscribe("water-anomaly", &water_anomaly_query(), &opts)
        .expect("subscription registers");

    // Feeder + local replay (the expected alert sequence).
    let mut feeder = Client::connect(addr).expect("feeder connects");
    let mut replay = StreamSession::new(
        ShardedHybridStore::build(&onto, &Graph::new(), 4).expect("replay store builds"),
    );
    replay
        .register_query("water-anomaly", &water_anomaly_query(), opts.clone())
        .expect("replay query registers");

    // Water batch 0 runs before the side writers spawn: its tick is the
    // server's first, so the subscription's initial full frame lands
    // here deterministically.
    let mut stream_iter = batches.iter().enumerate();
    let mut total_alerts = 0usize;
    {
        let (tick, batch) = stream_iter.next().expect("stream is non-empty");
        let ack = feeder
            .ingest(&batch.inserts, &batch.deletes)
            .expect("water batch applies");
        let expected = replay
            .apply_batch(&batch.inserts, &batch.deletes)
            .expect("replay applies");
        let push = sub.next_push().expect("initial push arrives");
        assert!(push.initial, "the first push must be the full frame");
        assert_eq!(push.id, "water-anomaly");
        assert_eq!(push.epoch, ack.epoch);
        assert_eq!(
            normalize(&push.results),
            normalize(&expected.results[0].results),
            "batch {tick}: pushed alerts diverge from the single-threaded replay"
        );
        total_alerts += push.results.rows.len();
        println!(
            "batch {tick:2}: epoch {:3} | +{:<3} -{:<3} | {} alert(s) (initial full frame)",
            ack.epoch,
            ack.inserted,
            ack.deleted,
            push.results.rows.len()
        );
    }

    // Concurrent writers + a snapshot reader, racing the feeder below.
    let side = std::thread::spawn(move || {
        let writers: Vec<_> = (0..4)
            .map(|k| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("writer connects");
                    let mut coalesced_max = 0;
                    for round in 0..10 {
                        let ack = c
                            .ingest(&side_batch(k, round), &Graph::new())
                            .expect("side batch applies");
                        coalesced_max = coalesced_max.max(ack.coalesced);
                    }
                    coalesced_max
                })
            })
            .collect();
        let reader = std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("reader connects");
            let q = "SELECT ?s ?v WHERE { ?s <http://side.example/feed0> ?v }";
            let mut last = (0, 0);
            for _ in 0..40 {
                let rows = c.query(q, &QueryOptions::default()).expect("query runs");
                let now = (rows.epoch, rows.results.len());
                assert!(now >= last, "snapshot reads moved backwards");
                last = now;
            }
            last
        });
        let coalesced = writers
            .into_iter()
            .map(|w| w.join().expect("writer thread"))
            .max()
            .unwrap_or(0);
        let (epoch, rows) = reader.join().expect("reader thread");
        (coalesced, epoch, rows)
    });

    // Feeder: the remaining water batches, one group-commit tick each.
    // The server now pushes only *changes* — the side writers' ticks
    // never touch the anomaly answers, so they produce no pushes at
    // all, and a water tick pushes exactly when the replay says the
    // alert set changed.
    for (tick, batch) in stream_iter {
        let ack = feeder
            .ingest(&batch.inserts, &batch.deletes)
            .expect("water batch applies");
        let expected = replay
            .apply_batch(&batch.inserts, &batch.deletes)
            .expect("replay applies");
        let want = &expected.results[0];
        total_alerts += want.results.len();
        if want.unchanged() {
            println!(
                "batch {tick:2}: epoch {:3} | +{:<3} -{:<3} | unchanged (no push)",
                ack.epoch, ack.inserted, ack.deleted,
            );
            continue;
        }
        let push = sub.next_push().expect("push arrives");
        assert!(!push.initial, "only the first push carries the full set");
        assert_eq!(push.id, "water-anomaly");
        assert_eq!(push.epoch, ack.epoch, "the water tick's push was skipped");
        // The client folded the change frame into its materialized
        // view; it must equal the replay's full evaluation.
        assert_eq!(
            normalize(&push.results),
            normalize(&want.results),
            "batch {tick}: pushed alerts diverge from the single-threaded replay"
        );
        println!(
            "batch {tick:2}: epoch {:3} | +{:<3} -{:<3} | {} alert(s) (+{} −{})",
            ack.epoch,
            ack.inserted,
            ack.deleted,
            push.results.rows.len(),
            push.added.rows.len(),
            push.removed.rows.len(),
        );
    }
    assert!(total_alerts > 0, "the stream must raise alerts");

    let (coalesced_max, reader_epoch, side_rows) = side.join().expect("side threads");
    println!(
        "side channel: up to {coalesced_max} write(s) coalesced per tick; \
         reader finished at epoch {reader_epoch} seeing {side_rows} side rows"
    );

    let stats = sub.stats().expect("stats answer");
    println!(
        "server: epoch {} | {} triples | {} snapshot(s) taken, {} pinned | {} compaction(s)",
        stats.epoch, stats.triples, stats.snapshots, stats.live_pins, stats.compactions
    );
    assert_eq!(stats.subscriptions, 1);

    sub.shutdown().expect("shutdown acked");
    server.join();
    println!(
        "alert sequences agree across {} batches — server stopped",
        batches.len()
    );
}
