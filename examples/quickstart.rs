//! Quickstart: build a SuccinctEdge store from Turtle data and query it
//! with SPARQL, with and without RDFS reasoning.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use succinct_edge::ontology::Ontology;
use succinct_edge::rdf::parse_turtle;
use succinct_edge::sparql::{execute_query, QueryOptions};
use succinct_edge::store::SuccinctEdgeStore;

fn main() {
    // 1. Some RDF data (Turtle subset).
    let data = r#"
        @prefix ex: <http://example.org/> .
        ex:alice a ex:Manager ; ex:worksFor ex:acme ; ex:age 42 .
        ex:bob   a ex:Employee ; ex:worksFor ex:acme ; ex:age 37 .
        ex:carol a ex:Person ; ex:memberOf ex:acme .
        ex:acme  a ex:Organization .
    "#;
    let graph = parse_turtle(data).expect("valid turtle");
    println!("parsed {} triples", graph.len());

    // 2. An ontology: Manager ⊑ Employee ⊑ Person, worksFor ⊑ memberOf.
    let mut onto = Ontology::new();
    onto.add_class("http://example.org/Employee", "http://example.org/Person")
        .add_class("http://example.org/Manager", "http://example.org/Employee")
        .add_property("http://example.org/worksFor", "http://example.org/memberOf")
        .add_datatype_property("http://example.org/age");

    // 3. Build the store: LiteMat encodes the hierarchies, triples go into
    //    the succinct PSO layers (object + datatype) and the RDFType store.
    let store = SuccinctEdgeStore::build(&onto, &graph).expect("valid graph");
    println!(
        "store: {} triples, {} bytes in RAM, {} bytes on disk (triples), {} bytes (dictionaries)",
        store.len(),
        store.memory_footprint(),
        store.triple_serialized_size(),
        store.dictionary_serialized_size(),
    );

    // 4. Query. With reasoning (the default), `?s a ex:Person` covers
    //    Employee and Manager via LiteMat identifier intervals; `ex:memberOf`
    //    covers worksFor.
    let query = r#"
        PREFIX ex: <http://example.org/>
        SELECT ?s WHERE { ?s a ex:Person . ?s ex:memberOf ex:acme }
    "#;
    let with = execute_query(&store, query, &QueryOptions::default()).expect("query runs");
    println!("\nwith RDFS reasoning ({} answers):", with.len());
    for row in &with.rows {
        println!("  {}", row[0].as_ref().expect("bound"));
    }

    let without =
        execute_query(&store, query, &QueryOptions::without_reasoning()).expect("query runs");
    println!("\nwithout reasoning ({} answers):", without.len());
    for row in &without.rows {
        println!("  {}", row[0].as_ref().expect("bound"));
    }

    // 5. FILTER expressions work on datatype literals.
    let filtered = execute_query(
        &store,
        r#"PREFIX ex: <http://example.org/>
           SELECT ?s ?a WHERE { ?s ex:age ?a . FILTER(?a > 40) }"#,
        &QueryOptions::default(),
    )
    .expect("query runs");
    println!("\npeople over 40: {} answer(s)", filtered.len());
    for row in &filtered.rows {
        println!(
            "  {} (age {})",
            row[0].as_ref().expect("bound"),
            row[1].as_ref().expect("bound").str_value()
        );
    }
}
