//! SuccinctEdge facade crate: re-exports the public API of the workspace.
pub use se_core as store;
pub use se_rdf as rdf;
pub use se_sds as sds;
pub use se_litemat as litemat;
pub use se_ontology as ontology;
pub use se_sparql as sparql;
pub use se_baselines as baselines;
pub use se_datagen as datagen;
