//! # succinct-edge — a reproduction of SuccinctEdge (EDBT 2021)
//!
//! A compact, decompression-free, self-index RDF store for the edge, with
//! native RDFS reasoning via LiteMat identifier intervals — plus an
//! incremental ingestion subsystem that keeps the store live under
//! streaming sensor data.
//!
//! ## Module map
//!
//! | re-export | crate | contents |
//! |-----------|-------|----------|
//! | [`rdf`] | `se-rdf` | terms, triples, graphs, N-Triples/Turtle parsing |
//! | [`sds`] | `se-sds` | bit vectors, rank/select, wavelet trees (the SDS substrate) |
//! | [`litemat`] | `se-litemat` | LiteMat prefix encoding, dictionaries, id intervals |
//! | [`ontology`] | `se-ontology` | ρdf ontologies; LUBM and water ontologies |
//! | [`store`] | `se-core` | the SuccinctEdge store (layers, RDFType store, persistence) and the [`store::TripleSource`] access trait |
//! | [`sparql`] | `se-sparql` | SPARQL subset parser, Algorithm-1 optimizer, `TripleSource`-generic executor |
//! | [`stream`] | `se-stream` | incremental ingestion: delta overlay, hybrid view, compaction, continuous queries |
//! | [`baselines`] | `se-baselines` | multi-index memory store, disk B+tree store, HDT layout, UNION rewriting |
//! | [`datagen`] | `se-datagen` | LUBM & water-network generators, streaming batches, the 26-query workload |
//!
//! ## Entry points
//!
//! * Build once, query: [`store::SuccinctEdgeStore::build`] +
//!   [`sparql::execute_query`].
//! * Stream: [`stream::HybridStore::build`] →
//!   [`stream::StreamSession::apply_batch`] with registered continuous
//!   queries; the overlay compacts back into the succinct layers
//!   automatically (see [`stream::CompactionPolicy`]).
//! * Scale the write path: [`stream::ShardedHybridStore::build`]
//!   partitions by predicate into parallel shards behind the same
//!   session API, with background per-shard compaction keeping `apply`
//!   tail latency bounded (see `se-stream`'s architecture docs).
//! * Reproduce the paper's tables: `cargo run --release -p se-bench --bin
//!   tables`; examples under `examples/` cover the §2 anomaly scenario in
//!   both rebuild-per-instance and incremental form.

pub use se_baselines as baselines;
pub use se_core as store;
pub use se_datagen as datagen;
pub use se_litemat as litemat;
pub use se_ontology as ontology;
pub use se_rdf as rdf;
pub use se_sds as sds;
pub use se_server as server;
pub use se_sparql as sparql;
pub use se_stream as stream;
