//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, dependency-free implementation of the `rand` API
//! surface its data generators use: [`rngs::StdRng`], [`SeedableRng`] and
//! the [`RngExt`] extension trait with `random_range` / `random_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms, which the synthetic-dataset generators rely on
//! (`generate(n, seed)` must reproduce byte-identical graphs).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next pseudorandom 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniformly samplable from half-open / closed bounds (the `rand`
/// distribution subset the generators need).
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        Self::sample_exclusive(lo, f64::next_up(hi), rng)
    }
}

impl SampleUniform for f32 {
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_exclusive(lo as f64, hi as f64, rng) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_inclusive(lo as f64, hi as f64, rng) as f32
    }
}

/// Range types samplable into `T` (generic over `T` so call-site type
/// inference flows through arithmetic contexts, as with real `rand`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> RngExt for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..=9);
            assert!((3..=9).contains(&v));
            let f = rng.random_range(2.5..4.0);
            assert!((2.5..4.0).contains(&f));
            let u = rng.random_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn bool_probabilities_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
