//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a small benchmark harness exposing the `criterion` API subset the
//! `se-bench` suite uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`]
//! with [`BenchmarkId`], `sample_size`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros (benches use `harness = false`).
//!
//! Measurement model: per benchmark, a short warm-up followed by
//! `sample_size` timed samples; the median, mean and minimum per-iteration
//! times are printed to stdout. No plots, no statistics beyond that — the
//! goal is a stable, dependency-free way to track relative performance.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark inside a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one("", &id.to_string(), self.default_sample_size, &mut f);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut f);
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.samples.is_empty() {
        println!("bench {label:<60} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(d, iters)| d.as_secs_f64() / (*iters as f64))
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter[0];
    println!(
        "bench {label:<60} median {} | mean {} | min {}",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(min)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:>9.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:>9.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:>9.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:>9.3} s ")
    }
}

/// Collects timed samples of a closure.
pub struct Bencher {
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after a warm-up.
    /// Iteration counts per sample adapt so one sample costs ≳100 µs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration sizing.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_micros(100) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((t0.elapsed(), iters));
        }
    }
}

/// Declares a benchmark entry function running each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(calls > 0);
    }
}
