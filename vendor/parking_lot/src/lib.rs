//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly (a poisoned std lock is recovered,
//! matching parking_lot's semantics of not propagating panics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` API.
///
/// `parking_lot::Condvar::wait` takes the guard by mutable reference and
/// re-acquires the lock in place; std's takes it by value. The shim moves
/// the guard out, waits on the std condvar, and moves the re-acquired
/// guard back — sound because `std::sync::Condvar::wait` only panics on
/// use with two different mutexes, which this API cannot express per
/// call site (each `Condvar` here is used with exactly one `Mutex`, as
/// parking_lot requires).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// An unwaited-on condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until notified, releasing the guard's lock while parked and
    /// re-acquiring it (in place) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: `ptr::read` duplicates the guard so std's by-value API
        // can consume it; the original slot is overwritten with the
        // re-acquired guard before anything can observe it. `wait` does
        // not unwind for a (condvar, mutex) pair used consistently, which
        // the one-condvar-one-mutex usage pattern guarantees.
        unsafe {
            let owned = std::ptr::read(guard);
            let owned = self
                .inner
                .wait(owned)
                .unwrap_or_else(sync::PoisonError::into_inner);
            std::ptr::write(guard, owned);
        }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let worker = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut guard = m.lock();
                while !*guard {
                    cv.wait(&mut guard);
                }
            })
        };
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        worker.join().unwrap();
    }
}
