//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly (a poisoned std lock is recovered,
//! matching parking_lot's semantics of not propagating panics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
