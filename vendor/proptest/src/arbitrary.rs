//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.next_u64().is_multiple_of(8) {
            char::from_u32((rng.next_u64() % 0x11_0000) as u32).unwrap_or('\u{fffd}')
        } else {
            (b' ' + (rng.next_u64() % 95) as u8) as char
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates() {
        let mut rng = TestRng::deterministic("arbitrary::tests", 0);
        let _: bool = any::<bool>().generate(&mut rng);
        let a: u16 = any::<u16>().generate(&mut rng);
        let b: u16 = any::<u16>().generate(&mut rng);
        let c: u16 = any::<u16>().generate(&mut rng);
        // Not all three equal (overwhelmingly likely for a working RNG).
        assert!(!(a == b && b == c));
    }
}
