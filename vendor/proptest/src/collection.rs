//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.usize_in(self.size.lo, self.size.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Ordered sets of up to `size` elements drawn from `element`; duplicate
/// draws collapse, so the set may come out smaller than requested (same
/// semantics as proptest).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.usize_in(self.size.lo, self.size.hi);
        let mut out = BTreeSet::new();
        let mut tries = 0usize;
        while out.len() < target && tries < target.saturating_mul(10) + 16 {
            out.insert(self.element.generate(rng));
            tries += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::deterministic("collection::tests", 0);
        for _ in 0..100 {
            let v = vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_is_deduplicated() {
        let mut rng = TestRng::deterministic("collection::tests", 1);
        let s = btree_set(0u64..3, 0..50).generate(&mut rng);
        assert!(s.len() <= 3);
    }
}
