//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Maximum consecutive rejections a filtering strategy tolerates before
/// giving up on the case (mirrors proptest's local-reject limit).
const MAX_FILTER_TRIES: usize = 4096;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking:
/// `generate` directly produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred`, retrying with fresh values.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Combined filter + map: keeps `Some` outputs, retries on `None`.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected {MAX_FILTER_TRIES} consecutive values",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_FILTER_TRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map '{}' rejected {MAX_FILTER_TRIES} consecutive values",
            self.reason
        );
    }
}

/// Uniform choice among type-erased strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Chooses uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// ---------------------------------------------------------------- ranges

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ------------------------------------------------------- string patterns

/// String strategies from a regex subset: sequences of literal characters
/// and character classes (`[a-z0-9_]`, `[ -~]`), each optionally followed
/// by `{m}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.usize_in(atom.min, atom.max + 1);
            for _ in 0..n {
                let idx = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let Some(item) = chars.next() else {
                        panic!("unterminated character class in pattern {pattern:?}");
                    };
                    match item {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("checked above");
                            let hi = chars.next().expect("peeked above");
                            set.pop();
                            set.extend((lo..=hi).filter(|ch| ch.is_ascii()));
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                set
            }
            '\\' => vec![chars.next().unwrap_or('\\')],
            other => vec![other],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for item in chars.by_ref() {
                if item == '}' {
                    break;
                }
                spec.push(item);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("pattern repeat lower bound"),
                    n.trim().parse().expect("pattern repeat upper bound"),
                ),
                None => {
                    let m: usize = spec.trim().parse().expect("pattern repeat count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests", 0)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0u64..20, 5usize..=6).generate(&mut r);
            assert!(v.0 < 20);
            assert!(v.1 == 5 || v.1 == 6);
        }
    }

    #[test]
    fn map_filter_chain() {
        let mut r = rng();
        let s = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("multiple of 4", |v| v % 4 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 4, 0);
        }
    }

    #[test]
    fn string_patterns() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{1,8}".generate(&mut r);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[ -~]{0,20}".generate(&mut r);
            assert!(t.len() <= 20);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn union_covers_all_options() {
        let mut r = rng();
        let u = Union::new(vec![Box::new(Just(1u64)), Box::new(Just(2u64))]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut r));
        }
        assert_eq!(seen.len(), 2);
    }
}
