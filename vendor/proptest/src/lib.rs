//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal property-testing harness with the `proptest` API subset its
//! test suites use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_filter`, `prop_filter_map`;
//! * [`Just`](strategy::Just), `any::<T>()`, integer-range strategies,
//!   tuple strategies, and regex-subset string strategies (`"[a-z]{1,8}"`);
//! * [`collection::vec`] and [`collection::btree_set`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`] and [`prop_oneof!`] macros;
//! * [`ProptestConfig::with_cases`](test_runner::ProptestConfig).
//!
//! Differences from real proptest: inputs are generated from a
//! deterministic per-test RNG (seeded from the test's module path), there
//! is **no shrinking**, and failure reports print the assertion message
//! plus the failing case number rather than a minimized input.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-importable API surface.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub mod prop {
        //! `prop::collection` alias used by some call sites.
        pub use crate::collection;
    }
}

/// Defines property tests: `#[test] fn name(input in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr;
     $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!("proptest case {} failed: {}", __case, __msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the current case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(
                ::std::boxed::Box::new($strat)
                    as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
            )+
        ])
    };
}
