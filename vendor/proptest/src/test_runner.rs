//! Test-runner plumbing: configuration, the deterministic RNG, and the
//! case-level error type the assertion macros return.

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single generated case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

/// Deterministic xoshiro256++ generator seeded from the test identity and
/// the case number, so failures reproduce across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for `case` of the test identified by `name`.
    pub fn deterministic(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next pseudorandom 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi)`; empty ranges collapse to `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            lo
        } else {
            lo + self.below((hi - lo) as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::deterministic("x::y", 3);
        let mut b = TestRng::deterministic("x::y", 3);
        let mut c = TestRng::deterministic("x::y", 4);
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
