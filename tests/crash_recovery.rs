//! The WAL crash matrix: kill the persistence I/O at **every** single
//! operation of a scripted workload — in both "torn write" and "died
//! just before" flavors, for both engines — and assert that recovery
//! always lands on a prefix-consistent store:
//!
//! * no acknowledged batch is ever lost (`recovered >= last acked`);
//! * at most the one in-flight batch is in question
//!   (`recovered <= last acked + 1` — the shim persists completed
//!   appends even when the fsync after them dies, so a crash between
//!   append and ack can legitimately recover one epoch *past* the ack);
//! * the recovered store's query answers equal a from-scratch rebuild
//!   replayed to the recovered epoch;
//! * a failed load is only acceptable when the crash predates the very
//!   first manifest rename — before anything was ever acknowledged.
//!
//! The workload interleaves checkpoints (`save`) with appends, so the
//! matrix also covers crashes mid-manifest-rename, mid-checkpoint
//! truncation, and mid-segment-rotation — and proves a checkpoint never
//! truncates a WAL segment the surviving manifest still depends on
//! (recovery's gap check would fail the load).

use se_core::TripleSource;
use se_ontology::Ontology;
use se_rdf::{Graph, Term, Triple};
use se_sparql::QueryOptions;
use se_stream::fault::{self, FaultMode};
use se_stream::persist::{HYBRID_MANIFEST, SHARD_MANIFEST};
use se_stream::{wal, HybridStore, ShardedHybridStore, StreamError, SyncPolicy, WalConfig};
use std::path::{Path, PathBuf};

fn iri(s: &str) -> Term {
    Term::iri(format!("http://x/{s}"))
}

fn t(s: &str, p: &str, o: Term) -> Triple {
    Triple::new(iri(s), Term::iri(format!("http://x/{p}")), o)
}

fn ty(s: &str, c: &str) -> Triple {
    Triple::new(iri(s), Term::iri(se_rdf::vocab::rdf::TYPE), iri(c))
}

fn ontology() -> Ontology {
    let mut o = Ontology::new();
    o.add_class("http://x/C2", "http://x/C1");
    o.add_property("http://x/worksFor", "http://x/memberOf");
    o.add_object_property("http://x/knows");
    o.add_datatype_property("http://x/age");
    o
}

fn seed_graph() -> Graph {
    Graph::from_triples([
        ty("a", "C2"),
        ty("b", "C1"),
        t("a", "knows", iri("b")),
        t("a", "worksFor", iri("org")),
        t("b", "memberOf", iri("org")),
        t("a", "age", Term::literal("42")),
    ])
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("se-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// Batches applied one per epoch. Every batch changes the probe
/// answers, so a store recovered to the wrong epoch cannot pass the
/// answer comparison by accident; from epoch 2 on each batch also
/// deletes, so WAL records carry both sides.
const N_BATCHES: usize = 6;
/// Mid-workload checkpoints: after these batches the workload saves,
/// exercising manifest renames and WAL truncation under fire.
const SAVE_AFTER: [usize; 2] = [2, 4];

fn batch(i: usize) -> (Graph, Graph) {
    if i == 0 {
        let inserts = Graph::from_triples([
            t("c", "knows", iri("a")),
            ty("c", "C2"),
            t("newSensor", "emits", iri("a")),
            ty("newSensor", "NewKind"),
            t("newSensor", "reading", Term::literal("7.5")),
            t("c", "age", Term::literal("7")),
        ]);
        let deletes = Graph::from_triples([t("a", "knows", iri("b")), ty("b", "C1")]);
        return (inserts, deletes);
    }
    let inserts = Graph::from_triples([
        t(&format!("w{i}"), "knows", iri("hub")),
        ty(&format!("w{i}"), "NewKind"),
        t(&format!("w{i}"), "reading", Term::literal("7.5")),
    ]);
    let deletes = if i >= 2 {
        Graph::from_triples([t(&format!("w{}", i - 1), "knows", iri("hub"))])
    } else {
        Graph::new()
    };
    (inserts, deletes)
}

/// Queries probing tombstones, overlay inserts, overflow reasoning and
/// overlay literals — their answers change on every batch.
fn probe_queries() -> Vec<(String, QueryOptions)> {
    let q = |text: &str| format!("PREFIX e: <http://x/> {text}");
    vec![
        (
            q("SELECT ?s ?o WHERE { ?s e:knows ?o }"),
            QueryOptions::default(),
        ),
        (
            q("SELECT ?s WHERE { ?s e:memberOf e:org }"),
            QueryOptions::default(),
        ),
        (q("SELECT ?s WHERE { ?s a e:C1 }"), QueryOptions::default()),
        (
            q("SELECT ?s WHERE { ?s e:reading \"7.5\" }"),
            QueryOptions::default(),
        ),
        (
            q("SELECT ?s WHERE { ?s a e:NewKind }"),
            QueryOptions::default(),
        ),
    ]
}

fn answers<S: TripleSource>(store: &S) -> Vec<Vec<String>> {
    probe_queries()
        .iter()
        .map(|(text, opts)| {
            let rs = se_sparql::execute_query(store, text, opts).unwrap();
            let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        })
        .collect()
}

/// Small segments so the workload rotates several times, and per-batch
/// fsync so an `Ok` apply is an acknowledged-durable batch.
fn wal_config() -> WalConfig {
    WalConfig {
        sync: SyncPolicy::EveryBatch,
        segment_bytes: 256,
    }
}

/// The two engines behind one face, so the matrix runs verbatim on both.
trait Engine: TripleSource + Sized {
    const TAG: &'static str;
    const MANIFEST: &'static str;
    fn fresh() -> Self;
    fn attach(&mut self, dir: &Path) -> Result<(), StreamError>;
    fn step(&mut self, ins: &Graph, del: &Graph) -> Result<(), StreamError>;
    fn checkpoint(&self, dir: &Path) -> Result<(), StreamError>;
    fn restore(dir: &Path) -> Result<Self, StreamError>;
    fn at_epoch(&self) -> u64;
}

impl Engine for HybridStore {
    const TAG: &'static str = "hybrid";
    const MANIFEST: &'static str = HYBRID_MANIFEST;
    fn fresh() -> Self {
        HybridStore::build(&ontology(), &seed_graph()).unwrap()
    }
    fn attach(&mut self, dir: &Path) -> Result<(), StreamError> {
        self.attach_wal(dir, wal_config()).map(|_| ())
    }
    fn step(&mut self, ins: &Graph, del: &Graph) -> Result<(), StreamError> {
        self.apply(ins, del).map(|_| ())
    }
    fn checkpoint(&self, dir: &Path) -> Result<(), StreamError> {
        self.save(dir).map(|_| ())
    }
    fn restore(dir: &Path) -> Result<Self, StreamError> {
        HybridStore::load(dir, &ontology())
    }
    fn at_epoch(&self) -> u64 {
        self.epoch()
    }
}

impl Engine for ShardedHybridStore {
    const TAG: &'static str = "sharded";
    const MANIFEST: &'static str = SHARD_MANIFEST;
    fn fresh() -> Self {
        ShardedHybridStore::build(&ontology(), &seed_graph(), 2).unwrap()
    }
    fn attach(&mut self, dir: &Path) -> Result<(), StreamError> {
        self.attach_wal(dir, wal_config()).map(|_| ())
    }
    fn step(&mut self, ins: &Graph, del: &Graph) -> Result<(), StreamError> {
        self.apply(ins, del).map(|_| ())
    }
    fn checkpoint(&self, dir: &Path) -> Result<(), StreamError> {
        self.save(dir).map(|_| ())
    }
    fn restore(dir: &Path) -> Result<Self, StreamError> {
        ShardedHybridStore::load(dir, &ontology())
    }
    fn at_epoch(&self) -> u64 {
        self.epoch()
    }
}

/// Runs the scripted workload over `dir`, stopping at the first failed
/// apply (the injected crash) and returning the last acked epoch.
/// Checkpoint failures don't stop the script: a real writer keeps
/// appending after a failed background save (until the dead scope makes
/// its next apply fail too).
fn workload<S: Engine>(dir: &Path) -> u64 {
    let mut store = S::fresh();
    if store.attach(dir).is_err() {
        return 0;
    }
    let mut acked = store.at_epoch();
    for i in 0..N_BATCHES {
        let (ins, del) = batch(i);
        if store.step(&ins, &del).is_err() {
            return acked;
        }
        acked = store.at_epoch();
        if SAVE_AFTER.contains(&i) {
            let _ = store.checkpoint(dir);
        }
    }
    acked
}

/// Expected probe answers at every epoch 0..=N_BATCHES, from a
/// from-scratch rebuild that never touches disk.
fn expected_answers<S: Engine>() -> Vec<Vec<Vec<String>>> {
    let mut store = S::fresh();
    let mut per_epoch = vec![answers(&store)];
    for i in 0..N_BATCHES {
        let (ins, del) = batch(i);
        store.step(&ins, &del).unwrap();
        per_epoch.push(answers(&store));
    }
    // Every batch must move the answers, or the epoch comparison below
    // could pass vacuously.
    for w in per_epoch.windows(2) {
        assert_ne!(w[0], w[1], "probe answers must change every epoch");
    }
    per_epoch
}

fn crash_matrix<S: Engine>(mode: FaultMode) {
    let expected = expected_answers::<S>();

    // Count the workload's I/O operations with a trigger that never
    // fires, then kill each one in turn.
    let count_dir = scratch(&format!("{}-count-{mode:?}", S::TAG));
    fault::arm(&count_dir, u64::MAX, FaultMode::Crash);
    let full = workload::<S>(&count_dir);
    let total_ops = fault::disarm(&count_dir);
    cleanup(&count_dir);
    assert_eq!(full, N_BATCHES as u64, "un-faulted workload must finish");
    assert!(total_ops > 20, "workload too small to be a matrix");

    for nth in 0..total_ops {
        let dir = scratch(&format!("{}-{mode:?}-{nth}", S::TAG));
        fault::arm(&dir, nth, mode);
        let acked = workload::<S>(&dir);
        fault::disarm(&dir);

        match S::restore(&dir) {
            Ok(back) => {
                let recovered = back.at_epoch();
                assert!(
                    recovered >= acked,
                    "{} op {nth} {mode:?}: acked epoch {acked} lost, recovered {recovered}",
                    S::TAG
                );
                assert!(
                    recovered <= acked + 1,
                    "{} op {nth} {mode:?}: recovered {recovered} past the in-flight batch \
                     (acked {acked})",
                    S::TAG
                );
                assert_eq!(
                    answers(&back),
                    expected[recovered as usize],
                    "{} op {nth} {mode:?}: recovered epoch {recovered} does not match a \
                     from-scratch rebuild",
                    S::TAG
                );
            }
            Err(e) => {
                // Only a crash before the first manifest rename leaves
                // nothing to load — and by then nothing was acked.
                assert_eq!(
                    acked,
                    0,
                    "{} op {nth} {mode:?}: load failed ({e}) after epoch {acked} was acked",
                    S::TAG
                );
                assert!(
                    !dir.join(S::MANIFEST).exists(),
                    "{} op {nth} {mode:?}: manifest present but load failed: {e}",
                    S::TAG
                );
            }
        }
        cleanup(&dir);
    }
}

#[test]
fn hybrid_survives_a_crash_at_every_io_operation() {
    crash_matrix::<HybridStore>(FaultMode::Crash);
}

#[test]
fn hybrid_survives_a_torn_write_at_every_io_operation() {
    crash_matrix::<HybridStore>(FaultMode::ShortWrite);
}

#[test]
fn sharded_survives_a_crash_at_every_io_operation() {
    crash_matrix::<ShardedHybridStore>(FaultMode::Crash);
}

#[test]
fn sharded_survives_a_torn_write_at_every_io_operation() {
    crash_matrix::<ShardedHybridStore>(FaultMode::ShortWrite);
}

/// Satellite: checkpoints racing the append stream. With segments small
/// enough to rotate every record or two and a save after every batch,
/// truncation constantly runs right behind the writing edge — and no
/// checkpoint may ever remove a segment the manifest still needs (the
/// gap check in recovery would refuse the load).
#[test]
fn interleaved_checkpoints_never_truncate_needed_segments() {
    let dir = scratch("interleave");
    let mut store = HybridStore::fresh();
    store
        .attach_wal(
            &dir,
            WalConfig {
                sync: SyncPolicy::EveryBatch,
                segment_bytes: 1, // rotate on every append
            },
        )
        .unwrap();
    for i in 0..N_BATCHES {
        let (ins, del) = batch(i);
        store.apply(&ins, &del).unwrap();
        if i % 2 == 1 {
            store.save(&dir).unwrap();
        }
        // Every intermediate state must load: manifest + surviving
        // segments always cover a consecutive prefix.
        let back = HybridStore::load(&dir, &ontology()).unwrap();
        assert_eq!(back.epoch(), store.epoch(), "after batch {i}");
        assert_eq!(answers(&back), answers(&store), "after batch {i}");
    }
    cleanup(&dir);
}

/// A transiently failing append poisons the attached WAL: the store
/// keeps answering queries but refuses to take batches it cannot make
/// durable, and a restart (or a successful save) recovers cleanly.
#[test]
fn transient_append_failure_refuses_later_batches_until_recovery() {
    let dir = scratch("transient");
    let mut store = HybridStore::fresh();
    store.attach_wal(&dir, wal_config()).unwrap();
    let (ins, del) = batch(0);
    store.apply(&ins, &del).unwrap();

    // One transient I/O failure on the next disk touch.
    fault::arm(&dir, 0, FaultMode::Fail);
    let (ins, del) = batch(1);
    assert!(store.apply(&ins, &del).is_err());
    fault::disarm(&dir);

    // The log's tail is suspect: further batches are refused rather
    // than appended behind a possibly-torn record.
    let (ins2, del2) = batch(2);
    assert!(store.apply(&ins2, &del2).is_err());

    // A restart replays only the durable prefix — epoch 1, the batch
    // that was acked.
    let back = HybridStore::load(&dir, &ontology()).unwrap();
    assert_eq!(back.epoch(), 1);

    // And a successful save on the live store heals the log in place.
    store.save(&dir).unwrap();
    let (ins3, del3) = batch(3);
    store.apply(&ins3, &del3).unwrap();
    let back = HybridStore::load(&dir, &ontology()).unwrap();
    assert_eq!(back.epoch(), store.epoch());
    assert_eq!(answers(&back), answers(&store));
    cleanup(&dir);
}

/// Regression for the hostile-length class: a syntactically valid WAL
/// record whose triple counts claim astronomical sizes must fail with a
/// clean `Corrupt`, not abort the process on a giant pre-allocation.
#[test]
fn hostile_wal_record_lengths_error_instead_of_allocating() {
    use se_sds::{write_container_header, write_section, WriteBin};
    let dir = scratch("hostile");
    std::fs::create_dir_all(&dir).unwrap();
    let mut seg = Vec::new();
    write_container_header(&mut seg, wal::WAL_MAGIC, wal::WAL_VERSION).unwrap();
    let mut payload = Vec::new();
    payload.write_u64(1).unwrap(); // epoch
    payload.write_u64(u64::MAX / 2).unwrap(); // "added" count: ~8 EB
    write_section(&mut seg, b"WREC", &payload).unwrap();
    std::fs::write(dir.join("wal-1.seg"), &seg).unwrap();
    // The checksum is valid, so this is not a torn tail — it is a
    // well-formed frame with hostile content.
    assert!(matches!(
        wal::recover(&dir, 0),
        Err(StreamError::Corrupt(_))
    ));
    cleanup(&dir);
}
