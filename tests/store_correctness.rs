//! Property-based correctness of the SuccinctEdge store against a naive
//! triple-scan reference, on randomly generated graphs.

use proptest::prelude::*;
use se_core::{SuccinctEdgeStore, Value};
use se_ontology::Ontology;
use se_rdf::{Graph, Literal, Term, Triple};

/// A small random graph over a closed vocabulary, with a two-level class
/// hierarchy and a two-level property hierarchy.
fn arb_graph() -> impl Strategy<Value = (Graph, Ontology)> {
    let triple = (0usize..12, 0usize..4, 0usize..12, 0usize..3).prop_map(|(s, p, o, kind)| {
        let subject = Term::iri(format!("http://x/i{s}"));
        match kind {
            0 => Triple::new(
                subject,
                Term::iri(se_rdf::vocab::rdf::TYPE),
                Term::iri(format!("http://x/C{}", p % 3)),
            ),
            1 => Triple::new(
                subject,
                Term::iri(format!("http://x/p{p}")),
                Term::iri(format!("http://x/i{o}")),
            ),
            _ => Triple::new(
                subject,
                Term::iri(format!("http://x/d{p}")),
                Term::Literal(Literal::integer(o as i64)),
            ),
        }
    });
    proptest::collection::vec(triple, 0..120).prop_map(|triples| {
        let mut onto = Ontology::new();
        onto.add_class("http://x/C1", "http://x/C0");
        onto.add_class("http://x/C2", "http://x/C0");
        onto.add_property("http://x/p1", "http://x/p0");
        for p in ["http://x/p0", "http://x/p2", "http://x/p3"] {
            onto.add_object_property(p);
        }
        for d in ["http://x/d0", "http://x/d1", "http://x/d2", "http://x/d3"] {
            onto.add_datatype_property(d);
        }
        let mut g = Graph::from_triples(triples);
        g.dedup();
        (g, onto)
    })
}

fn decode_set(store: &SuccinctEdgeStore, values: &[Value]) -> Vec<String> {
    let mut out: Vec<String> = values
        .iter()
        .map(|v| store.value_to_term(*v).unwrap().to_string())
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn objects_match_naive_scan((graph, onto) in arb_graph()) {
        let store = SuccinctEdgeStore::build(&onto, &graph).unwrap();
        for s in 0..12usize {
            let subject = Term::iri(format!("http://x/i{s}"));
            for p in 0..4usize {
                for pred in [format!("http://x/p{p}"), format!("http://x/d{p}")] {
                    let expected: Vec<String> = {
                        let mut v: Vec<String> = graph
                            .iter()
                            .filter(|t| {
                                t.subject == subject && t.predicate.as_iri() == Some(pred.as_str())
                            })
                            .map(|t| t.object.to_string())
                            .collect();
                        v.sort();
                        v
                    };
                    let got = match (store.property_id(&pred), store.instance_id(&subject)) {
                        (Some(pid), Some(sid)) => decode_set(&store, &store.objects(pid, sid)),
                        _ => Vec::new(),
                    };
                    prop_assert_eq!(got, expected, "objects({}, {})", subject, pred);
                }
            }
        }
    }

    #[test]
    fn subjects_match_naive_scan((graph, onto) in arb_graph()) {
        let store = SuccinctEdgeStore::build(&onto, &graph).unwrap();
        for o in 0..12usize {
            let object = Term::iri(format!("http://x/i{o}"));
            for p in 0..4usize {
                let pred = format!("http://x/p{p}");
                let expected: Vec<String> = {
                    let mut v: Vec<String> = graph
                        .iter()
                        .filter(|t| {
                            t.object == object && t.predicate.as_iri() == Some(pred.as_str())
                        })
                        .map(|t| t.subject.to_string())
                        .collect();
                    v.sort();
                    v
                };
                let got = match (store.property_id(&pred), store.instance_id(&object)) {
                    (Some(pid), Some(oid)) => {
                        let subs = store.subjects(pid, &Value::Instance(oid));
                        let mut v: Vec<String> = subs
                            .iter()
                            .map(|&s| store.value_to_term(Value::Instance(s)).unwrap().to_string())
                            .collect();
                        v.sort();
                        v
                    }
                    _ => Vec::new(),
                };
                prop_assert_eq!(got, expected, "subjects({}, {})", pred, object);
            }
        }
    }

    #[test]
    fn type_interval_equals_subclass_union((graph, onto) in arb_graph()) {
        let store = SuccinctEdgeStore::build(&onto, &graph).unwrap();
        // Reasoned subjects of C0 == explicit subjects of C0 ∪ C1 ∪ C2.
        let iv = store.concept_interval("http://x/C0").unwrap();
        let got: std::collections::BTreeSet<u64> =
            store.subjects_of_concept_interval(iv).into_iter().collect();
        let mut expected = std::collections::BTreeSet::new();
        for c in ["http://x/C0", "http://x/C1", "http://x/C2"] {
            if let Some(cid) = store.concept_id(c) {
                expected.extend(store.subjects_of_concept(cid));
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn predicate_counts_match((graph, onto) in arb_graph()) {
        let store = SuccinctEdgeStore::build(&onto, &graph).unwrap();
        for p in 0..4usize {
            for pred in [format!("http://x/p{p}"), format!("http://x/d{p}")] {
                let expected = graph
                    .iter()
                    .filter(|t| t.predicate.as_iri() == Some(pred.as_str()))
                    .count();
                let got = store
                    .property_id(&pred)
                    .map_or(0, |pid| store.predicate_count(pid));
                prop_assert_eq!(got, expected, "count({})", pred);
            }
        }
        // Property-interval count for p0 covers p0 and p1.
        let iv = store.property_interval("http://x/p0").unwrap();
        let expected = graph
            .iter()
            .filter(|t| {
                matches!(t.predicate.as_iri(), Some(p) if p == "http://x/p0" || p == "http://x/p1")
            })
            .count();
        prop_assert_eq!(store.predicate_interval_count(iv), expected);
    }

    #[test]
    fn total_triples_accounted((graph, onto) in arb_graph()) {
        let store = SuccinctEdgeStore::build(&onto, &graph).unwrap();
        prop_assert_eq!(store.len(), graph.len());
        let stats = store.stats();
        prop_assert_eq!(
            stats.n_type_triples + stats.n_object_triples + stats.n_datatype_triples,
            graph.len()
        );
    }
}

#[test]
fn ntriples_to_store_roundtrip() {
    // End-to-end: serialize a generated graph to N-Triples, parse it back,
    // build a store, and compare query answers.
    let graph = se_datagen::water::generate(250, 3);
    let text = se_rdf::write_ntriples(&graph);
    let reparsed = se_rdf::parse_ntriples(&text).unwrap();
    assert_eq!(graph.len(), reparsed.len());

    let onto = se_ontology::water_ontology();
    let a = SuccinctEdgeStore::build(&onto, &graph).unwrap();
    let b = SuccinctEdgeStore::build(&onto, &reparsed).unwrap();
    let q = se_datagen::workload::water_anomaly_query();
    let opts = se_sparql::QueryOptions::default();
    let ra = se_sparql::execute_query(&a, &q, &opts).unwrap();
    let rb = se_sparql::execute_query(&b, &q, &opts).unwrap();
    let norm = |rs: &se_sparql::ResultSet| {
        let mut v: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
        v.sort();
        v
    };
    assert_eq!(norm(&ra), norm(&rb));
}

#[test]
fn store_sizes_scale_with_data() {
    let onto = se_ontology::lubm_ontology();
    let mut small = se_datagen::lubm::generate(1, 1);
    small.truncate(1_000);
    let mut large = se_datagen::lubm::generate(1, 1);
    large.truncate(10_000);
    let st_small = SuccinctEdgeStore::build(&onto, &small).unwrap();
    let st_large = SuccinctEdgeStore::build(&onto, &large).unwrap();
    assert!(st_large.memory_footprint() > st_small.memory_footprint());
    assert!(st_large.triple_serialized_size() > st_small.triple_serialized_size());
    assert!(st_large.dictionary_serialized_size() > st_small.dictionary_serialized_size());
}
