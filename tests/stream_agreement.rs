//! The ingestion subsystem's central correctness property: over a streamed
//! sequence of water-sensor batches (insertions *and* deletions), every
//! registered continuous query answers identically on
//!
//! * the incremental [`HybridStore`] (baseline + delta overlay), and
//! * a [`SuccinctEdgeStore`] rebuilt from scratch from the same triples,
//!
//! for every triple-pattern shape, with reasoning on and off, before and
//! after compactions triggered by the overlay-size policy.

use se_core::{SuccinctEdgeStore, TripleSource};
use se_datagen::water::{generate_stream, water_shard_group, WaterConfig};
use se_datagen::workload::water_anomaly_query;
use se_ontology::water_ontology;
use se_rdf::{Graph, Triple};
use se_sparql::{QueryOptions, ResultSet};
use se_stream::{
    CompactionPolicy, HybridStore, IngestMode, ShardPolicy, ShardedHybridStore, StreamSession,
};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

/// Sorted row strings: ResultSets compare as multisets (SPARQL bag
/// semantics — hybrid and rebuild may enumerate rows in different order).
fn normalize(rs: &ResultSet) -> Vec<String> {
    let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

/// Queries covering every TP shape the executor distinguishes.
fn shape_queries() -> Vec<(&'static str, String, QueryOptions)> {
    let prefixes = "PREFIX sosa: <http://www.w3.org/ns/sosa/> \
                    PREFIX qudt: <http://qudt.org/schema/qudt/> ";
    let q = |text: &str| format!("{prefixes}{text}");
    vec![
        // The paper's §2 anomaly query: multi-TP BGP, FILTER, BIND,
        // LiteMat reasoning over the unit hierarchy.
        ("anomaly", water_anomaly_query(), QueryOptions::default()),
        // (?s, p, ?o) full scan.
        (
            "scan",
            q("SELECT ?s ?o WHERE { ?s sosa:observes ?o }"),
            QueryOptions::default(),
        ),
        // (s, p, ?o) bound subject.
        (
            "objects",
            q("SELECT ?o WHERE { <http://engie.example/station/1> sosa:hosts ?o }"),
            QueryOptions::default(),
        ),
        // (?s, p, o) bound object.
        (
            "subjects",
            q("SELECT ?s WHERE { ?s qudt:unit <http://qudt.org/vocab/unit/BAR> }"),
            QueryOptions::default(),
        ),
        // (s, p, o) membership gating another pattern.
        (
            "membership",
            q("SELECT ?s WHERE { \
               <http://engie.example/station/1> sosa:hosts <http://engie.example/sensor/pressure1> . \
               ?s a sosa:Sensor }"),
            QueryOptions::default(),
        ),
        // (?s, p, lit) literal constant object (typed dateTime).
        (
            "literal-const",
            q("SELECT ?o WHERE { ?o sosa:resultTime \
               \"2020-11-01T00:00:00Z\"^^<http://www.w3.org/2001/XMLSchema#dateTime> }"),
            QueryOptions::default(),
        ),
        // (?s, type, C) with reasoning: PressureOrStressUnit ⊑ PressureUnit.
        (
            "type-reasoned",
            q("SELECT ?u WHERE { ?u a qudt:PressureUnit }"),
            QueryOptions::default(),
        ),
        // Same without reasoning.
        (
            "type-exact",
            q("SELECT ?u WHERE { ?u a qudt:PressureUnit }"),
            QueryOptions::without_reasoning(),
        ),
        // (s, type, ?c) concepts of a subject.
        (
            "type-var",
            q("SELECT ?c WHERE { <http://engie.example/sensor/pressure1> a ?c }"),
            QueryOptions::default(),
        ),
        // (?s, type, ?c) full RDFType scan.
        (
            "type-scan",
            q("SELECT ?s ?c WHERE { ?s a ?c }"),
            QueryOptions::default(),
        ),
        // Join through an interval-reasoned property position is covered
        // by "anomaly"; add a star join without reasoning for contrast.
        (
            "star-plain",
            q("SELECT ?s ?r WHERE { ?s a sosa:Observation . ?s sosa:hasResult ?r }"),
            QueryOptions::without_reasoning(),
        ),
        // UNION: two groups feeding one multiset on the delta path.
        (
            "union-groups",
            q("SELECT ?s ?o WHERE { ?s sosa:hosts ?o } UNION { ?s sosa:observes ?o }"),
            QueryOptions::default(),
        ),
        // DISTINCT: support semantics over the materialized counts.
        (
            "distinct-subjects",
            q("SELECT DISTINCT ?s WHERE { ?s sosa:observes ?o }"),
            QueryOptions::default(),
        ),
    ]
}

#[test]
fn hybrid_agrees_with_rebuild_across_stream_and_compaction() {
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.3,
        seed: 97,
    };
    // 12 batches, retention window of 3 rounds → deletions from batch 3 on.
    let batches = generate_stream(&cfg, 12, 3);
    assert!(batches.len() >= 10, "acceptance requires >= 10 batches");

    // Overlay threshold sized to trigger compactions mid-stream.
    let store = HybridStore::build(&onto, &Graph::new())
        .unwrap()
        .with_policy(CompactionPolicy { max_overlay: 140 });
    let mut session = StreamSession::new(store);
    for (id, text, opts) in shape_queries() {
        session.register_query(id, &text, opts).unwrap();
    }

    // Pure-BGP shapes run differentially; "anomaly" (FILTER + BIND)
    // falls back to full re-evaluation.
    let (incr, full) = session.registry().strategy_counts();
    assert_eq!(full, 1, "only the anomaly query falls back");
    assert_eq!(incr + full, shape_queries().len());

    let mut reference: BTreeSet<Triple> = BTreeSet::new();
    // Per query: the materialized multiset reconstructed purely from the
    // added/removed change streams (row string -> count).
    let mut mirror: std::collections::HashMap<String, std::collections::BTreeMap<String, i64>> =
        std::collections::HashMap::new();
    let mut compactions_seen = 0usize;
    let mut deletions_seen = 0usize;
    let mut anomaly_alerts = 0usize;
    let mut agreement_after_compaction = false;

    for (tick, batch) in batches.iter().enumerate() {
        let outcome = session.apply_batch(&batch.inserts, &batch.deletes).unwrap();

        // Maintain the independent reference: deletes, then inserts
        // (the session applies batches in the same order).
        for t in &batch.deletes {
            reference.remove(t);
        }
        for t in &batch.inserts {
            reference.insert(t.clone());
        }
        deletions_seen += outcome.report.deleted;
        if outcome.report.compacted {
            compactions_seen += 1;
        }

        // From-scratch rebuild over exactly the same triples.
        let rebuilt =
            SuccinctEdgeStore::build(&onto, &Graph::from_triples(reference.iter().cloned()))
                .unwrap();
        assert_eq!(
            session.store().len(),
            reference.len(),
            "batch {tick}: hybrid triple count drifted"
        );

        for (cq, hybrid_result) in session.registry().iter().zip(&outcome.results) {
            assert_eq!(cq.id, hybrid_result.id);
            let fresh = se_sparql::exec::execute(&rebuilt, &cq.query, &cq.options).unwrap();
            assert_eq!(
                normalize(&hybrid_result.results),
                normalize(&fresh),
                "batch {tick}: query '{}' disagrees between hybrid and rebuild",
                cq.id
            );
            // Incremental materialized results == one full re-evaluation
            // over the live store itself.
            let refresh =
                se_sparql::exec::execute(session.store(), &cq.query, &cq.options).unwrap();
            assert_eq!(
                normalize(&hybrid_result.results),
                normalize(&refresh),
                "batch {tick}: query '{}' materialized set vs full re-evaluation",
                cq.id
            );
            // The added/removed change streams alone reconstruct the
            // full set (what a change-frame subscriber materializes).
            let m = mirror.entry(cq.id.clone()).or_default();
            for row in &hybrid_result.added.rows {
                *m.entry(format!("{row:?}")).or_insert(0) += 1;
            }
            for row in &hybrid_result.removed.rows {
                *m.entry(format!("{row:?}")).or_insert(0) -= 1;
            }
            m.retain(|_, c| *c != 0);
            let mut from_changes: Vec<String> = Vec::new();
            for (row, &c) in m.iter() {
                assert!(c > 0, "batch {tick}: '{}' over-removed {row}", cq.id);
                from_changes.extend(std::iter::repeat_n(row.clone(), c as usize));
            }
            from_changes.sort();
            assert_eq!(
                from_changes,
                normalize(&hybrid_result.results),
                "batch {tick}: query '{}' change stream drifted from the full set",
                cq.id
            );
            if cq.id == "anomaly" {
                anomaly_alerts += hybrid_result.results.len();
            }
        }
        if outcome.report.compacted {
            agreement_after_compaction = true;
        }
    }

    assert!(
        compactions_seen >= 1,
        "the stream must cross at least one compaction boundary"
    );
    assert!(
        agreement_after_compaction,
        "agreement checked post-compaction"
    );
    assert!(
        deletions_seen > 0,
        "the stream must exercise the deletion path"
    );
    assert!(
        anomaly_alerts > 0,
        "30% anomaly rate over 12 batches must raise alerts"
    );
    // The delta path must actually have served the steady state: every
    // batch after the seeding one, for every incremental-strategy query.
    let stats = session.stream_stats();
    assert_eq!(stats.batches, batches.len() as u64);
    assert_eq!(
        stats.incremental_evals,
        (batches.len() as u64 - 1) * incr as u64,
        "all post-seed batches must be delta-served"
    );
    assert_eq!(
        stats.full_evals,
        incr as u64 + batches.len() as u64 * full as u64,
        "full evals = one seed per incremental query + every batch for fallbacks"
    );
    assert!(stats.delta_added > 0 && stats.delta_removed > 0);
}

/// The sharded acceptance property: across >= 12 batches with deletions
/// and compactions, the scatter/gather [`ShardedHybridStore`] answers all
/// eleven query shapes (reasoning on and off) identically to a single
/// [`HybridStore`] *and* a from-scratch rebuild — with inline per-shard
/// compaction, with background compaction racing the stream, with the
/// workload-aware routing policy from `se-datagen`, and with the
/// persistent worker pool **forced onto every small batch** (the
/// break-even regime the runtime exists for, far below `POOL_MIN_OPS`).
#[test]
fn sharded_agrees_with_single_store_and_rebuild() {
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.3,
        seed: 97,
    };
    let batches = generate_stream(&cfg, 12, 3);
    assert!(batches.len() >= 12, "acceptance requires >= 12 batches");
    let policy = CompactionPolicy { max_overlay: 90 };

    // Store variants under test, all fed the same stream.
    let single = HybridStore::build(&onto, &Graph::new())
        .unwrap()
        .with_policy(policy);
    let sharded_inline = ShardedHybridStore::build(&onto, &Graph::new(), 3)
        .unwrap()
        .with_policy(policy)
        .with_background_compaction(false);
    let sharded_bg = ShardedHybridStore::build_with_policy(
        &onto,
        &Graph::new(),
        4,
        ShardPolicy::ByIri(Arc::new(water_shard_group)),
    )
    .unwrap()
    .with_policy(policy)
    .with_background_compaction(true);
    // Forced-pool configuration: every batch of this small stream goes
    // through the persistent shard workers (pipelined encode, pooled
    // drain), with background rebuilds racing on the same workers.
    let sharded_pool = ShardedHybridStore::build(&onto, &Graph::new(), 3)
        .unwrap()
        .with_policy(policy)
        .with_background_compaction(true)
        .with_ingest_mode(IngestMode::Pooled);

    let mut single = StreamSession::new(single);
    let mut sharded_inline = StreamSession::new(sharded_inline);
    let mut sharded_bg = StreamSession::new(sharded_bg);
    let mut sharded_pool = StreamSession::new(sharded_pool);
    for (id, text, opts) in shape_queries() {
        single.register_query(id, &text, opts.clone()).unwrap();
        sharded_inline
            .register_query(id, &text, opts.clone())
            .unwrap();
        sharded_bg.register_query(id, &text, opts.clone()).unwrap();
        sharded_pool.register_query(id, &text, opts).unwrap();
    }

    let mut reference: BTreeSet<Triple> = BTreeSet::new();
    let mut inline_compactions = 0usize;
    let mut deletions = 0usize;

    for (tick, batch) in batches.iter().enumerate() {
        let out_single = single.apply_batch(&batch.inserts, &batch.deletes).unwrap();
        let out_inline = sharded_inline
            .apply_batch(&batch.inserts, &batch.deletes)
            .unwrap();
        let out_bg = sharded_bg
            .apply_batch(&batch.inserts, &batch.deletes)
            .unwrap();
        let out_pool = sharded_pool
            .apply_batch(&batch.inserts, &batch.deletes)
            .unwrap();

        for t in &batch.deletes {
            reference.remove(t);
        }
        for t in &batch.inserts {
            reference.insert(t.clone());
        }
        deletions += out_single.report.deleted;
        if out_inline.report.compacted {
            inline_compactions += 1;
        }
        // Effective mutation counts agree between the engines.
        assert_eq!(
            (out_single.report.inserted, out_single.report.deleted),
            (out_inline.report.inserted, out_inline.report.deleted),
            "batch {tick}: ingest accounting diverged (inline)"
        );
        assert_eq!(
            (out_single.report.inserted, out_single.report.deleted),
            (out_bg.report.inserted, out_bg.report.deleted),
            "batch {tick}: ingest accounting diverged (background)"
        );
        assert_eq!(
            (out_single.report.inserted, out_single.report.deleted),
            (out_pool.report.inserted, out_pool.report.deleted),
            "batch {tick}: ingest accounting diverged (forced pool)"
        );
        assert_eq!(sharded_inline.store().len(), reference.len());
        assert_eq!(sharded_bg.store().len(), reference.len());
        assert_eq!(sharded_pool.store().len(), reference.len());

        let rebuilt =
            SuccinctEdgeStore::build(&onto, &Graph::from_triples(reference.iter().cloned()))
                .unwrap();
        for ((((cq, rs_single), rs_inline), rs_bg), rs_pool) in single
            .registry()
            .iter()
            .zip(&out_single.results)
            .zip(&out_inline.results)
            .zip(&out_bg.results)
            .zip(&out_pool.results)
        {
            let fresh = se_sparql::exec::execute(&rebuilt, &cq.query, &cq.options).unwrap();
            let want = normalize(&fresh);
            assert_eq!(
                normalize(&rs_single.results),
                want,
                "batch {tick}: '{}' single vs rebuild",
                cq.id
            );
            assert_eq!(
                normalize(&rs_inline.results),
                want,
                "batch {tick}: '{}' sharded-inline vs rebuild",
                cq.id
            );
            assert_eq!(
                normalize(&rs_bg.results),
                want,
                "batch {tick}: '{}' sharded-background vs rebuild",
                cq.id
            );
            assert_eq!(
                normalize(&rs_pool.results),
                want,
                "batch {tick}: '{}' sharded-forced-pool vs rebuild",
                cq.id
            );
            // Materialized set == full re-evaluation on the sharded
            // engine whose queries run pooled on the shard workers.
            let refresh =
                se_sparql::exec::execute(sharded_pool.store(), &cq.query, &cq.options).unwrap();
            assert_eq!(
                normalize(&refresh),
                want,
                "batch {tick}: '{}' pooled full re-evaluation vs rebuild",
                cq.id
            );
        }
    }

    // Drain in-flight background rebuilds and re-check agreement after
    // the final swaps.
    sharded_bg.store_mut().flush_compactions();
    sharded_pool.store_mut().flush_compactions();
    let rebuilt =
        SuccinctEdgeStore::build(&onto, &Graph::from_triples(reference.iter().cloned())).unwrap();
    for cq in sharded_bg.registry().iter().collect::<Vec<_>>() {
        let fresh = se_sparql::exec::execute(&rebuilt, &cq.query, &cq.options).unwrap();
        let got = se_sparql::exec::execute(sharded_bg.store(), &cq.query, &cq.options).unwrap();
        assert_eq!(
            normalize(&got),
            normalize(&fresh),
            "post-flush: '{}' sharded-background vs rebuild",
            cq.id
        );
        let got = se_sparql::exec::execute(sharded_pool.store(), &cq.query, &cq.options).unwrap();
        assert_eq!(
            normalize(&got),
            normalize(&fresh),
            "post-flush: '{}' sharded-forced-pool vs rebuild",
            cq.id
        );
    }

    assert!(inline_compactions >= 1, "stream must cross a compaction");
    assert!(
        sharded_inline.store().stats().compactions >= 1,
        "inline sharded store must compact"
    );
    assert!(
        sharded_bg.store().stats().compactions >= 1,
        "background sharded store must compact"
    );
    let pool_stats = sharded_pool.store().stats();
    assert_eq!(
        pool_stats.pooled_batches,
        batches.len(),
        "forced pool must take every batch"
    );
    assert_eq!(pool_stats.inline_batches, 0);
    assert!(
        sharded_pool.store().worker_threads() > 0,
        "forced pool spawned its workers"
    );
    assert!(deletions > 0, "stream must exercise the deletion path");
    // Every engine — single-overlay and all three sharded variants —
    // served the steady state differentially.
    let (incr, _) = single.registry().strategy_counts();
    assert!(incr > 0);
    for (name, stats) in [
        ("single", single.stream_stats()),
        ("sharded-inline", sharded_inline.stream_stats()),
        ("sharded-background", sharded_bg.stream_stats()),
        ("sharded-pool", sharded_pool.stream_stats()),
    ] {
        assert_eq!(
            stats.incremental_evals,
            (batches.len() as u64 - 1) * incr as u64,
            "{name}: all post-seed batches must be delta-served"
        );
        assert!(stats.delta_added > 0, "{name}: deltas captured");
    }
}

/// The v02 acceptance property: checkpoint both engines **mid-stream** —
/// dirty overlays, pending tombstones, overflow terms, background
/// rebuilds possibly in flight — resume them from disk, continue the
/// same `stream_agreement` batch schedule, and require every one of the
/// eleven query shapes (reasoning on and off) to agree with the
/// never-persisted sessions and a from-scratch rebuild, every batch.
/// The save itself must not compact.
#[test]
fn save_load_mid_stream_preserves_agreement() {
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.3,
        seed: 97,
    };
    let batches = generate_stream(&cfg, 12, 3);
    let policy = CompactionPolicy { max_overlay: 90 };
    let scratch = |name: &str| -> PathBuf {
        let dir = std::env::temp_dir().join(format!("se-agree-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let single_dir = scratch("single");
    let sharded_dir = scratch("sharded");

    let single = HybridStore::build(&onto, &Graph::new())
        .unwrap()
        .with_policy(policy);
    let sharded = ShardedHybridStore::build(&onto, &Graph::new(), 3)
        .unwrap()
        .with_policy(policy)
        .with_background_compaction(true)
        .with_ingest_mode(IngestMode::Pooled);
    let mut live_single = StreamSession::new(single.clone());
    let mut live_sharded = StreamSession::new(
        ShardedHybridStore::build(&onto, &Graph::new(), 3)
            .unwrap()
            .with_policy(policy)
            .with_background_compaction(true)
            .with_ingest_mode(IngestMode::Pooled),
    );
    let mut ckpt_single = StreamSession::new(single);
    let mut ckpt_sharded = StreamSession::new(sharded);
    for (id, text, opts) in shape_queries() {
        live_single.register_query(id, &text, opts.clone()).unwrap();
        live_sharded
            .register_query(id, &text, opts.clone())
            .unwrap();
        ckpt_single.register_query(id, &text, opts.clone()).unwrap();
        ckpt_sharded.register_query(id, &text, opts).unwrap();
    }

    let mut reference: BTreeSet<Triple> = BTreeSet::new();
    let restart_at = batches.len() / 2;
    for (tick, batch) in batches.iter().enumerate() {
        if tick == restart_at {
            // Mid-stream checkpoint: both stores are dirty (the policy
            // guarantees overlay churn by now) and the sharded session
            // may have rebuilds racing on its workers.
            assert!(
                !ckpt_single.store().delta().is_empty(),
                "checkpoint must capture a dirty overlay"
            );
            let compactions = ckpt_single.store().stats().compactions;
            let overlay = ckpt_single.store().delta().overlay_len();
            ckpt_single.save(&single_dir).unwrap();
            assert_eq!(
                ckpt_single.store().stats().compactions,
                compactions,
                "v02 save must not compact"
            );
            assert_eq!(ckpt_single.store().delta().overlay_len(), overlay);
            ckpt_sharded.save(&sharded_dir).unwrap();

            // Simulated restart: drop the sessions, resume from disk.
            drop(ckpt_single);
            drop(ckpt_sharded);
            ckpt_single = StreamSession::resume(&single_dir, &onto).unwrap();
            ckpt_sharded = StreamSession::resume(&sharded_dir, &onto).unwrap();
            assert_eq!(ckpt_single.registry().len(), shape_queries().len());
            assert_eq!(ckpt_sharded.registry().len(), shape_queries().len());
            // Resume recomputes strategies but starts unseeded — the
            // next batch re-seeds the materialized multisets.
            assert!(ckpt_single.registry().wants_delta());
            assert!(ckpt_single.registry().iter().all(|q| !q.is_seeded()));
        }
        let out_ls = live_single
            .apply_batch(&batch.inserts, &batch.deletes)
            .unwrap();
        let out_lsh = live_sharded
            .apply_batch(&batch.inserts, &batch.deletes)
            .unwrap();
        let out_cs = ckpt_single
            .apply_batch(&batch.inserts, &batch.deletes)
            .unwrap();
        let out_csh = ckpt_sharded
            .apply_batch(&batch.inserts, &batch.deletes)
            .unwrap();
        for t in &batch.deletes {
            reference.remove(t);
        }
        for t in &batch.inserts {
            reference.insert(t.clone());
        }
        assert_eq!(
            (out_ls.report.inserted, out_ls.report.deleted),
            (out_cs.report.inserted, out_cs.report.deleted),
            "batch {tick}: resumed single store's accounting diverged"
        );
        assert_eq!(
            (out_lsh.report.inserted, out_lsh.report.deleted),
            (out_csh.report.inserted, out_csh.report.deleted),
            "batch {tick}: resumed sharded store's accounting diverged"
        );
        let rebuilt =
            SuccinctEdgeStore::build(&onto, &Graph::from_triples(reference.iter().cloned()))
                .unwrap();
        for (((cq, rs_live), rs_ckpt), rs_ckpt_sh) in live_single
            .registry()
            .iter()
            .zip(&out_ls.results)
            .zip(&out_cs.results)
            .zip(&out_csh.results)
        {
            let fresh = se_sparql::exec::execute(&rebuilt, &cq.query, &cq.options).unwrap();
            let want = normalize(&fresh);
            assert_eq!(
                normalize(&rs_live.results),
                want,
                "batch {tick}: '{}' live single vs rebuild",
                cq.id
            );
            assert_eq!(
                normalize(&rs_ckpt.results),
                want,
                "batch {tick}: '{}' resumed single vs rebuild",
                cq.id
            );
            assert_eq!(
                normalize(&rs_ckpt_sh.results),
                want,
                "batch {tick}: '{}' resumed sharded vs rebuild",
                cq.id
            );
            // The checkpointed sessions seed on batch 0, re-seed on the
            // first post-restart batch, and run differentially on every
            // other batch — agreeing throughout.
            if cq.id == "scan" {
                let expect_incr = tick != 0 && tick != restart_at;
                assert_eq!(
                    rs_ckpt.incremental, expect_incr,
                    "batch {tick}: resumed single"
                );
                assert_eq!(
                    rs_ckpt_sh.incremental, expect_incr,
                    "batch {tick}: resumed sharded"
                );
            }
        }
    }
    ckpt_sharded.store_mut().flush_compactions();
    live_sharded.store_mut().flush_compactions();
    assert_eq!(
        se_core::TripleSource::len(ckpt_sharded.store()),
        reference.len()
    );
    let _ = std::fs::remove_dir_all(&single_dir);
    let _ = std::fs::remove_dir_all(&sharded_dir);
}

/// Compiled-IR execution (through a shared [`se_sparql::PlanCache`])
/// agrees with the interpreted executor for every query shape, with
/// reasoning on and off, against the live hybrid store, the sharded
/// store, and a pinned MVCC snapshot — on both the cold (parse +
/// compile) and the hot (cached plan, zero parsing) path.
#[test]
fn compiled_plans_agree_with_interpreter_on_every_shape() {
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.3,
        seed: 97,
    };
    let batches = generate_stream(&cfg, 8, 3);
    let mut hybrid = HybridStore::build(&onto, &Graph::new()).unwrap();
    let mut sharded = ShardedHybridStore::build(&onto, &Graph::new(), 3).unwrap();
    for batch in &batches {
        hybrid.apply(&batch.inserts, &batch.deletes).unwrap();
        sharded.apply(&batch.inserts, &batch.deletes).unwrap();
    }
    let snapshot = sharded.snapshot();

    let shapes = shape_queries();
    assert_eq!(shapes.len(), 13, "the harness covers all 13 shapes");
    // One cache across all three stores: plans hold term-level pattern
    // templates (encoding happens at execution), so a plan compiled
    // against one store's cardinalities stays correct on another.
    let cache = se_sparql::PlanCache::new();
    let stores: [(&str, &dyn TripleSource); 3] = [
        ("hybrid", &hybrid),
        ("sharded", &sharded),
        ("snapshot", &snapshot),
    ];
    // Distinct (text, options) combinations = expected text-level misses
    // ("type-reasoned"/"type-exact" share their text); every other
    // execution must be a zero-parse hit.
    let mut combos = BTreeSet::new();
    let mut runs = 0u64;
    for (store_name, store) in stores {
        for (id, text, _) in &shapes {
            for opts in [QueryOptions::default(), QueryOptions::without_reasoning()] {
                combos.insert((text.clone(), opts.reasoning));
                runs += 2;
                let want = normalize(&se_sparql::execute_query(store, text, &opts).unwrap());
                let cold = se_sparql::execute_query_cached(store, text, &opts, &cache).unwrap();
                assert_eq!(
                    normalize(&cold),
                    want,
                    "'{id}' on {store_name} (reasoning={}): cold compiled run",
                    opts.reasoning
                );
                let hot = se_sparql::execute_query_cached(store, text, &opts, &cache).unwrap();
                assert_eq!(
                    normalize(&hot),
                    want,
                    "'{id}' on {store_name} (reasoning={}): cached compiled run",
                    opts.reasoning
                );
            }
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, combos.len() as u64);
    assert_eq!(stats.hits, runs - combos.len() as u64);
    assert!(
        stats.compiles <= stats.misses,
        "shape sharing can only help"
    );
}

/// Two same-shape queries that differ only in their constants share one
/// compiled plan, and each still gets its own constant-correct answers.
#[test]
fn shared_shape_plan_binds_constants_correctly() {
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.3,
        seed: 97,
    };
    let batches = generate_stream(&cfg, 6, 3);
    let mut hybrid = HybridStore::build(&onto, &Graph::new()).unwrap();
    for batch in &batches {
        hybrid.apply(&batch.inserts, &batch.deletes).unwrap();
    }
    let q = |station: usize| {
        format!(
            "PREFIX sosa: <http://www.w3.org/ns/sosa/> \
             SELECT ?o WHERE {{ <http://engie.example/station/{station}> sosa:hosts ?o }}"
        )
    };
    let opts = QueryOptions::default();
    let cache = se_sparql::PlanCache::new();
    for station in [1, 2] {
        let text = q(station);
        let want = normalize(&se_sparql::execute_query(&hybrid, &text, &opts).unwrap());
        assert!(!want.is_empty(), "station {station} hosts sensors");
        let got = se_sparql::execute_query_cached(&hybrid, &text, &opts, &cache).unwrap();
        assert_eq!(normalize(&got), want, "station {station}");
    }
    // Distinct texts, one shape: both miss at the text level, but the
    // second bound its constants into the first's compiled plan.
    let stats = cache.stats();
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.compiles, 1, "one plan serves both constants");
}

#[test]
fn hybrid_matches_rebuild_pattern_accesses_directly() {
    // Below the SPARQL layer: raw TripleSource accesses agree too (guards
    // the trait contract the executor relies on — ordering aside).
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.2,
        seed: 31,
    };
    let batches = generate_stream(&cfg, 6, 2);
    let mut hybrid = HybridStore::build(&onto, &Graph::new()).unwrap();
    let mut reference: BTreeSet<Triple> = BTreeSet::new();
    for batch in &batches {
        hybrid.apply(&batch.inserts, &batch.deletes).unwrap();
        for t in &batch.deletes {
            reference.remove(t);
        }
        for t in &batch.inserts {
            reference.insert(t.clone());
        }
    }
    let rebuilt =
        SuccinctEdgeStore::build(&onto, &Graph::from_triples(reference.iter().cloned())).unwrap();

    let observes = se_rdf::vocab::sosa::OBSERVES;
    let p_hybrid = TripleSource::property_id(&hybrid, observes).unwrap();
    let p_rebuilt = rebuilt.property_id(observes).unwrap();
    let decode = |src: &dyn TripleSource, pairs: Vec<(u64, se_core::Value)>| -> Vec<String> {
        let mut v: Vec<String> = pairs
            .into_iter()
            .map(|(s, o)| {
                format!(
                    "{} -> {}",
                    src.value_to_term(se_core::Value::Instance(s)).unwrap(),
                    src.value_to_term(o).unwrap()
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        decode(&hybrid, TripleSource::scan_predicate(&hybrid, p_hybrid)),
        decode(&rebuilt, rebuilt.scan_predicate(p_rebuilt)),
    );
    // Counts (optimizer statistics) agree as well.
    assert_eq!(
        TripleSource::predicate_count(&hybrid, p_hybrid),
        rebuilt.predicate_count(p_rebuilt)
    );
    assert_eq!(TripleSource::len(&hybrid), rebuilt.len());
    assert_eq!(
        TripleSource::type_total(&hybrid),
        rebuilt.type_store().len()
    );
}

/// The MVCC acceptance property: reader threads pin [`StoreSnapshot`]s
/// mid-ingest while the writer applies batches and triggers compactions
/// (including background rebuilds racing the readers). Every pinned
/// snapshot must answer **all eleven query shapes** identically to a
/// from-scratch [`SuccinctEdgeStore`] built from the stream prefix at
/// the snapshot's epoch — i.e. a snapshot is exactly "the store as of
/// batch N", no matter what the live store does afterwards.
#[test]
fn pinned_snapshots_agree_with_rebuild_at_their_epoch() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::RwLock;

    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.3,
        seed: 53,
    };
    let batches = generate_stream(&cfg, 12, 3);

    // contents[e] = the triples visible after epoch e (e applied batches).
    let mut contents: Vec<BTreeSet<Triple>> = vec![BTreeSet::new()];
    for batch in &batches {
        let mut next = contents.last().unwrap().clone();
        for t in &batch.deletes {
            next.remove(t);
        }
        for t in &batch.inserts {
            next.insert(t.clone());
        }
        contents.push(next);
    }

    let store = ShardedHybridStore::build(&onto, &Graph::new(), 4)
        .unwrap()
        .with_policy(CompactionPolicy { max_overlay: 60 })
        .with_background_compaction(true);
    let store = RwLock::new(store);
    let live_epoch = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    // Set when a snapshot verified *after* the live store had moved past
    // its epoch — the isolation case the whole mechanism exists for.
    let verified_stale = AtomicBool::new(false);

    let shapes = shape_queries();
    let verify_at_epoch = |snap: &se_stream::StoreSnapshot| {
        let e = snap.epoch() as usize;
        let prefix = &contents[e];
        assert_eq!(
            TripleSource::len(snap),
            prefix.len(),
            "epoch {e}: snapshot triple count diverged from its prefix"
        );
        let rebuilt =
            SuccinctEdgeStore::build(&onto, &Graph::from_triples(prefix.iter().cloned())).unwrap();
        for (id, text, opts) in &shapes {
            let got = se_sparql::execute_query(snap, text, opts).unwrap();
            let fresh = se_sparql::execute_query(&rebuilt, text, opts).unwrap();
            assert_eq!(
                normalize(&got),
                normalize(&fresh),
                "epoch {e}: query '{id}' disagrees between pinned snapshot and rebuild"
            );
        }
    };

    std::thread::scope(|scope| {
        // Writer: applies every batch, pacing so readers pin mid-stream.
        scope.spawn(|| {
            for batch in &batches {
                store
                    .write()
                    .unwrap()
                    .apply(&batch.inserts, &batch.deletes)
                    .unwrap();
                live_epoch.fetch_add(1, Ordering::Release);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done.store(true, Ordering::Release);
        });
        // Readers: pin under a brief read lock, then verify lock-free
        // while the writer keeps applying and compacting.
        for _ in 0..3 {
            scope.spawn(|| {
                let mut verified = 0usize;
                loop {
                    let snap = store.read().unwrap().snapshot();
                    verify_at_epoch(&snap);
                    if live_epoch.load(Ordering::Acquire) > snap.epoch() {
                        verified_stale.store(true, Ordering::Release);
                    }
                    verified += 1;
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                }
                assert!(verified > 0);
            });
        }
    });

    let store = store.into_inner().unwrap();
    let stats = store.stats();
    assert_eq!(stats.epoch, batches.len() as u64);
    assert!(
        stats.compactions >= 1,
        "the stream must cross at least one compaction while snapshots are pinned"
    );
    assert!(
        stats.snapshots >= 3,
        "every reader thread must have pinned at least one snapshot"
    );
    assert_eq!(stats.live_pins, 0, "all pins released");
    assert!(
        verified_stale.load(Ordering::Acquire),
        "at least one snapshot must verify after the live store moved past its epoch"
    );
    // The final snapshot equals the full replay.
    verify_at_epoch(&store.snapshot());
}
