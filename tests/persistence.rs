//! Persistence round-trip at system scale: a saved-and-reloaded store must
//! answer the whole workload exactly like the original (the paper's
//! administration model ships pre-encoded stores/dictionaries to edge
//! devices, §4).

use se_core::SuccinctEdgeStore;
use se_datagen::{lubm, workload};
use se_ontology::lubm_ontology;
use se_sparql::{execute_query, QueryOptions, ResultSet};

fn normalize(rs: &ResultSet) -> Vec<String> {
    let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

#[test]
fn saved_store_answers_the_workload_identically() {
    let mut graph = lubm::generate(1, 42);
    graph.truncate(5_000);
    let onto = lubm_ontology();
    let original = SuccinctEdgeStore::build(&onto, &graph).unwrap();

    let mut buf = Vec::new();
    original.save(&mut buf).unwrap();
    let reloaded = SuccinctEdgeStore::load(&mut buf.as_slice()).unwrap();
    assert_eq!(reloaded.len(), original.len());

    for wq in workload::full_workload(&graph) {
        let opts = if wq.reasoning {
            QueryOptions::default()
        } else {
            QueryOptions::without_reasoning()
        };
        let a = execute_query(&original, &wq.text, &opts).unwrap();
        let b = execute_query(&reloaded, &wq.text, &opts).unwrap();
        assert_eq!(normalize(&a), normalize(&b), "query {}", wq.id);
    }
}

#[test]
fn persisted_file_size_matches_figures_9_and_10_accounting() {
    // The on-disk experiments (Figures 9/10) report serialized_size();
    // the actual save() output must match that accounting.
    let graph = se_datagen::water::generate(500, 7);
    let onto = se_ontology::water_ontology();
    let store = SuccinctEdgeStore::build(&onto, &graph).unwrap();
    let mut buf = Vec::new();
    store.save(&mut buf).unwrap();
    let accounted = store.dictionary_serialized_size() + store.triple_serialized_size();
    assert!(
        buf.len() >= accounted && buf.len() <= accounted + 256,
        "save() wrote {} bytes, accounting says {accounted}",
        buf.len()
    );
}
