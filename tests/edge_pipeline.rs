//! The paper's deployment scenario end to end (§1, §4): a flow of RDF
//! graphs sharing a common topology, each built into a fresh SuccinctEdge
//! instance and checked by a fixed set of continuous SPARQL queries —
//! "these queries are executed once per graph instance".

use se_core::SuccinctEdgeStore;
use se_datagen::water::{generate_with, WaterConfig};
use se_datagen::workload::water_anomaly_query;
use se_ontology::water_ontology;
use se_sparql::{execute_query, parse_query, QueryOptions};

#[test]
fn continuous_query_over_a_stream_of_graph_instances() {
    let onto = water_ontology();
    let query = parse_query(&water_anomaly_query()).unwrap();
    let opts = QueryOptions::default();

    let mut alerts = 0usize;
    let mut instances_with_alerts = 0usize;
    for tick in 0..20 {
        // One graph instance per tick, as emitted by the sensor network.
        let anomalous_tick = tick % 4 == 0;
        let graph = generate_with(&WaterConfig {
            stations: 2,
            rounds: 8,
            anomaly_rate: if anomalous_tick { 0.5 } else { 0.0 },
            seed: 1000 + tick,
        });
        let store = SuccinctEdgeStore::build(&onto, &graph).unwrap();
        let rs = se_sparql::exec::execute(&store, &query, &opts).unwrap();
        if !rs.is_empty() {
            assert!(anomalous_tick, "clean tick {tick} raised a false alert");
            instances_with_alerts += 1;
            alerts += rs.len();
        }
    }
    // Ticks 0, 4, 8, 12, 16 inject anomalies at 50% over 16 pressure
    // measurements each; the chance that *no* tick produces any alert is
    // (0.5^16)^5 ≈ 1e-24 — treat as impossible. Individual ticks may
    // legitimately stay clean, so only the aggregate is asserted.
    assert!(instances_with_alerts >= 1, "no instance raised an alert");
    assert!(alerts >= 1);
}

#[test]
fn clean_stream_raises_no_alerts() {
    let onto = water_ontology();
    let query = parse_query(&water_anomaly_query()).unwrap();
    let opts = QueryOptions::default();
    for tick in 0..5 {
        let graph = generate_with(&WaterConfig {
            stations: 2,
            rounds: 6,
            anomaly_rate: 0.0,
            seed: 2000 + tick,
        });
        let store = SuccinctEdgeStore::build(&onto, &graph).unwrap();
        let rs = se_sparql::exec::execute(&store, &query, &opts).unwrap();
        assert!(
            rs.is_empty(),
            "false alert on clean data at tick {tick}: {:?}",
            rs.rows.first()
        );
    }
}

#[test]
fn reasoning_is_required_to_catch_both_stations() {
    // Without LiteMat reasoning, `?u1 a qudt:PressureUnit` only matches the
    // profile-2 station (typed PressureUnit directly); profile 1 types its
    // units PressureOrStressUnit ⊑ PressureUnit and is missed. This is the
    // §2 argument for reasoning-enabled queries.
    let onto = water_ontology();
    let graph = generate_with(&WaterConfig {
        stations: 2,
        rounds: 30,
        anomaly_rate: 0.4,
        seed: 77,
    });
    let store = SuccinctEdgeStore::build(&onto, &graph).unwrap();
    let q = water_anomaly_query();

    let with = execute_query(&store, &q, &QueryOptions::default()).unwrap();
    let without = execute_query(&store, &q, &QueryOptions::without_reasoning()).unwrap();
    assert!(
        with.len() > without.len(),
        "reasoning must widen detection: {} vs {}",
        with.len(),
        without.len()
    );
    let stations = |rs: &se_sparql::ResultSet| -> std::collections::BTreeSet<String> {
        rs.column("x")
            .unwrap()
            .iter()
            .filter_map(|t| t.as_ref().map(|t| t.str_value().to_string()))
            .collect()
    };
    assert_eq!(stations(&with).len(), 2, "reasoning sees both stations");
    assert!(
        stations(&without).len() <= 1,
        "plain matching misses a station"
    );
}

#[test]
fn per_instance_build_is_fast_enough_for_streaming() {
    // Sanity bound, not a benchmark: building a 250-triple instance must
    // stay well under a sensor emission interval (generous 250 ms budget
    // to keep CI noise-proof; the measured value is ~0.5 ms).
    let onto = water_ontology();
    let graph = se_datagen::water::generate(250, 9);
    let t0 = std::time::Instant::now();
    let store = SuccinctEdgeStore::build(&onto, &graph).unwrap();
    let dt = t0.elapsed();
    assert_eq!(store.len(), 250, "the 250-triple dataset is duplicate-free");
    assert!(dt.as_millis() < 250, "construction took {dt:?}");
}
