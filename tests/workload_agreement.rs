//! Cross-system agreement: SuccinctEdge (LiteMat reasoning) and both
//! baselines (UNION rewriting) must produce identical answer sets on the
//! paper's full S/M/R workload.
//!
//! This is the reproduction's central correctness property: three
//! independently implemented storage layouts and two independently
//! implemented reasoning mechanisms agree on every query.

use se_baselines::{rewrite_with_ontology, DiskStore, MultiIndexStore};
use se_core::SuccinctEdgeStore;
use se_datagen::{lubm, workload};
use se_ontology::lubm_ontology;
use se_sparql::{execute_query, parse_query, QueryOptions, ResultSet};

fn normalize(rs: &ResultSet) -> Vec<String> {
    let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

#[test]
fn all_systems_agree_on_the_full_workload() {
    let mut graph = lubm::generate(1, 42);
    graph.truncate(15_000);
    let onto = lubm_ontology();
    let dicts = onto.encode().unwrap();
    let se = SuccinctEdgeStore::build(&onto, &graph).unwrap();
    let mem = MultiIndexStore::build(&graph);
    let disk = DiskStore::build_temp(&graph, 128).unwrap();

    for wq in workload::full_workload(&graph) {
        let opts = if wq.reasoning {
            QueryOptions::default()
        } else {
            QueryOptions::without_reasoning()
        };
        let a = normalize(&execute_query(&se, &wq.text, &opts).unwrap());

        let parsed = parse_query(&wq.text).unwrap();
        let baseline_query = if wq.reasoning {
            rewrite_with_ontology(&parsed, &dicts).unwrap().0
        } else {
            parsed
        };
        let b = normalize(&mem.query(&baseline_query).unwrap());
        let c = normalize(&disk.query(&baseline_query).unwrap());

        assert_eq!(
            a.len(),
            b.len(),
            "{}: SuccinctEdge vs memory baseline size",
            wq.id
        );
        assert_eq!(a, b, "{}: SuccinctEdge vs memory baseline rows", wq.id);
        assert_eq!(b, c, "{}: memory vs disk baseline rows", wq.id);
    }
    disk.destroy().unwrap();
}

#[test]
fn reasoning_strictly_extends_plain_answers() {
    let mut graph = lubm::generate(1, 42);
    graph.truncate(15_000);
    let onto = lubm_ontology();
    let se = SuccinctEdgeStore::build(&onto, &graph).unwrap();

    // R5 shares M4's text; with reasoning the answer set must be a superset.
    let m4 = workload::m_queries(&graph)
        .into_iter()
        .find(|q| q.id == "M4")
        .unwrap();
    let plain = execute_query(&se, &m4.text, &QueryOptions::without_reasoning()).unwrap();
    let reasoned = execute_query(&se, &m4.text, &QueryOptions::default()).unwrap();
    assert!(
        reasoned.len() >= plain.len(),
        "reasoning must not lose answers ({} vs {})",
        reasoned.len(),
        plain.len()
    );
    let plain_rows = normalize(&plain);
    let reasoned_rows = normalize(&reasoned);
    for row in &plain_rows {
        assert!(
            reasoned_rows.contains(row),
            "plain answer lost under reasoning"
        );
    }
}

#[test]
fn reasoning_answers_match_derived_triple_counts() {
    // R2 (?X worksFor ?Z with Person/Department/University typing) must
    // see every professor/lecturer: check against a hand computed count.
    let graph = {
        let mut g = lubm::generate(1, 42);
        g.truncate(15_000);
        g
    };
    let onto = lubm_ontology();
    let se = SuccinctEdgeStore::build(&onto, &graph).unwrap();
    let r2 = workload::r_queries(&graph)
        .into_iter()
        .find(|q| q.id == "R2")
        .unwrap();
    let rs = execute_query(&se, &r2.text, &QueryOptions::default()).unwrap();

    // Manual count: worksFor assertions whose subject is typed with any
    // Person subclass, whose object is a typed Department with a
    // subOrganizationOf edge to a typed University.
    let works_for = se_rdf::vocab::lubm::iri("worksFor");
    let sub_org = se_rdf::vocab::lubm::iri("subOrganizationOf");
    let ty = se_rdf::vocab::rdf::TYPE;
    let person_like = [
        "FullProfessor",
        "AssociateProfessor",
        "AssistantProfessor",
        "VisitingProfessor",
        "Lecturer",
        "PostDoc",
        "Chair",
    ];
    let typed: std::collections::HashMap<&se_rdf::Term, Vec<&str>> = {
        let mut m: std::collections::HashMap<&se_rdf::Term, Vec<&str>> =
            std::collections::HashMap::new();
        for t in &graph {
            if t.predicate.as_iri() == Some(ty) {
                if let Some(c) = t.object.as_iri() {
                    m.entry(&t.subject).or_default().push(c);
                }
            }
        }
        m
    };
    let is_person = |term: &se_rdf::Term| {
        typed.get(term).is_some_and(|cs| {
            cs.iter().any(|c| {
                person_like
                    .iter()
                    .any(|p| *c == se_rdf::vocab::lubm::iri(p))
                    || *c == se_rdf::vocab::lubm::iri("UndergraduateStudent")
                    || *c == se_rdf::vocab::lubm::iri("GraduateStudent")
            })
        })
    };
    let is_typed = |term: &se_rdf::Term, class: &str| {
        typed
            .get(term)
            .is_some_and(|cs| cs.iter().any(|c| *c == se_rdf::vocab::lubm::iri(class)))
    };
    let mut expected = 0usize;
    for t in &graph {
        if t.predicate.as_iri() == Some(works_for.as_str())
            && is_person(&t.subject)
            && is_typed(&t.object, "Department")
        {
            for t2 in &graph {
                if t2.subject == t.object
                    && t2.predicate.as_iri() == Some(sub_org.as_str())
                    && is_typed(&t2.object, "University")
                {
                    expected += 1;
                }
            }
        }
    }
    assert_eq!(rs.len(), expected, "R2 answer count vs manual scan");
}

#[test]
fn water_anomaly_query_agrees_across_systems() {
    let graph = se_datagen::water::generate(500, 7);
    let onto = se_ontology::water_ontology();
    let dicts = onto.encode().unwrap();
    let se = SuccinctEdgeStore::build(&onto, &graph).unwrap();
    let mem = MultiIndexStore::build(&graph);

    let text = workload::water_anomaly_query();
    let a = execute_query(&se, &text, &QueryOptions::default()).unwrap();
    let parsed = parse_query(&text).unwrap();
    let rewritten = rewrite_with_ontology(&parsed, &dicts).unwrap().0;
    let b = mem.query(&rewritten).unwrap();
    assert_eq!(normalize(&a), normalize(&b), "water anomaly answers");
    // The generator injects anomalies with 15% probability over ≥40 rounds:
    // the answer set must be non-empty and must span BOTH station profiles
    // (that is the whole point of the §2 reasoning scenario).
    assert!(!a.is_empty(), "no anomalies detected");
    let stations: std::collections::HashSet<String> = a
        .column("x")
        .unwrap()
        .iter()
        .filter_map(|t| t.as_ref().map(|t| t.str_value().to_string()))
        .collect();
    assert!(
        stations.len() >= 2,
        "anomalies must be caught on both differently-annotated stations, got {stations:?}"
    );
}
