//! The v02 delta-aware persistence contract, for both engines:
//!
//! * `save` is `&self`, performs **no compaction**, and writes the raw
//!   overlay (added triples, tombstones with full `DeltaState` semantics,
//!   overflow dictionaries, interned literals);
//! * a steady-state save rewrites nothing baseline-sized — only the
//!   O(delta) manifest/overlay files;
//! * `load` restores the merged view bit-identically, ids stable;
//! * every corruption class — truncation, bad magic, versions from the
//!   future, checksum mismatch, dangling manifest references — surfaces
//!   as a clean `StreamError`, never a panic;
//! * v01 single-file stores stay loadable;
//! * a checkpointed `StreamSession` resumes its continuous queries.

use se_core::TripleSource;
use se_ontology::Ontology;
use se_rdf::{Graph, Term, Triple};
use se_sparql::QueryOptions;
use se_stream::persist::{HYBRID_MANIFEST, SHARD_MANIFEST};
use se_stream::{
    CompactionPolicy, HybridStore, IngestMode, ShardPolicy, ShardedHybridStore, StreamError,
    StreamSession, OVERFLOW_BASE,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn iri(s: &str) -> Term {
    Term::iri(format!("http://x/{s}"))
}

fn t(s: &str, p: &str, o: Term) -> Triple {
    Triple::new(iri(s), Term::iri(format!("http://x/{p}")), o)
}

fn ty(s: &str, c: &str) -> Triple {
    Triple::new(iri(s), Term::iri(se_rdf::vocab::rdf::TYPE), iri(c))
}

fn ontology() -> Ontology {
    let mut o = Ontology::new();
    o.add_class("http://x/C2", "http://x/C1");
    o.add_property("http://x/worksFor", "http://x/memberOf");
    o.add_object_property("http://x/knows");
    o.add_datatype_property("http://x/age");
    o
}

fn seed_graph() -> Graph {
    Graph::from_triples([
        ty("a", "C2"),
        ty("b", "C1"),
        t("a", "knows", iri("b")),
        t("a", "worksFor", iri("org")),
        t("b", "memberOf", iri("org")),
        t("a", "age", Term::literal("42")),
    ])
}

/// Dirties a store through its generic batch entry point: baseline
/// tombstones, overlay inserts, overflow terms and overlay literals.
fn dirty_batch() -> (Graph, Graph) {
    let inserts = Graph::from_triples([
        t("c", "knows", iri("a")),
        ty("c", "C2"),
        t("newSensor", "emits", iri("a")),
        ty("newSensor", "NewKind"),
        t("newSensor", "reading", Term::literal("7.5")),
        t("c", "age", Term::literal("7")),
    ]);
    let deletes = Graph::from_triples([t("a", "knows", iri("b")), ty("b", "C1")]);
    (inserts, deletes)
}

fn norm(g: &Graph) -> Vec<String> {
    let mut v: Vec<String> = g.iter().map(|t| t.to_string()).collect();
    v.sort();
    v
}

/// Fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("se-v02-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// Queries probing tombstones, overlay inserts, overflow reasoning and
/// overlay literals — evaluated identically pre- and post-restart.
fn probe_queries() -> Vec<(String, QueryOptions)> {
    let q = |text: &str| format!("PREFIX e: <http://x/> {text}");
    vec![
        (
            q("SELECT ?s ?o WHERE { ?s e:knows ?o }"),
            QueryOptions::default(),
        ),
        (
            q("SELECT ?s WHERE { ?s e:memberOf e:org }"),
            QueryOptions::default(),
        ),
        (q("SELECT ?s WHERE { ?s a e:C1 }"), QueryOptions::default()),
        (
            q("SELECT ?s WHERE { ?s a e:C1 }"),
            QueryOptions::without_reasoning(),
        ),
        (
            q("SELECT ?s WHERE { ?s e:reading \"7.5\" }"),
            QueryOptions::default(),
        ),
        (
            q("SELECT ?s WHERE { ?s a e:NewKind }"),
            QueryOptions::default(),
        ),
    ]
}

fn answers<S: TripleSource>(store: &S) -> Vec<Vec<String>> {
    probe_queries()
        .iter()
        .map(|(text, opts)| {
            let rs = se_sparql::execute_query(store, text, opts).unwrap();
            let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        })
        .collect()
}

// ------------------------------------------------------------ round trips

#[test]
fn hybrid_v02_roundtrip_preserves_dirty_view_without_compacting() {
    let dir = scratch("hybrid-rt");
    let mut h = HybridStore::build(&ontology(), &seed_graph()).unwrap();
    let (ins, del) = dirty_batch();
    h.apply(&ins, &del).unwrap();
    assert!(!h.delta().is_empty(), "the store must be dirty");

    let overlay_before = h.delta().overlay_len();
    let compactions_before = h.stats().compactions;
    let report = h.save(&dir).unwrap();
    // &self save: no compaction, overlay untouched, snapshot captured it.
    assert_eq!(h.stats().compactions, compactions_before);
    assert_eq!(h.delta().overlay_len(), overlay_before);
    assert_eq!(report.overlay_entries, overlay_before);
    assert_eq!(report.baseline_files_written, 1, "first save writes layers");

    let back = HybridStore::load(&dir, &ontology()).unwrap();
    assert_eq!(TripleSource::len(&back), TripleSource::len(&h));
    assert_eq!(norm(&back.materialize()), norm(&h.materialize()));
    assert_eq!(answers(&back), answers(&h));
    // Ids survive: overflow terms keep their overflow ids.
    assert_eq!(
        back.property_id("http://x/emits"),
        h.property_id("http://x/emits")
    );
    assert!(back.property_id("http://x/emits").unwrap() >= OVERFLOW_BASE);
    // Tombstone still masks the baseline triple.
    let knows = back.property_id("http://x/knows").unwrap();
    let a = back.instance_id(&iri("a")).unwrap();
    assert!(back.objects(knows, a).is_empty());

    // Both continue identically after the restart.
    let mut live = h;
    let mut back = back;
    let post = Graph::from_triples([t("d", "knows", iri("a")), t("a", "knows", iri("b"))]);
    live.apply(&post, &Graph::new()).unwrap();
    back.apply(&post, &Graph::new()).unwrap();
    assert_eq!(norm(&back.materialize()), norm(&live.materialize()));
    assert_eq!(answers(&back), answers(&live));
    cleanup(&dir);
}

#[test]
fn hybrid_steady_state_save_skips_the_baseline() {
    let dir = scratch("hybrid-steady");
    let mut h = HybridStore::build(&ontology(), &seed_graph()).unwrap();
    let (ins, del) = dirty_batch();
    h.apply(&ins, &del).unwrap();
    let first = h.save(&dir).unwrap();
    assert_eq!(first.baseline_files_written, 1);

    // More overlay, same baseline: O(delta) save.
    h.apply(
        &Graph::from_triples([t("d", "knows", iri("a"))]),
        &Graph::new(),
    )
    .unwrap();
    let second = h.save(&dir).unwrap();
    assert_eq!(second.baseline_files_written, 0, "baseline reused");
    assert!(second.delta_bytes > 0);

    // A compaction swaps the baseline: the next save rewrites it.
    h.compact().unwrap();
    let third = h.save(&dir).unwrap();
    assert_eq!(third.baseline_files_written, 1, "new generation written");

    // The reloaded store still matches.
    let back = HybridStore::load(&dir, &ontology()).unwrap();
    assert_eq!(norm(&back.materialize()), norm(&h.materialize()));

    // And a load→save cycle is steady-state too (nothing re-serialized).
    let re = back.save(&dir).unwrap();
    assert_eq!(re.baseline_files_written, 0, "loaded mark reused");
    cleanup(&dir);
}

#[test]
fn sharded_v02_roundtrip_with_background_rebuilds_in_flight() {
    let dir = scratch("sharded-rt");
    let mut h = ShardedHybridStore::build(&ontology(), &seed_graph(), 3)
        .unwrap()
        .with_policy(CompactionPolicy { max_overlay: 4 })
        .with_background_compaction(true)
        .with_ingest_mode(IngestMode::Pooled);
    let (ins, del) = dirty_batch();
    h.apply(&ins, &del).unwrap();
    for round in 0..6 {
        h.apply(
            &Graph::from_triples([
                t(&format!("s{round}"), "knows", iri("hub")),
                t(
                    &format!("s{round}"),
                    "age",
                    Term::literal(format!("{round}")),
                ),
            ]),
            &Graph::new(),
        )
        .unwrap();
    }
    // Save with whatever rebuilds are still racing: the snapshot is the
    // current layers + overlay, consistent by construction.
    let compactions_before = h.stats().compactions;
    let report = h.save(&dir).unwrap();
    assert_eq!(
        h.stats().compactions,
        compactions_before,
        "save never compacts"
    );
    assert!(
        report.baseline_files_written > 0,
        "first save writes layers"
    );

    let back = ShardedHybridStore::load(&dir, &ontology()).unwrap();
    assert_eq!(back.shard_count(), 3);
    assert_eq!(TripleSource::len(&back), TripleSource::len(&h));
    assert_eq!(norm(&back.materialize()), norm(&h.materialize()));
    assert_eq!(answers(&back), answers(&h));
    // Ids stable — no re-encode on load.
    for term in ["knows", "memberOf", "emits", "reading"] {
        let iri = format!("http://x/{term}");
        assert_eq!(back.property_id(&iri), h.property_id(&iri), "{term}");
    }
    assert_eq!(back.instance_id(&iri("s3")), h.instance_id(&iri("s3")));

    // Both engines keep agreeing batch for batch after the restart.
    let mut live = h;
    let mut back = back;
    for round in 0..4 {
        let ins = Graph::from_triples([
            t(&format!("p{round}"), "knows", iri("hub")),
            ty(&format!("p{round}"), "NewKind"),
        ]);
        let del = Graph::from_triples([t(&format!("s{round}"), "knows", iri("hub"))]);
        let rl = live.apply(&ins, &del).unwrap();
        let rb = back.apply(&ins, &del).unwrap();
        assert_eq!((rl.inserted, rl.deleted), (rb.inserted, rb.deleted));
    }
    live.flush_compactions();
    back.flush_compactions();
    assert_eq!(norm(&back.materialize()), norm(&live.materialize()));
    assert_eq!(answers(&back), answers(&live));
    cleanup(&dir);
}

#[test]
fn sharded_steady_state_save_is_o_delta() {
    let dir = scratch("sharded-steady");
    let mut h = ShardedHybridStore::build(&ontology(), &seed_graph(), 3)
        .unwrap()
        .with_background_compaction(false);
    h.apply(
        &Graph::from_triples([t("c", "knows", iri("a"))]),
        &Graph::new(),
    )
    .unwrap();
    let first = h.save(&dir).unwrap();
    assert_eq!(
        first.baseline_files_written,
        4, // 3 shard layer files + the frozen dictionary file
        "first save writes every baseline-side file"
    );

    // Dirty the overlay only: nothing baseline-sized is rewritten.
    h.apply(
        &Graph::from_triples([t("d", "knows", iri("a"))]),
        &Graph::new(),
    )
    .unwrap();
    let second = h.save(&dir).unwrap();
    assert_eq!(second.baseline_files_written, 0, "steady state is O(delta)");

    // Compact one shard: exactly that shard's layer file is rewritten.
    for shard in 0..h.shard_count() {
        if h.shard_overlay_len(shard) > 0 {
            h.compact_shard(shard);
        }
    }
    let third = h.save(&dir).unwrap();
    assert!(
        third.baseline_files_written >= 1 && third.baseline_files_written < 4,
        "only compacted shards rewrite their layers (got {})",
        third.baseline_files_written
    );

    let back = ShardedHybridStore::load(&dir, &ontology()).unwrap();
    assert_eq!(norm(&back.materialize()), norm(&h.materialize()));
    let re = back.save(&dir).unwrap();
    assert_eq!(re.baseline_files_written, 0, "load→save reuses everything");
    cleanup(&dir);
}

/// Regression: overlay/layer file names must be unique per *directory*,
/// not per process — a restarted process whose generation counters start
/// over must never overwrite the files the on-disk manifest references
/// (that would break crash atomicity: old manifest + new bytes).
#[test]
fn resave_after_restart_never_overwrites_referenced_files() {
    let dir = scratch("restart-names");
    let mut h = ShardedHybridStore::build(&ontology(), &seed_graph(), 3).unwrap();
    let (ins, del) = dirty_batch();
    h.apply(&ins, &del).unwrap();
    h.save(&dir).unwrap();
    let overlays = |d: &Path| -> std::collections::BTreeSet<String> {
        std::fs::read_dir(d)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".overlay"))
            .collect()
    };
    let referenced = overlays(&dir);
    // "Restart": a fresh process image loads the manifest and saves again.
    let back = ShardedHybridStore::load(&dir, &ontology()).unwrap();
    back.save(&dir).unwrap();
    let after = overlays(&dir);
    assert!(
        referenced.is_disjoint(&after),
        "resave minted fresh names ({referenced:?} vs {after:?}) — never \
         an in-place overwrite of referenced snapshot files"
    );
    // And the directory is still a consistent, loadable snapshot.
    let again = ShardedHybridStore::load(&dir, &ontology()).unwrap();
    assert_eq!(norm(&again.materialize()), norm(&back.materialize()));
    cleanup(&dir);
}

#[test]
fn custom_policy_roundtrip_keeps_routes() {
    let dir = scratch("sharded-policy");
    let all_to_zero: ShardPolicy = ShardPolicy::ByIri(Arc::new(|_iri: &str, _n: usize| 0));
    let mut h =
        ShardedHybridStore::build_with_policy(&ontology(), &seed_graph(), 4, all_to_zero.clone())
            .unwrap();
    h.apply(
        &Graph::from_triples([t("x", "freshProp", iri("a"))]),
        &Graph::new(),
    )
    .unwrap();
    h.save(&dir).unwrap();
    // Loading with the hook re-supplied keeps routing semantics whole.
    let back = ShardedHybridStore::load_with_policy(&dir, &ontology(), Some(all_to_zero)).unwrap();
    assert_eq!(norm(&back.materialize()), norm(&h.materialize()));
    // Persisted assignments survive verbatim even without the hook.
    let fallback = ShardedHybridStore::load(&dir, &ontology()).unwrap();
    assert_eq!(
        fallback.property_id("http://x/freshProp"),
        h.property_id("http://x/freshProp")
    );
    assert_eq!(norm(&fallback.materialize()), norm(&h.materialize()));
    cleanup(&dir);
}

// ------------------------------------------------------- v01 compatibility

#[test]
#[allow(deprecated)]
fn v01_single_file_stays_loadable() {
    let dir = scratch("v01-compat");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("legacy.v01");
    let mut h = HybridStore::build(&ontology(), &seed_graph()).unwrap();
    h.insert_triple(&t("c", "knows", iri("a"))).unwrap();
    h.save_to_file(&path).unwrap(); // compacts, dumps v01
                                    // Both entry points accept the legacy file.
    let a = HybridStore::load_from_file(&path, ontology()).unwrap();
    let b = HybridStore::load(&path, &ontology()).unwrap();
    assert_eq!(norm(&a.materialize()), norm(&h.materialize()));
    assert_eq!(norm(&b.materialize()), norm(&h.materialize()));
    cleanup(&dir);
}

// ---------------------------------------------------- corruption handling

/// Saves a dirty store of each engine into a fresh directory.
fn saved_hybrid(name: &str) -> PathBuf {
    let dir = scratch(name);
    let mut h = HybridStore::build(&ontology(), &seed_graph()).unwrap();
    let (ins, del) = dirty_batch();
    h.apply(&ins, &del).unwrap();
    h.save(&dir).unwrap();
    dir
}

fn saved_sharded(name: &str) -> PathBuf {
    let dir = scratch(name);
    let mut h = ShardedHybridStore::build(&ontology(), &seed_graph(), 3).unwrap();
    let (ins, del) = dirty_batch();
    h.apply(&ins, &del).unwrap();
    h.save(&dir).unwrap();
    dir
}

fn load_hybrid(dir: &Path) -> Result<HybridStore, StreamError> {
    HybridStore::load(dir, &ontology())
}

fn load_sharded(dir: &Path) -> Result<ShardedHybridStore, StreamError> {
    ShardedHybridStore::load(dir, &ontology())
}

fn clobber(path: &Path, offset: usize, byte: u8) {
    let mut bytes = std::fs::read(path).unwrap();
    bytes[offset] = byte;
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn truncated_manifests_error_cleanly() {
    for (dir, manifest, check) in [
        (
            saved_hybrid("trunc-h"),
            HYBRID_MANIFEST,
            &(|d: &Path| load_hybrid(d).err()) as &dyn Fn(&Path) -> Option<StreamError>,
        ),
        (
            saved_sharded("trunc-s"),
            SHARD_MANIFEST,
            &(|d: &Path| load_sharded(d).err()),
        ),
    ] {
        let path = dir.join(manifest);
        let full = std::fs::read(&path).unwrap();
        // Cut at several depths: inside the header, inside a section
        // header, inside a payload.
        for cut in [4, 14, full.len() - 5] {
            std::fs::write(&path, &full[..cut]).unwrap();
            match check(&dir) {
                Some(StreamError::Corrupt(_)) => {}
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
        cleanup(&dir);
    }
}

#[test]
fn bad_magic_errors_cleanly() {
    let dir = saved_hybrid("magic-h");
    let path = dir.join(HYBRID_MANIFEST);
    clobber(&path, 0, b'X');
    assert!(matches!(
        load_hybrid(&dir),
        Err(StreamError::Corrupt(msg)) if msg.contains("magic")
    ));
    cleanup(&dir);

    let dir = saved_sharded("magic-s");
    clobber(&dir.join(SHARD_MANIFEST), 0, b'X');
    assert!(matches!(
        load_sharded(&dir),
        Err(StreamError::Corrupt(msg)) if msg.contains("magic")
    ));
    cleanup(&dir);
}

#[test]
fn future_versions_are_rejected_with_the_version_error() {
    let dir = saved_hybrid("ver-h");
    // The version u32 sits right after the 8-byte magic.
    clobber(&dir.join(HYBRID_MANIFEST), 8, 99);
    assert!(matches!(
        load_hybrid(&dir),
        Err(StreamError::UnsupportedVersion {
            found: 99,
            max_supported: 2
        })
    ));
    cleanup(&dir);

    let dir = saved_sharded("ver-s");
    clobber(&dir.join(SHARD_MANIFEST), 8, 99);
    assert!(matches!(
        load_sharded(&dir),
        Err(StreamError::UnsupportedVersion { found: 99, .. })
    ));
    cleanup(&dir);
}

#[test]
fn overlay_checksum_mismatch_errors_cleanly() {
    for (dir, manifest, check) in [
        (
            saved_hybrid("sum-h"),
            HYBRID_MANIFEST,
            &(|d: &Path| load_hybrid(d).err()) as &dyn Fn(&Path) -> Option<StreamError>,
        ),
        (
            saved_sharded("sum-s"),
            SHARD_MANIFEST,
            &(|d: &Path| load_sharded(d).err()),
        ),
    ] {
        let path = dir.join(manifest);
        let len = std::fs::read(&path).unwrap().len();
        // Flip one bit inside the last section's payload (the trailing 8
        // bytes are its checksum; 9 bytes back is payload).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[len - 9] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        match check(&dir) {
            Some(StreamError::Corrupt(msg)) => {
                assert!(msg.contains("checksum"), "got: {msg}")
            }
            other => panic!("expected Corrupt(checksum), got {other:?}"),
        }
        cleanup(&dir);
    }
}

#[test]
fn baseline_corruption_is_detected() {
    // Hybrid: the baseline file is raw v01; its checksum lives in the
    // manifest. Flip a byte deep inside it.
    let dir = saved_hybrid("base-h");
    let baseline = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with(".v01"))
        .expect("baseline file present");
    let len = std::fs::metadata(baseline.path()).unwrap().len() as usize;
    clobber(&baseline.path(), len / 2, 0xAB);
    assert!(matches!(
        load_hybrid(&dir),
        Err(StreamError::Corrupt(msg)) if msg.contains("checksum")
    ));
    cleanup(&dir);

    // Sharded: shard layer files carry their own checksummed sections.
    let dir = saved_sharded("base-s");
    let layers = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with(".layers"))
        .expect("layer file present");
    let len = std::fs::metadata(layers.path()).unwrap().len() as usize;
    clobber(&layers.path(), len / 2, 0xAB);
    assert!(matches!(load_sharded(&dir), Err(StreamError::Corrupt(_))));
    cleanup(&dir);
}

#[test]
fn dangling_manifest_references_error_cleanly() {
    let dir = saved_hybrid("dangle-h");
    for entry in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
        if entry.file_name().to_string_lossy().ends_with(".v01") {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }
    assert!(matches!(
        load_hybrid(&dir),
        Err(StreamError::Corrupt(msg)) if msg.contains("missing")
    ));
    cleanup(&dir);

    let dir = saved_sharded("dangle-s");
    for entry in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
        if entry.file_name().to_string_lossy().ends_with(".overlay") {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }
    assert!(matches!(
        load_sharded(&dir),
        Err(StreamError::Corrupt(msg)) if msg.contains("missing")
    ));
    cleanup(&dir);
}

// ------------------------------------------------------- session recovery

#[test]
fn session_checkpoint_resumes_continuous_queries() {
    let dir = scratch("session");
    let store = HybridStore::build(&ontology(), &seed_graph()).unwrap();
    let mut session = StreamSession::new(store);
    session
        .register_query(
            "members",
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:memberOf e:org }",
            QueryOptions::default(),
        )
        .unwrap();
    session
        .register_query(
            "people",
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:C1 }",
            QueryOptions::without_reasoning(),
        )
        .unwrap();
    let live = session
        .apply_batch(
            &Graph::from_triples([t("c", "worksFor", iri("org")), ty("c", "C1")]),
            &Graph::new(),
        )
        .unwrap();

    session.save(&dir).unwrap();
    drop(session);

    let mut resumed: StreamSession<HybridStore> = StreamSession::resume(&dir, &ontology()).unwrap();
    assert_eq!(resumed.registry().len(), 2, "queries re-registered");
    // The resumed session answers the next batch exactly as the live one
    // would have (empty batch → same post-state answers).
    let replay = resumed.apply_batch(&Graph::new(), &Graph::new()).unwrap();
    for (a, b) in live.results.iter().zip(&replay.results) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.results.len(), b.results.len(), "query '{}'", a.id);
    }
    // Options survived: "people" still runs without reasoning.
    let people = resumed
        .registry()
        .iter()
        .find(|q| q.id == "people")
        .unwrap();
    assert!(!people.options.reasoning);
    cleanup(&dir);
}
