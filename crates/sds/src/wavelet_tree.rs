//! Pointerless (level-wise) wavelet tree.
//!
//! The *WT* structure of the paper (§3.3): a balanced binary tree that
//! decomposes an integer sequence bit by bit, each tree level stored as a
//! single rank/select bitmap ([`crate::RsBitVec`]). `access`, `rank` and
//! `select` run in *O(log σ)* where σ is the alphabet size, and
//! [`WaveletTree::range_search`] — the extra operation SuccinctEdge relies on
//! for triple-pattern evaluation (§5.2) — finds all occurrences of a value
//! inside an index interval without decompressing anything.
//!
//! The layout is *pointerless*: the nodes of level `l` are concatenated
//! left-to-right into one bitmap, and node boundaries are recomputed on the
//! fly with `rank0`/`rank1`, so no child pointers are stored at all.

use crate::bitvec::BitVec;
use crate::rank_select::RsBitVec;
use crate::serialize::{ReadBin, Serialize, WriteBin};
use crate::{bits_for, HeapSize};
use std::io;

/// An immutable wavelet tree over a sequence of `u64` symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveletTree {
    /// One bitmap per bit level; `levels[0]` holds the most significant bit.
    levels: Vec<RsBitVec>,
    len: usize,
    width: u32,
    max_symbol: u64,
}

impl WaveletTree {
    /// Builds a wavelet tree from `values`.
    ///
    /// The tree depth is the number of bits of the largest value (at least
    /// one level, even for an all-zero sequence).
    pub fn new(values: &[u64]) -> Self {
        let max_symbol = values.iter().copied().max().unwrap_or(0);
        let width = bits_for(max_symbol);
        let len = values.len();
        let mut levels = Vec::with_capacity(width as usize);
        // `nodes` holds the non-empty nodes of the current level in
        // left-to-right order; empty nodes contribute nothing to the bitmap
        // and are skipped without breaking rank-based navigation.
        let mut nodes: Vec<Vec<u64>> = if values.is_empty() {
            Vec::new()
        } else {
            vec![values.to_vec()]
        };
        for l in 0..width {
            let shift = width - 1 - l;
            let mut bits = BitVec::with_capacity(len);
            let mut next = Vec::with_capacity(nodes.len() * 2);
            for node in &nodes {
                let mut left = Vec::new();
                let mut right = Vec::new();
                for &v in node {
                    let bit = (v >> shift) & 1 == 1;
                    bits.push(bit);
                    if bit {
                        right.push(v);
                    } else {
                        left.push(v);
                    }
                }
                if !left.is_empty() {
                    next.push(left);
                }
                if !right.is_empty() {
                    next.push(right);
                }
            }
            levels.push(RsBitVec::new(bits));
            nodes = next;
        }
        Self {
            levels,
            len,
            width,
            max_symbol,
        }
    }

    /// Number of symbols in the sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bit levels (≥ 1 unless the tree is empty).
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Largest symbol stored at construction time.
    #[inline]
    pub fn max_symbol(&self) -> u64 {
        self.max_symbol
    }

    /// The SDS `access` operation: the symbol at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn access(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let (mut s, mut e, mut pos) = (0usize, self.len, i);
        let mut symbol = 0u64;
        for level in &self.levels {
            symbol <<= 1;
            let z_s = level.rank0(s);
            let zeros_in_node = level.rank0(e) - z_s;
            if level.get(pos) {
                symbol |= 1;
                let o_s = level.rank1(s);
                let new_s = s + zeros_in_node;
                pos = new_s + (level.rank1(pos) - o_s);
                s = new_s;
            } else {
                pos = s + (level.rank0(pos) - z_s);
                e = s + zeros_in_node;
            }
        }
        symbol
    }

    /// The SDS `rank` operation: number of occurrences of `symbol` in
    /// `[0, i)`. `i` may equal `len()`.
    pub fn rank(&self, i: usize, symbol: u64) -> usize {
        assert!(
            i <= self.len,
            "rank index {i} out of bounds (len {})",
            self.len
        );
        if symbol > self.max_symbol || self.len == 0 {
            return 0;
        }
        let (mut s, mut e, mut pos) = (0usize, self.len, i);
        for (l, level) in self.levels.iter().enumerate() {
            let shift = self.width - 1 - l as u32;
            let bit = (symbol >> shift) & 1 == 1;
            let z_s = level.rank0(s);
            let zeros_in_node = level.rank0(e) - z_s;
            if bit {
                let o_s = level.rank1(s);
                let p1 = level.rank1(pos) - o_s;
                s += zeros_in_node;
                pos = s + p1;
                // e stays: node end at next level = old e
            } else {
                pos = s + (level.rank0(pos) - z_s);
                e = s + zeros_in_node;
            }
        }
        pos - s
    }

    /// The SDS `select` operation: index of the `k`-th occurrence of
    /// `symbol` (1-indexed), or `None` when there are fewer than `k`
    /// occurrences.
    pub fn select(&self, k: usize, symbol: u64) -> Option<usize> {
        if k == 0 || symbol > self.max_symbol || self.len == 0 {
            return None;
        }
        // Downward pass: record the start of the node containing `symbol`
        // at every level.
        let mut starts = Vec::with_capacity(self.levels.len());
        let (mut s, mut e) = (0usize, self.len);
        for (l, level) in self.levels.iter().enumerate() {
            starts.push(s);
            let shift = self.width - 1 - l as u32;
            let bit = (symbol >> shift) & 1 == 1;
            let zeros_in_node = level.rank0(e) - level.rank0(s);
            if bit {
                s += zeros_in_node;
            } else {
                e = s + zeros_in_node;
            }
        }
        if k > e - s {
            return None; // fewer than k occurrences
        }
        // Upward pass: map the offset inside the leaf back to the root.
        let mut offset = k - 1;
        for (l, level) in self.levels.iter().enumerate().rev() {
            let shift = self.width - 1 - l as u32;
            let bit = (symbol >> shift) & 1 == 1;
            let node_start = starts[l];
            let pos = if bit {
                level
                    .select1(level.rank1(node_start) + offset + 1)
                    .expect("wavelet tree invariant: child bit must exist in parent")
            } else {
                level
                    .select0(level.rank0(node_start) + offset + 1)
                    .expect("wavelet tree invariant: child bit must exist in parent")
            };
            offset = pos - node_start;
        }
        Some(offset)
    }

    /// Number of occurrences of `symbol` in `[a, b)`.
    pub fn count_range(&self, a: usize, b: usize, symbol: u64) -> usize {
        assert!(
            a <= b && b <= self.len,
            "invalid range [{a}, {b}) for len {}",
            self.len
        );
        self.rank(b, symbol) - self.rank(a, symbol)
    }

    /// The paper's `rangeSearch(a, b, c)` (§5.2): all indices `i ∈ [a, b)`
    /// with `access(i) == c`, in increasing order.
    ///
    /// Runs in *O((occ + 1)·log σ)* — it never scans the interval, it prunes
    /// through the tree exactly as the paper describes ("it efficiently
    /// prunes searches by just computing the boundaries").
    pub fn range_search(&self, a: usize, b: usize, symbol: u64) -> Vec<usize> {
        assert!(
            a <= b && b <= self.len,
            "invalid range [{a}, {b}) for len {}",
            self.len
        );
        if symbol > self.max_symbol {
            return Vec::new();
        }
        let lo = self.rank(a, symbol);
        let hi = self.rank(b, symbol);
        (lo + 1..=hi)
            .map(|k| self.select(k, symbol).expect("rank/select consistency"))
            .collect()
    }

    /// Iterates over all symbols in sequence order.
    ///
    /// This decodes through the tree; it is meant for tests and debugging,
    /// not for hot paths.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.access(i))
    }
}

impl HeapSize for WaveletTree {
    fn heap_size(&self) -> usize {
        self.levels
            .iter()
            .map(|l| std::mem::size_of::<RsBitVec>() + l.heap_size())
            .sum::<usize>()
    }
}

impl Serialize for WaveletTree {
    fn serialize<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_u64(self.len as u64)?;
        w.write_u32(self.width)?;
        w.write_u64(self.max_symbol)?;
        for level in &self.levels {
            level.serialize(w)?;
        }
        Ok(())
    }

    fn deserialize<R: io::Read>(r: &mut R) -> io::Result<Self> {
        let len = r.read_u64()? as usize;
        let width = r.read_u32()?;
        let max_symbol = r.read_u64()?;
        if !(1..=64).contains(&width) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad wavelet-tree width",
            ));
        }
        let mut levels = Vec::with_capacity(width as usize);
        for _ in 0..width {
            levels.push(RsBitVec::deserialize(r)?);
        }
        Ok(Self {
            levels,
            len,
            width,
            max_symbol,
        })
    }

    fn serialized_size(&self) -> usize {
        8 + 4
            + 8
            + self
                .levels
                .iter()
                .map(Serialize::serialized_size)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example sequence from the paper's Figure 3: ABFECBCCADEF with
    /// A=0, B=1, C=2, D=3, E=4, F=5.
    fn paper_sequence() -> Vec<u64> {
        vec![0, 1, 5, 4, 2, 1, 2, 2, 0, 3, 4, 5]
    }

    #[test]
    fn paper_figure_3_access() {
        let wt = WaveletTree::new(&paper_sequence());
        for (i, &v) in paper_sequence().iter().enumerate() {
            assert_eq!(wt.access(i), v, "position {i}");
        }
    }

    #[test]
    fn paper_figure_3_rank() {
        let wt = WaveletTree::new(&paper_sequence());
        // C (=2) appears at positions 4, 6, 7.
        assert_eq!(wt.rank(0, 2), 0);
        assert_eq!(wt.rank(5, 2), 1);
        assert_eq!(wt.rank(7, 2), 2);
        assert_eq!(wt.rank(12, 2), 3);
        // F (=5) appears at positions 2 and 11.
        assert_eq!(wt.rank(12, 5), 2);
    }

    #[test]
    fn paper_figure_3_select() {
        let wt = WaveletTree::new(&paper_sequence());
        assert_eq!(wt.select(1, 2), Some(4));
        assert_eq!(wt.select(2, 2), Some(6));
        assert_eq!(wt.select(3, 2), Some(7));
        assert_eq!(wt.select(4, 2), None);
        assert_eq!(wt.select(1, 0), Some(0));
        assert_eq!(wt.select(2, 0), Some(8));
        assert_eq!(wt.select(1, 3), Some(9));
    }

    #[test]
    fn range_search_paper_sequence() {
        let wt = WaveletTree::new(&paper_sequence());
        assert_eq!(wt.range_search(0, 12, 2), vec![4, 6, 7]);
        assert_eq!(wt.range_search(5, 8, 2), vec![6, 7]);
        assert_eq!(wt.range_search(5, 7, 2), vec![6]);
        assert_eq!(wt.range_search(0, 12, 99), Vec::<usize>::new());
        assert_eq!(wt.range_search(4, 4, 2), Vec::<usize>::new());
    }

    #[test]
    fn empty_tree() {
        let wt = WaveletTree::new(&[]);
        assert!(wt.is_empty());
        assert_eq!(wt.rank(0, 0), 0);
        assert_eq!(wt.select(1, 0), None);
        assert_eq!(wt.range_search(0, 0, 0), Vec::<usize>::new());
    }

    #[test]
    fn single_symbol() {
        let wt = WaveletTree::new(&[7]);
        assert_eq!(wt.access(0), 7);
        assert_eq!(wt.rank(1, 7), 1);
        assert_eq!(wt.select(1, 7), Some(0));
        assert_eq!(wt.rank(1, 6), 0);
    }

    #[test]
    fn all_same_symbol() {
        let wt = WaveletTree::new(&[3; 100]);
        assert_eq!(wt.rank(100, 3), 100);
        assert_eq!(wt.select(50, 3), Some(49));
        assert_eq!(wt.rank(100, 2), 0);
        assert_eq!(wt.rank(100, 0), 0);
    }

    #[test]
    fn all_zeros() {
        let wt = WaveletTree::new(&[0; 64]);
        assert_eq!(wt.width(), 1);
        assert_eq!(wt.rank(64, 0), 64);
        assert_eq!(wt.select(64, 0), Some(63));
        assert_eq!(wt.select(65, 0), None);
    }

    #[test]
    fn symbol_above_max_is_absent() {
        let wt = WaveletTree::new(&[1, 2, 3]);
        assert_eq!(wt.rank(3, 100), 0);
        assert_eq!(wt.select(1, 100), None);
    }

    #[test]
    fn large_symbols() {
        let values = vec![u64::MAX, 0, u64::MAX / 2, 1, u64::MAX];
        let wt = WaveletTree::new(&values);
        assert_eq!(wt.width(), 64);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(wt.access(i), v);
        }
        assert_eq!(wt.rank(5, u64::MAX), 2);
        assert_eq!(wt.select(2, u64::MAX), Some(4));
    }

    #[test]
    fn iter_matches_access() {
        let values: Vec<u64> = (0..200).map(|i| (i * 31) % 17).collect();
        let wt = WaveletTree::new(&values);
        assert_eq!(wt.iter().collect::<Vec<_>>(), values);
    }

    #[test]
    fn serialization_roundtrip() {
        let values: Vec<u64> = (0..333).map(|i| (i * 7) % 50).collect();
        let wt = WaveletTree::new(&values);
        let buf = wt.to_bytes();
        assert_eq!(buf.len(), wt.serialized_size());
        let back = WaveletTree::from_bytes(&buf).unwrap();
        assert_eq!(wt, back);
        assert_eq!(back.access(100), values[100]);
    }

    #[test]
    fn count_range() {
        let values = vec![1, 2, 1, 1, 3, 1, 2];
        let wt = WaveletTree::new(&values);
        assert_eq!(wt.count_range(0, 7, 1), 4);
        assert_eq!(wt.count_range(1, 4, 1), 2);
        assert_eq!(wt.count_range(0, 0, 1), 0);
        assert_eq!(wt.count_range(4, 5, 3), 1);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn matches_naive(values in proptest::collection::vec(0u64..64, 0..500)) {
                let wt = WaveletTree::new(&values);
                prop_assert_eq!(wt.len(), values.len());
                for (i, &v) in values.iter().enumerate() {
                    prop_assert_eq!(wt.access(i), v, "access({})", i);
                }
                // rank/select against a naive scan for a few symbols
                for symbol in [0u64, 1, 7, 31, 63] {
                    let occ: Vec<usize> = values
                        .iter()
                        .enumerate()
                        .filter(|(_, &v)| v == symbol)
                        .map(|(i, _)| i)
                        .collect();
                    prop_assert_eq!(wt.rank(values.len(), symbol), occ.len());
                    for (k, &p) in occ.iter().enumerate() {
                        prop_assert_eq!(wt.select(k + 1, symbol), Some(p));
                    }
                    prop_assert_eq!(wt.select(occ.len() + 1, symbol), None);
                }
            }

            #[test]
            fn range_search_matches_scan(
                values in proptest::collection::vec(0u64..16, 1..300),
                symbol in 0u64..16,
                range in (0usize..300, 0usize..300),
            ) {
                let n = values.len();
                let (a, b) = (range.0.min(n), range.1.min(n));
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                let wt = WaveletTree::new(&values);
                let expected: Vec<usize> = (a..b).filter(|&i| values[i] == symbol).collect();
                prop_assert_eq!(wt.range_search(a, b, symbol), expected);
            }

            #[test]
            fn sparse_alphabet(values in proptest::collection::vec(
                prop_oneof![Just(0u64), Just(1_000_000u64), Just(123u64), Just(u64::MAX / 3)],
                0..200,
            )) {
                let wt = WaveletTree::new(&values);
                for (i, &v) in values.iter().enumerate() {
                    prop_assert_eq!(wt.access(i), v);
                }
            }
        }
    }
}
