//! Minimal binary serialization used for the on-disk size experiments
//! (paper Figures 9 and 10: dictionary and triple-storage sizes persisted to
//! an SD card).
//!
//! All integers are written little-endian. The format is deliberately dumb
//! and compact — it mirrors what the paper does when it "persists all the
//! data structures existing in SuccinctEdge to disk in order to make a fair
//! comparison" (§7.3.2).

use std::io;

/// Little-endian integer writing on top of any [`io::Write`].
pub trait WriteBin: io::Write {
    fn write_u64(&mut self, v: u64) -> io::Result<()> {
        self.write_all(&v.to_le_bytes())
    }
    fn write_u32(&mut self, v: u32) -> io::Result<()> {
        self.write_all(&v.to_le_bytes())
    }
    fn write_u8(&mut self, v: u8) -> io::Result<()> {
        self.write_all(&[v])
    }
    /// Length-prefixed UTF-8 string.
    fn write_str(&mut self, s: &str) -> io::Result<()> {
        self.write_u64(s.len() as u64)?;
        self.write_all(s.as_bytes())
    }
}

impl<W: io::Write + ?Sized> WriteBin for W {}

/// Little-endian integer reading on top of any [`io::Read`].
pub trait ReadBin: io::Read {
    fn read_u64(&mut self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }
    fn read_u32(&mut self) -> io::Result<u32> {
        let mut buf = [0u8; 4];
        self.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }
    fn read_u8(&mut self) -> io::Result<u8> {
        let mut buf = [0u8; 1];
        self.read_exact(&mut buf)?;
        Ok(buf[0])
    }
    /// Length-prefixed UTF-8 string. The declared length is untrusted
    /// (it may come off the network or a corrupted file): reading goes
    /// through `take` + `read_to_end` so a hostile length yields a clean
    /// `UnexpectedEof` when the source runs dry instead of an up-front
    /// `vec![0; huge]` allocation aborting the process.
    fn read_str(&mut self) -> io::Result<String> {
        let len = self.read_u64()?;
        let mut buf = Vec::new();
        let n = io::Read::read_to_end(&mut io::Read::take(&mut *self, len), &mut buf)?;
        if n as u64 != len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("string declared {len} bytes, only {n} available"),
            ));
        }
        String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

impl<R: io::Read + ?Sized> ReadBin for R {}

/// Compact binary serialization with a known size.
pub trait Serialize: Sized {
    /// Writes `self` to `w`.
    fn serialize<W: io::Write>(&self, w: &mut W) -> io::Result<()>;
    /// Reads a value previously written by [`Serialize::serialize`].
    fn deserialize<R: io::Read>(r: &mut R) -> io::Result<Self>;
    /// Exact number of bytes [`Serialize::serialize`] will write.
    fn serialized_size(&self) -> usize;

    /// Serializes into a fresh byte buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.serialized_size());
        self.serialize(&mut buf)
            .expect("serializing to Vec cannot fail");
        buf
    }

    /// Deserializes from a byte slice.
    fn from_bytes(mut bytes: &[u8]) -> io::Result<Self> {
        Self::deserialize(&mut bytes)
    }
}

// ---------------------------------------------------------------- container
//
// The versioned container layer underneath the stream-persistence v02
// formats: every non-v01 file is a fixed 12-byte header (8-byte magic +
// little-endian u32 format version) followed by a sequence of *sections*.
// A section is self-describing and self-verifying:
//
// ```text
// [tag: 4 ASCII bytes][len: u64 LE][payload: len bytes][checksum: u64 LE]
// ```
//
// where `checksum` is FNV-1a over the payload bytes. Readers can thus
// distinguish the four corruption classes the stream layer reports
// separately: wrong magic (not our file), unsupported version (file from
// the future), truncation (EOF inside a header or payload) and bit rot
// (checksum mismatch). Unknown *sections* are skippable by construction
// (length-prefixed), which is what lets a v02 reader ignore additions a
// v03 writer may append.

/// FNV-1a 64-bit checksum — cheap corruption detection for the container
/// sections (not cryptographic).
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What can go wrong reading a container file. Each corruption class is
/// distinguishable so callers can surface structured errors.
#[derive(Debug)]
pub enum ContainerError {
    /// Underlying I/O failed (including clean EOF between sections).
    Io(io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The magic the reader expected.
        expected: [u8; 8],
        /// What the file actually starts with.
        found: [u8; 8],
    },
    /// The header declares a format version newer than this build reads.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this reader supports.
        max_supported: u32,
    },
    /// A section ended prematurely (EOF inside its declared payload).
    Truncated {
        /// Tag of the truncated section, as ASCII.
        section: [u8; 4],
    },
    /// A section's payload does not match its recorded checksum.
    Checksum {
        /// Tag of the corrupt section, as ASCII.
        section: [u8; 4],
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually read.
        found: u64,
    },
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = |t: &[u8; 4]| String::from_utf8_lossy(t).into_owned();
        match self {
            ContainerError::Io(e) => write!(f, "container I/O failed: {e}"),
            ContainerError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            ContainerError::UnsupportedVersion {
                found,
                max_supported,
            } => write!(
                f,
                "unsupported format version {found} (this build reads up to {max_supported})"
            ),
            ContainerError::Truncated { section } => {
                write!(f, "section '{}' truncated", tag(section))
            }
            ContainerError::Checksum {
                section,
                expected,
                found,
            } => write!(
                f,
                "section '{}' checksum mismatch: recorded {expected:#018x}, computed {found:#018x}",
                tag(section)
            ),
        }
    }
}

impl std::error::Error for ContainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ContainerError {
    fn from(e: io::Error) -> Self {
        ContainerError::Io(e)
    }
}

/// Writes the 12-byte container header.
pub fn write_container_header<W: io::Write>(
    w: &mut W,
    magic: &[u8; 8],
    version: u32,
) -> io::Result<()> {
    w.write_all(magic)?;
    w.write_u32(version)
}

/// Reads and validates a container header, returning the file's format
/// version (which must be `1..=max_supported`).
pub fn read_container_header<R: io::Read>(
    r: &mut R,
    magic: &[u8; 8],
    max_supported: u32,
) -> Result<u32, ContainerError> {
    let mut found = [0u8; 8];
    r.read_exact(&mut found)?;
    if &found != magic {
        return Err(ContainerError::BadMagic {
            expected: *magic,
            found,
        });
    }
    let version = r.read_u32()?;
    if version == 0 || version > max_supported {
        return Err(ContainerError::UnsupportedVersion {
            found: version,
            max_supported,
        });
    }
    Ok(version)
}

/// Writes one checksummed section.
pub fn write_section<W: io::Write>(w: &mut W, tag: &[u8; 4], payload: &[u8]) -> io::Result<()> {
    w.write_all(tag)?;
    w.write_u64(payload.len() as u64)?;
    w.write_all(payload)?;
    w.write_u64(checksum64(payload))
}

/// Reads one section, verifying its checksum. Returns `(tag, payload)`.
pub fn read_section<R: io::Read>(r: &mut R) -> Result<([u8; 4], Vec<u8>), ContainerError> {
    use io::Read as _;
    let mut tag = [0u8; 4];
    r.read_exact(&mut tag)?;
    let len = r
        .read_u64()
        .map_err(|_| ContainerError::Truncated { section: tag })?;
    // Never trust the on-disk length with an up-front allocation: a
    // corrupted (huge) len would abort on an infallible alloc before the
    // truncation could be reported. `take` + `read_to_end` grows the
    // buffer only as far as real input exists.
    let mut payload = Vec::new();
    let read = r
        .take(len)
        .read_to_end(&mut payload)
        .map_err(|_| ContainerError::Truncated { section: tag })?;
    if (read as u64) < len {
        return Err(ContainerError::Truncated { section: tag });
    }
    let expected = r
        .read_u64()
        .map_err(|_| ContainerError::Truncated { section: tag })?;
    let found = checksum64(&payload);
    if expected != found {
        return Err(ContainerError::Checksum {
            section: tag,
            expected,
            found,
        });
    }
    Ok((tag, payload))
}

/// Parses one section from the front of `buf` without copying, returning
/// `(tag, payload, consumed_bytes)`. Unlike [`read_section`] the caller
/// learns the frame's exact extent, which log-structured readers need:
/// a checksum mismatch on a frame that runs to the very end of a file is
/// a torn write, while one followed by more bytes is bit rot.
pub fn read_section_from(buf: &[u8]) -> Result<([u8; 4], &[u8], usize), ContainerError> {
    let mut tag = [0u8; 4];
    if buf.len() < 4 {
        tag[..buf.len()].copy_from_slice(buf);
        return Err(ContainerError::Truncated { section: tag });
    }
    tag.copy_from_slice(&buf[..4]);
    if buf.len() < 12 {
        return Err(ContainerError::Truncated { section: tag });
    }
    let len = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    // The declared length is untrusted: checked arithmetic so a corrupted
    // (huge) len reports truncation instead of overflowing.
    let end = (len.checked_add(20))
        .filter(|total| *total <= buf.len() as u64)
        .ok_or(ContainerError::Truncated { section: tag })? as usize;
    let payload = &buf[12..end - 8];
    let expected = u64::from_le_bytes(buf[end - 8..end].try_into().unwrap());
    let found = checksum64(payload);
    if expected != found {
        return Err(ContainerError::Checksum {
            section: tag,
            expected,
            found,
        });
    }
    Ok((tag, payload, end))
}

/// Reads the next section and checks it carries `tag` — the reader-side
/// contract for formats whose section order is fixed.
pub fn expect_section<R: io::Read>(r: &mut R, tag: &[u8; 4]) -> Result<Vec<u8>, ContainerError> {
    let (found, payload) = read_section(r)?;
    if &found != tag {
        return Err(ContainerError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "expected section '{}', found '{}'",
                String::from_utf8_lossy(tag),
                String::from_utf8_lossy(&found)
            ),
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut buf = Vec::new();
        buf.write_u64(0xDEAD_BEEF_CAFE_BABE).unwrap();
        assert_eq!(buf.len(), 8);
        let v = buf.as_slice().read_u64().unwrap();
        assert_eq!(v, 0xDEAD_BEEF_CAFE_BABE);
    }

    #[test]
    fn str_roundtrip() {
        let mut buf = Vec::new();
        buf.write_str("hello ünïcode").unwrap();
        let s = buf.as_slice().read_str().unwrap();
        assert_eq!(s, "hello ünïcode");
    }

    #[test]
    fn str_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        buf.write_u64(2).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(buf.as_slice().read_str().is_err());
    }

    #[test]
    fn read_past_end_errors() {
        let buf = [1u8, 2, 3];
        assert!(buf.as_slice().read_u64().is_err());
    }

    const MAGIC: &[u8; 8] = b"TESTMAGC";

    #[test]
    fn container_roundtrip() {
        let mut buf = Vec::new();
        write_container_header(&mut buf, MAGIC, 2).unwrap();
        write_section(&mut buf, b"ALFA", b"hello").unwrap();
        write_section(&mut buf, b"BETA", &[]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_container_header(&mut r, MAGIC, 2).unwrap(), 2);
        assert_eq!(expect_section(&mut r, b"ALFA").unwrap(), b"hello");
        let (tag, payload) = read_section(&mut r).unwrap();
        assert_eq!(&tag, b"BETA");
        assert!(payload.is_empty());
    }

    #[test]
    fn container_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_container_header(&mut buf, b"WRONGMGC", 2).unwrap();
        assert!(matches!(
            read_container_header(&mut buf.as_slice(), MAGIC, 2),
            Err(ContainerError::BadMagic { .. })
        ));
    }

    #[test]
    fn container_rejects_future_version() {
        let mut buf = Vec::new();
        write_container_header(&mut buf, MAGIC, 9).unwrap();
        assert!(matches!(
            read_container_header(&mut buf.as_slice(), MAGIC, 2),
            Err(ContainerError::UnsupportedVersion {
                found: 9,
                max_supported: 2
            })
        ));
    }

    #[test]
    fn section_from_slice_reports_consumed_bytes() {
        let mut buf = Vec::new();
        write_section(&mut buf, b"ALFA", b"one").unwrap();
        let first_len = buf.len();
        write_section(&mut buf, b"BETA", b"two!").unwrap();
        let (tag, payload, used) = read_section_from(&buf).unwrap();
        assert_eq!((&tag, payload, used), (b"ALFA", &b"one"[..], first_len));
        let (tag, payload, used) = read_section_from(&buf[first_len..]).unwrap();
        assert_eq!(
            (&tag, payload, used),
            (b"BETA", &b"two!"[..], buf.len() - first_len)
        );

        // Truncation anywhere inside the frame, including a huge declared
        // length, is Truncated; a flipped payload bit is Checksum.
        for cut in [1, 5, 11, first_len - 1] {
            assert!(matches!(
                read_section_from(&buf[..cut]),
                Err(ContainerError::Truncated { .. })
            ));
        }
        let mut huge = buf.clone();
        huge[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_section_from(&huge),
            Err(ContainerError::Truncated { .. })
        ));
        let mut corrupt = buf.clone();
        corrupt[13] ^= 0x01;
        assert!(matches!(
            read_section_from(&corrupt),
            Err(ContainerError::Checksum { .. })
        ));
    }

    #[test]
    fn container_detects_truncation_and_corruption() {
        let mut buf = Vec::new();
        write_section(&mut buf, b"ALFA", b"payload bytes").unwrap();
        // Truncated inside the payload.
        let cut = &buf[..buf.len() - 12];
        assert!(matches!(
            read_section(&mut &cut[..]),
            Err(ContainerError::Truncated { section }) if &section == b"ALFA"
        ));
        // One flipped payload bit.
        let mut corrupt = buf.clone();
        corrupt[4 + 8] ^= 0x40;
        assert!(matches!(
            read_section(&mut corrupt.as_slice()),
            Err(ContainerError::Checksum { section, .. }) if &section == b"ALFA"
        ));
    }
}
