//! Minimal binary serialization used for the on-disk size experiments
//! (paper Figures 9 and 10: dictionary and triple-storage sizes persisted to
//! an SD card).
//!
//! All integers are written little-endian. The format is deliberately dumb
//! and compact — it mirrors what the paper does when it "persists all the
//! data structures existing in SuccinctEdge to disk in order to make a fair
//! comparison" (§7.3.2).

use std::io;

/// Little-endian integer writing on top of any [`io::Write`].
pub trait WriteBin: io::Write {
    fn write_u64(&mut self, v: u64) -> io::Result<()> {
        self.write_all(&v.to_le_bytes())
    }
    fn write_u32(&mut self, v: u32) -> io::Result<()> {
        self.write_all(&v.to_le_bytes())
    }
    fn write_u8(&mut self, v: u8) -> io::Result<()> {
        self.write_all(&[v])
    }
    /// Length-prefixed UTF-8 string.
    fn write_str(&mut self, s: &str) -> io::Result<()> {
        self.write_u64(s.len() as u64)?;
        self.write_all(s.as_bytes())
    }
}

impl<W: io::Write + ?Sized> WriteBin for W {}

/// Little-endian integer reading on top of any [`io::Read`].
pub trait ReadBin: io::Read {
    fn read_u64(&mut self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }
    fn read_u32(&mut self) -> io::Result<u32> {
        let mut buf = [0u8; 4];
        self.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }
    fn read_u8(&mut self) -> io::Result<u8> {
        let mut buf = [0u8; 1];
        self.read_exact(&mut buf)?;
        Ok(buf[0])
    }
    /// Length-prefixed UTF-8 string.
    fn read_str(&mut self) -> io::Result<String> {
        let len = self.read_u64()? as usize;
        let mut buf = vec![0u8; len];
        self.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

impl<R: io::Read + ?Sized> ReadBin for R {}

/// Compact binary serialization with a known size.
pub trait Serialize: Sized {
    /// Writes `self` to `w`.
    fn serialize<W: io::Write>(&self, w: &mut W) -> io::Result<()>;
    /// Reads a value previously written by [`Serialize::serialize`].
    fn deserialize<R: io::Read>(r: &mut R) -> io::Result<Self>;
    /// Exact number of bytes [`Serialize::serialize`] will write.
    fn serialized_size(&self) -> usize;

    /// Serializes into a fresh byte buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.serialized_size());
        self.serialize(&mut buf)
            .expect("serializing to Vec cannot fail");
        buf
    }

    /// Deserializes from a byte slice.
    fn from_bytes(mut bytes: &[u8]) -> io::Result<Self> {
        Self::deserialize(&mut bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut buf = Vec::new();
        buf.write_u64(0xDEAD_BEEF_CAFE_BABE).unwrap();
        assert_eq!(buf.len(), 8);
        let v = buf.as_slice().read_u64().unwrap();
        assert_eq!(v, 0xDEAD_BEEF_CAFE_BABE);
    }

    #[test]
    fn str_roundtrip() {
        let mut buf = Vec::new();
        buf.write_str("hello ünïcode").unwrap();
        let s = buf.as_slice().read_str().unwrap();
        assert_eq!(s, "hello ünïcode");
    }

    #[test]
    fn str_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        buf.write_u64(2).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(buf.as_slice().read_str().is_err());
    }

    #[test]
    fn read_past_end_errors() {
        let buf = [1u8, 2, 3];
        assert!(buf.as_slice().read_u64().is_err());
    }
}
