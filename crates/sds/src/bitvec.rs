//! A growable, word-packed bit vector.
//!
//! [`BitVec`] is the mutable building block used while *constructing* the
//! SuccinctEdge layers; once construction is finished it is frozen into an
//! [`crate::RsBitVec`] which adds the rank/select directories.

use crate::serialize::{ReadBin, Serialize, WriteBin};
use crate::HeapSize;
use std::io;

/// A growable sequence of bits packed into `u64` words (LSB-first).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit vector with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no bits are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Returns the bit at `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at `i` to `bit`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits in the whole vector (computed by scanning).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words (the final word may contain trailing zero padding).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Builds a bit vector from an iterator of bools.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut bv = Self::new();
        for b in bits {
            bv.push(b);
        }
        bv
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

impl HeapSize for BitVec {
    fn heap_size(&self) -> usize {
        self.words.capacity() * 8
    }
}

impl Serialize for BitVec {
    fn serialize<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_u64(self.len as u64)?;
        for word in &self.words {
            w.write_u64(*word)?;
        }
        Ok(())
    }

    fn deserialize<R: io::Read>(r: &mut R) -> io::Result<Self> {
        let len = r.read_u64()? as usize;
        let n_words = len.div_ceil(64);
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(r.read_u64()?);
        }
        Ok(Self { words, len })
    }

    fn serialized_size(&self) -> usize {
        8 + self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut bv = BitVec::new();
        let pattern = [true, false, true, true, false, false, true];
        for &b in &pattern {
            bv.push(b);
        }
        assert_eq!(bv.len(), 7);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bv.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn crosses_word_boundary() {
        let mut bv = BitVec::new();
        for i in 0..200 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 200);
        for i in 0..200 {
            assert_eq!(bv.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bv.count_ones(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn set_bits() {
        let mut bv = BitVec::zeros(130);
        assert_eq!(bv.count_ones(), 0);
        bv.set(0, true);
        bv.set(64, true);
        bv.set(129, true);
        assert_eq!(bv.count_ones(), 3);
        assert!(bv.get(0) && bv.get(64) && bv.get(129));
        bv.set(64, false);
        assert_eq!(bv.count_ones(), 2);
        assert!(!bv.get(64));
    }

    #[test]
    fn zeros_has_right_len() {
        let bv = BitVec::zeros(0);
        assert!(bv.is_empty());
        let bv = BitVec::zeros(65);
        assert_eq!(bv.len(), 65);
        assert_eq!(bv.words().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let bv = BitVec::zeros(10);
        bv.get(10);
    }

    #[test]
    fn from_iterator() {
        let bv: BitVec = (0..100).map(|i| i % 2 == 0).collect();
        assert_eq!(bv.len(), 100);
        assert_eq!(bv.count_ones(), 50);
    }

    #[test]
    fn roundtrip_serialization() {
        let bv: BitVec = (0..137).map(|i| i % 5 == 0).collect();
        let mut buf = Vec::new();
        bv.serialize(&mut buf).unwrap();
        assert_eq!(buf.len(), bv.serialized_size());
        let back = BitVec::deserialize(&mut buf.as_slice()).unwrap();
        assert_eq!(bv, back);
    }

    #[test]
    fn iter_matches_get() {
        let bv: BitVec = (0..70).map(|i| i % 7 < 3).collect();
        let collected: Vec<bool> = bv.iter().collect();
        for (i, b) in collected.iter().enumerate() {
            assert_eq!(*b, bv.get(i));
        }
    }
}
