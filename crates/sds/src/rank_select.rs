//! Static bit vector with constant-time `rank` and near-constant `select`.
//!
//! [`RsBitVec`] is the paper's *BM* structure (§3.3): "the most basic SDS we
//! are using in SuccinctEdge. It is a sequence of bits with some extra
//! information to support the efficient execution of SDS operations."
//!
//! The extra information is a classic two-level rank directory:
//!
//! * one cumulative 64-bit counter per 512-bit *superblock*;
//! * one cumulative 16-bit counter per 64-bit word within its superblock.
//!
//! `rank` reads one superblock counter, one block counter and one `popcount`
//! — *O(1)*. `select` binary-searches the superblock directory and then
//! scans at most 8 words — *O(log n / 512)*, constant in practice.
//!
//! The overhead is `64/512 + 16/64 ≈ 37.5 %` of the raw bit data, well below
//! the cost of a pointer-based index, which is what gives SuccinctEdge its
//! low memory footprint.

use crate::bitvec::BitVec;
use crate::serialize::Serialize;
use crate::HeapSize;
use std::io;

const SUPERBLOCK_BITS: usize = 512;
const WORDS_PER_SUPERBLOCK: usize = SUPERBLOCK_BITS / 64;

/// An immutable bit vector with rank/select support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsBitVec {
    bits: BitVec,
    /// Ones before each superblock (cumulative), length = n_superblocks + 1.
    super_ranks: Vec<u64>,
    /// Ones before each word *within its superblock* (cumulative).
    block_ranks: Vec<u16>,
    ones: usize,
}

impl RsBitVec {
    /// Freezes a [`BitVec`] and builds the rank directories.
    pub fn new(bits: BitVec) -> Self {
        let words = bits.words();
        let n_super = words.len().div_ceil(WORDS_PER_SUPERBLOCK);
        let mut super_ranks = Vec::with_capacity(n_super + 1);
        let mut block_ranks = Vec::with_capacity(words.len());
        let mut total: u64 = 0;
        for sb in 0..n_super {
            super_ranks.push(total);
            let mut within: u16 = 0;
            let start = sb * WORDS_PER_SUPERBLOCK;
            let end = (start + WORDS_PER_SUPERBLOCK).min(words.len());
            for &w in &words[start..end] {
                block_ranks.push(within);
                within += w.count_ones() as u16;
            }
            total += within as u64;
        }
        super_ranks.push(total);
        Self {
            bits,
            super_ranks,
            block_ranks,
            ones: total as usize,
        }
    }

    /// Builds from an iterator of bools.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        Self::new(BitVec::from_bits(bits))
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Total number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Total number of unset bits.
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len() - self.ones
    }

    /// The bit at position `i` (the SDS `access` operation).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Number of set bits in `[0, i)`.
    ///
    /// `i` may equal `len()`, in which case the total number of ones is
    /// returned.
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        assert!(
            i <= self.len(),
            "rank index {i} out of bounds (len {})",
            self.len()
        );
        if i == 0 {
            return 0;
        }
        let word = i / 64;
        let sb = word / WORDS_PER_SUPERBLOCK;
        let mut r = self.super_ranks[sb];
        if word < self.block_ranks.len() {
            r += self.block_ranks[word] as u64;
            let rem = i % 64;
            if rem != 0 {
                let mask = (1u64 << rem) - 1;
                r += (self.bits.words()[word] & mask).count_ones() as u64;
            }
        } else {
            // i == len and len is a multiple of 64: all words counted already.
            debug_assert_eq!(i, self.len());
            r = self.super_ranks[self.super_ranks.len() - 1];
        }
        r as usize
    }

    /// Number of unset bits in `[0, i)`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Position of the `k`-th set bit (1-indexed), or `None` if `k` is zero
    /// or exceeds [`RsBitVec::count_ones`].
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k == 0 || k > self.ones {
            return None;
        }
        let k64 = k as u64;
        // Largest superblock whose cumulative count is < k.
        let sb = match self.super_ranks.partition_point(|&r| r < k64) {
            0 => 0,
            p => p - 1,
        };
        let mut remaining = k64 - self.super_ranks[sb];
        let start = sb * WORDS_PER_SUPERBLOCK;
        let end = (start + WORDS_PER_SUPERBLOCK).min(self.bits.words().len());
        for w_idx in start..end {
            let ones_in_word = self.bits.words()[w_idx].count_ones() as u64;
            if remaining <= ones_in_word {
                let pos = select_in_word(self.bits.words()[w_idx], remaining as u32);
                return Some(w_idx * 64 + pos as usize);
            }
            remaining -= ones_in_word;
        }
        unreachable!("select1: directory inconsistent");
    }

    /// Position of the `k`-th unset bit (1-indexed), or `None` if out of
    /// range.
    pub fn select0(&self, k: usize) -> Option<usize> {
        if k == 0 || k > self.count_zeros() {
            return None;
        }
        let k64 = k as u64;
        // Zeros before superblock sb = sb * 512 - super_ranks[sb]; find the
        // largest sb where that is < k. The quantity is monotone in sb.
        let zeros_before = |sb: usize| (sb * SUPERBLOCK_BITS) as u64 - self.super_ranks[sb];
        let mut lo = 0usize;
        let mut hi = self.super_ranks.len() - 1; // number of superblocks
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if zeros_before(mid) < k64 {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let sb = lo;
        let mut remaining = k64 - zeros_before(sb);
        let start = sb * WORDS_PER_SUPERBLOCK;
        let end = (start + WORDS_PER_SUPERBLOCK).min(self.bits.words().len());
        for w_idx in start..end {
            // Bits beyond len() in the last word are zero-padding; cap them.
            let valid = (self.len() - w_idx * 64).min(64);
            let word = !self.bits.words()[w_idx];
            let word = if valid == 64 {
                word
            } else {
                word & ((1u64 << valid) - 1)
            };
            let zeros_in_word = word.count_ones() as u64;
            if remaining <= zeros_in_word {
                let pos = select_in_word(word, remaining as u32);
                return Some(w_idx * 64 + pos as usize);
            }
            remaining -= zeros_in_word;
        }
        unreachable!("select0: directory inconsistent");
    }

    /// Iterates over the positions of all set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .words()
            .iter()
            .enumerate()
            .flat_map(|(w_idx, &w)| {
                let mut w = w;
                std::iter::from_fn(move || {
                    if w == 0 {
                        None
                    } else {
                        let tz = w.trailing_zeros() as usize;
                        w &= w - 1;
                        Some(w_idx * 64 + tz)
                    }
                })
            })
            .filter(move |&p| p < self.len())
    }

    /// Access to the underlying frozen bits.
    pub fn bit_vec(&self) -> &BitVec {
        &self.bits
    }
}

/// Position (0-indexed) of the `k`-th set bit inside `word` (`k` 1-indexed).
///
/// # Panics
/// Panics in debug mode if `word` has fewer than `k` set bits.
#[inline]
fn select_in_word(mut word: u64, k: u32) -> u32 {
    debug_assert!(k >= 1 && word.count_ones() >= k);
    for _ in 1..k {
        word &= word - 1; // clear lowest set bit
    }
    word.trailing_zeros()
}

impl HeapSize for RsBitVec {
    fn heap_size(&self) -> usize {
        self.bits.heap_size() + self.super_ranks.capacity() * 8 + self.block_ranks.capacity() * 2
    }
}

impl Serialize for RsBitVec {
    fn serialize<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        // Only the raw bits are persisted; directories are rebuilt on load.
        self.bits.serialize(w)
    }

    fn deserialize<R: io::Read>(r: &mut R) -> io::Result<Self> {
        Ok(Self::new(BitVec::deserialize(r)?))
    }

    fn serialized_size(&self) -> usize {
        self.bits.serialized_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank1(bits: &[bool], i: usize) -> usize {
        bits[..i].iter().filter(|&&b| b).count()
    }

    fn naive_select1(bits: &[bool], k: usize) -> Option<usize> {
        bits.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .nth(k.checked_sub(1)?)
    }

    fn naive_select0(bits: &[bool], k: usize) -> Option<usize> {
        bits.iter()
            .enumerate()
            .filter(|(_, &b)| !b)
            .map(|(i, _)| i)
            .nth(k.checked_sub(1)?)
    }

    fn check_all(bits: &[bool]) {
        let rs = RsBitVec::from_bits(bits.iter().copied());
        assert_eq!(rs.len(), bits.len());
        assert_eq!(rs.count_ones(), bits.iter().filter(|&&b| b).count());
        for i in 0..=bits.len() {
            assert_eq!(rs.rank1(i), naive_rank1(bits, i), "rank1({i})");
            assert_eq!(rs.rank0(i), i - naive_rank1(bits, i), "rank0({i})");
        }
        for k in 0..=rs.count_ones() + 1 {
            assert_eq!(rs.select1(k), naive_select1(bits, k), "select1({k})");
        }
        for k in 0..=rs.count_zeros() + 1 {
            assert_eq!(rs.select0(k), naive_select0(bits, k), "select0({k})");
        }
    }

    #[test]
    fn empty() {
        let rs = RsBitVec::from_bits(std::iter::empty());
        assert_eq!(rs.len(), 0);
        assert_eq!(rs.rank1(0), 0);
        assert_eq!(rs.select1(1), None);
        assert_eq!(rs.select0(1), None);
    }

    #[test]
    fn all_ones() {
        check_all(&vec![true; 700]);
    }

    #[test]
    fn all_zeros() {
        check_all(&vec![false; 700]);
    }

    #[test]
    fn alternating() {
        let bits: Vec<bool> = (0..1025).map(|i| i % 2 == 0).collect();
        check_all(&bits);
    }

    #[test]
    fn sparse_ones() {
        let bits: Vec<bool> = (0..2000).map(|i| i % 293 == 0).collect();
        check_all(&bits);
    }

    #[test]
    fn sparse_zeros() {
        let bits: Vec<bool> = (0..2000).map(|i| i % 293 != 0).collect();
        check_all(&bits);
    }

    #[test]
    fn exact_superblock_boundary() {
        let bits: Vec<bool> = (0..512).map(|i| i % 3 == 0).collect();
        check_all(&bits);
        let bits: Vec<bool> = (0..1024).map(|i| i % 7 == 0).collect();
        check_all(&bits);
    }

    #[test]
    fn exact_word_boundary() {
        let bits: Vec<bool> = (0..64).map(|i| i % 2 == 1).collect();
        check_all(&bits);
        let bits: Vec<bool> = (0..128).map(|i| i < 64).collect();
        check_all(&bits);
    }

    #[test]
    fn select_in_word_works() {
        assert_eq!(select_in_word(0b1, 1), 0);
        assert_eq!(select_in_word(0b1010, 1), 1);
        assert_eq!(select_in_word(0b1010, 2), 3);
        assert_eq!(select_in_word(u64::MAX, 64), 63);
    }

    #[test]
    fn iter_ones_matches() {
        let bits: Vec<bool> = (0..300).map(|i| i % 13 == 0).collect();
        let rs = RsBitVec::from_bits(bits.iter().copied());
        let expected: Vec<usize> = (0..300).filter(|i| i % 13 == 0).collect();
        assert_eq!(rs.iter_ones().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn serialization_roundtrip() {
        let bits: Vec<bool> = (0..777).map(|i| (i * i) % 5 == 1).collect();
        let rs = RsBitVec::from_bits(bits.iter().copied());
        let buf = rs.to_bytes();
        assert_eq!(buf.len(), rs.serialized_size());
        let back = RsBitVec::from_bytes(&buf).unwrap();
        assert_eq!(rs, back);
        assert_eq!(back.rank1(777), rs.rank1(777));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn rank_select_match_naive(bits in proptest::collection::vec(any::<bool>(), 0..3000)) {
                let rs = RsBitVec::from_bits(bits.iter().copied());
                // rank at a handful of positions incl. boundaries
                for i in [0, bits.len() / 3, bits.len() / 2, bits.len()] {
                    prop_assert_eq!(rs.rank1(i), naive_rank1(&bits, i));
                }
                // select1/select0 must invert rank
                for k in 1..=rs.count_ones() {
                    let p = rs.select1(k).unwrap();
                    prop_assert!(bits[p]);
                    prop_assert_eq!(rs.rank1(p), k - 1);
                }
                for k in 1..=rs.count_zeros().min(100) {
                    let p = rs.select0(k).unwrap();
                    prop_assert!(!bits[p]);
                    prop_assert_eq!(rs.rank0(p), k - 1);
                }
            }
        }
    }
}
