//! Fixed-width packed integer vector (the analogue of sdsl's `int_vector`).
//!
//! Stores `n` integers of `width` bits each in `⌈n·width/64⌉` words. Used by
//! the wavelet-tree builder and by the flat literal store of the
//! Datatype-triple layer.

use crate::serialize::{ReadBin, Serialize, WriteBin};
use crate::{bits_for, HeapSize};
use std::io;

/// A packed vector of fixed-width unsigned integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntVector {
    words: Vec<u64>,
    len: usize,
    width: u32,
}

impl IntVector {
    /// Creates an empty vector whose elements use `width` bits (1..=64).
    ///
    /// # Panics
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u32) -> Self {
        assert!(
            (1..=64).contains(&width),
            "width must be in 1..=64, got {width}"
        );
        Self {
            words: Vec::new(),
            len: 0,
            width,
        }
    }

    /// Creates an empty vector with room for `n` elements of `width` bits.
    pub fn with_capacity(width: u32, n: usize) -> Self {
        assert!(
            (1..=64).contains(&width),
            "width must be in 1..=64, got {width}"
        );
        Self {
            words: Vec::with_capacity((n * width as usize).div_ceil(64)),
            len: 0,
            width,
        }
    }

    /// Builds a vector wide enough for every value in `values`.
    pub fn from_slice(values: &[u64]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0);
        let mut iv = Self::with_capacity(bits_for(max), values.len());
        for &v in values {
            iv.push(v);
        }
        iv
    }

    /// Element width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `v`.
    ///
    /// # Panics
    /// Panics if `v` does not fit in `width` bits.
    pub fn push(&mut self, v: u64) {
        assert!(
            self.width == 64 || v < (1u64 << self.width),
            "value {v} does not fit in {} bits",
            self.width
        );
        let bit_pos = self.len * self.width as usize;
        let word = bit_pos / 64;
        let offset = bit_pos % 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= v << offset;
        let spill = offset as u32 + self.width;
        if spill > 64 {
            self.words.push(v >> (64 - offset));
        }
        self.len += 1;
    }

    /// Returns the element at `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let bit_pos = i * self.width as usize;
        let word = bit_pos / 64;
        let offset = (bit_pos % 64) as u32;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let lo = self.words[word] >> offset;
        if offset + self.width <= 64 {
            lo & mask
        } else {
            (lo | (self.words[word + 1] << (64 - offset))) & mask
        }
    }

    /// Overwrites the element at `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()` or `v` does not fit in `width` bits.
    pub fn set(&mut self, i: usize, v: u64) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        assert!(
            self.width == 64 || v < (1u64 << self.width),
            "value {v} does not fit in {} bits",
            self.width
        );
        let bit_pos = i * self.width as usize;
        let word = bit_pos / 64;
        let offset = (bit_pos % 64) as u32;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        self.words[word] &= !(mask << offset);
        self.words[word] |= v << offset;
        if offset + self.width > 64 {
            let hi_bits = offset + self.width - 64;
            let hi_mask = (1u64 << hi_bits) - 1;
            self.words[word + 1] &= !hi_mask;
            self.words[word + 1] |= v >> (64 - offset);
        }
    }

    /// Iterates over all elements.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Copies the contents into a plain `Vec<u64>`.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }
}

impl HeapSize for IntVector {
    fn heap_size(&self) -> usize {
        self.words.capacity() * 8
    }
}

impl Serialize for IntVector {
    fn serialize<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_u64(self.len as u64)?;
        w.write_u32(self.width)?;
        for word in &self.words {
            w.write_u64(*word)?;
        }
        Ok(())
    }

    fn deserialize<R: io::Read>(r: &mut R) -> io::Result<Self> {
        let len = r.read_u64()? as usize;
        let width = r.read_u32()?;
        if !(1..=64).contains(&width) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad int-vector width",
            ));
        }
        let n_words = (len * width as usize).div_ceil(64);
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(r.read_u64()?);
        }
        Ok(Self { words, len, width })
    }

    fn serialized_size(&self) -> usize {
        8 + 4 + self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_width_7() {
        let mut iv = IntVector::new(7);
        let values: Vec<u64> = (0..200).map(|i| (i * 37) % 128).collect();
        for &v in &values {
            iv.push(v);
        }
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(iv.get(i), v, "index {i}");
        }
    }

    #[test]
    fn width_64_roundtrip() {
        let mut iv = IntVector::new(64);
        iv.push(u64::MAX);
        iv.push(0);
        iv.push(42);
        assert_eq!(iv.get(0), u64::MAX);
        assert_eq!(iv.get(1), 0);
        assert_eq!(iv.get(2), 42);
    }

    #[test]
    fn width_1_behaves_like_bitvec() {
        let mut iv = IntVector::new(1);
        for i in 0..150 {
            iv.push(u64::from(i % 2 == 0));
        }
        for i in 0..150 {
            assert_eq!(iv.get(i), u64::from(i % 2 == 0));
        }
    }

    #[test]
    fn spanning_word_boundary() {
        // width 33: second element crosses the first word boundary.
        let mut iv = IntVector::new(33);
        let values = [0x1_2345_6789u64, 0x1_FFFF_FFFF, 0, 0x0_DEAD_BEEF];
        for &v in &values {
            iv.push(v);
        }
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(iv.get(i), v, "index {i}");
        }
    }

    #[test]
    fn set_overwrites() {
        let mut iv = IntVector::from_slice(&[5, 10, 15, 20]);
        iv.set(1, 11);
        iv.set(3, 0);
        assert_eq!(iv.to_vec(), vec![5, 11, 15, 0]);
    }

    #[test]
    fn set_across_boundary() {
        let mut iv = IntVector::new(61);
        for _ in 0..10 {
            iv.push(0);
        }
        iv.set(1, (1u64 << 61) - 1);
        iv.set(2, 12345);
        assert_eq!(iv.get(0), 0);
        assert_eq!(iv.get(1), (1u64 << 61) - 1);
        assert_eq!(iv.get(2), 12345);
        assert_eq!(iv.get(3), 0);
    }

    #[test]
    fn from_slice_picks_width() {
        let iv = IntVector::from_slice(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(iv.width(), 3);
        assert_eq!(iv.to_vec(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let iv = IntVector::from_slice(&[]);
        assert!(iv.is_empty());
        assert_eq!(iv.width(), 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_too_wide_panics() {
        let mut iv = IntVector::new(3);
        iv.push(8);
    }

    #[test]
    fn serialization_roundtrip() {
        let values: Vec<u64> = (0..500).map(|i| (i * 7919) % 1000).collect();
        let iv = IntVector::from_slice(&values);
        let buf = iv.to_bytes();
        assert_eq!(buf.len(), iv.serialized_size());
        let back = IntVector::from_bytes(&buf).unwrap();
        assert_eq!(iv, back);
    }

    #[test]
    fn deserialize_rejects_bad_width() {
        let mut buf = Vec::new();
        buf.write_u64(3).unwrap();
        buf.write_u32(65).unwrap();
        assert!(IntVector::from_bytes(&buf).is_err());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_any_width(
                width in 1u32..=64,
                raw in proptest::collection::vec(any::<u64>(), 0..300),
            ) {
                let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
                let values: Vec<u64> = raw.iter().map(|v| v & mask).collect();
                let mut iv = IntVector::new(width);
                for &v in &values {
                    iv.push(v);
                }
                prop_assert_eq!(iv.len(), values.len());
                for (i, &v) in values.iter().enumerate() {
                    prop_assert_eq!(iv.get(i), v);
                }
                let back = IntVector::from_bytes(&iv.to_bytes()).unwrap();
                prop_assert_eq!(back.to_vec(), values);
            }
        }
    }
}
