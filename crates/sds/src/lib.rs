//! # se-sds — succinct data structures for SuccinctEdge
//!
//! This crate implements the succinct-data-structure (SDS) substrate that the
//! SuccinctEdge RDF store (EDBT 2021) builds on, replacing the C++
//! `sdsl-lite` library used by the paper:
//!
//! * [`BitVec`] — a growable, word-packed bit vector;
//! * [`RsBitVec`] — a static bit vector with *O(1)* `rank` and
//!   near-*O(1)* `select` (two-level rank directory + sampled select hints);
//! * [`IntVector`] — a fixed-width packed integer vector (the analogue of
//!   sdsl's `int_vector`);
//! * [`WaveletTree`] — a pointerless (level-wise) wavelet tree over an
//!   integer sequence supporting `access`, `rank`, `select` and the
//!   `range_search` operation of the paper (§5.2) in *O(log σ)*.
//!
//! All structures expose [`HeapSize::heap_size`] (RAM-footprint accounting
//! for the paper's Figure 11) and a compact binary serialization
//! ([`Serialize`]) used for the on-disk size comparisons (Figures 9 and 10).

pub mod bitvec;
pub mod int_vector;
pub mod rank_select;
pub mod serialize;
pub mod wavelet_tree;

pub use bitvec::BitVec;
pub use int_vector::IntVector;
pub use rank_select::RsBitVec;
pub use serialize::{
    checksum64, expect_section, read_container_header, read_section, read_section_from,
    write_container_header, write_section, ContainerError, ReadBin, Serialize, WriteBin,
};
pub use wavelet_tree::WaveletTree;

/// Number of bits needed to represent `v` (at least 1).
#[inline]
pub fn bits_for(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// RAM-footprint accounting used to reproduce the paper's Figure 11
/// (main-memory comparison of the in-memory systems).
pub trait HeapSize {
    /// Bytes of heap memory owned by this value (excluding `size_of::<Self>()`).
    fn heap_size(&self) -> usize;

    /// Total in-memory footprint: stack size plus owned heap bytes.
    fn total_size(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of::<Self>() + self.heap_size()
    }
}

impl HeapSize for Vec<u64> {
    fn heap_size(&self) -> usize {
        self.capacity() * std::mem::size_of::<u64>()
    }
}

impl HeapSize for Vec<u32> {
    fn heap_size(&self) -> usize {
        self.capacity() * std::mem::size_of::<u32>()
    }
}

impl HeapSize for String {
    fn heap_size(&self) -> usize {
        self.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn heap_size_vec() {
        let v: Vec<u64> = Vec::with_capacity(10);
        assert_eq!(v.heap_size(), 80);
    }
}
