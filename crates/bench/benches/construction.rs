//! Figure 8 — back-end construction time vs dataset size, per system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use se_baselines::{DiskStore, MultiIndexStore};
use se_bench::{ontology_for, paper_datasets, DISK_POOL_PAGES};
use se_core::SuccinctEdgeStore;

fn construction(c: &mut Criterion) {
    let ds = paper_datasets();
    let mut group = c.benchmark_group("fig8_construction");
    group.sample_size(10);
    for (label, graph) in &ds.graphs {
        if graph.len() > 25_000 {
            continue; // criterion covers the small/medium range; `tables` covers all
        }
        let onto = ontology_for(label);
        group.bench_with_input(BenchmarkId::new("succinct_edge", label), graph, |b, g| {
            b.iter(|| SuccinctEdgeStore::build(&onto, g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("multi_index_mem", label), graph, |b, g| {
            b.iter(|| MultiIndexStore::build(g))
        });
        group.bench_with_input(BenchmarkId::new("disk_store", label), graph, |b, g| {
            b.iter(|| {
                DiskStore::build_temp(g, DISK_POOL_PAGES)
                    .unwrap()
                    .destroy()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
