//! Tables 1–2 and Figure 12 — single-triple-pattern latencies per system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use se_bench::{BuiltSystem, System};
use se_datagen::{lubm, workload};
use se_ontology::lubm_ontology;

fn single_tp(c: &mut Criterion) {
    let mut graph = lubm::generate(1, 42);
    graph.truncate(100_000);
    let onto = lubm_ontology();
    let dicts = onto.encode().unwrap();
    let se = BuiltSystem::build(System::SuccinctEdge, &onto, &graph);
    let mem = BuiltSystem::build(System::MemoryBaseline, &onto, &graph);
    let disk = BuiltSystem::build(System::DiskBaseline, &onto, &graph);

    let run_group = |name: &str, queries: Vec<workload::WorkloadQuery>, c: &mut Criterion| {
        let mut group = c.benchmark_group(name);
        group.sample_size(10);
        for wq in &queries {
            for (sys, sys_name) in [
                (&se, "succinct_edge"),
                (&mem, "multi_index_mem"),
                (&disk, "disk_store"),
            ] {
                group.bench_with_input(BenchmarkId::new(sys_name, &wq.id), &wq.text, |b, text| {
                    b.iter(|| sys.run(text, wq.reasoning, &dicts))
                });
            }
        }
        group.finish();
    };

    run_group("table1_spo", workload::spo_queries(&graph), c);
    run_group("table2_pso", workload::po_queries(&graph), c);
    run_group("fig12_p_scan", workload::p_queries(), c);

    disk.destroy();
    se.destroy();
    mem.destroy();
}

criterion_group!(benches, single_tp);
criterion_main!(benches);
