//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. LiteMat intervals vs UNION rewriting *on the same SuccinctEdge store*
//!    (isolates the encoding benefit from the store benefit);
//! 2. merge join vs nested-loop-only joins on star BGPs;
//! 3. Algorithm-1 join ordering vs textual order;
//! 4. rangeSearch-based TP evaluation vs RDFType red-black access path;
//! 5. PSO anchor (SuccinctEdge) vs SPO anchor (HDT-style Bitmap-Triples)
//!    on the IoT-typical `(?s, P, ?o)` pattern vs subject-bound patterns.

use criterion::{criterion_group, criterion_main, Criterion};
use se_baselines::exec::TripleSource;
use se_core::SuccinctEdgeStore;
use se_datagen::{lubm, workload};
use se_ontology::lubm_ontology;
use se_sparql::{execute_query, QueryOptions};

fn ablations(c: &mut Criterion) {
    let graph = lubm::generate(1, 42);
    let onto = lubm_ontology();
    let dicts = onto.encode().unwrap();
    let store = SuccinctEdgeStore::build(&onto, &graph).unwrap();

    // 1. LiteMat vs UNION rewriting on the same store.
    let r2 = workload::r_queries(&graph)
        .into_iter()
        .find(|q| q.id == "R2")
        .unwrap();
    let rewritten = {
        let parsed = se_sparql::parse_query(&r2.text).unwrap();
        se_baselines::rewrite_with_ontology(&parsed, &dicts)
            .unwrap()
            .0
    };
    let mut group = c.benchmark_group("ablation_reasoning_mode");
    group.sample_size(10);
    group.bench_function("litemat_intervals", |b| {
        b.iter(|| execute_query(&store, &r2.text, &QueryOptions::default()).unwrap())
    });
    group.bench_function("union_rewriting_same_store", |b| {
        b.iter(|| {
            se_sparql::exec::execute(&store, &rewritten, &QueryOptions::without_reasoning())
                .unwrap()
        })
    });
    group.finish();

    // 2. merge join vs nested loop on a star query (M1).
    let m1 = workload::m_queries(&graph)
        .into_iter()
        .find(|q| q.id == "M1")
        .unwrap();
    let mut group = c.benchmark_group("ablation_join_strategy");
    group.sample_size(10);
    group.bench_function("merge_join", |b| {
        b.iter(|| execute_query(&store, &m1.text, &QueryOptions::default()).unwrap())
    });
    group.bench_function("nested_loop_only", |b| {
        let opts = QueryOptions {
            merge_join: false,
            ..QueryOptions::default()
        };
        b.iter(|| execute_query(&store, &m1.text, &opts).unwrap())
    });
    group.finish();

    // 3. Algorithm 1 vs textual TP order (M3: order matters).
    let m3 = workload::m_queries(&graph)
        .into_iter()
        .find(|q| q.id == "M3")
        .unwrap();
    let mut group = c.benchmark_group("ablation_optimizer");
    group.sample_size(10);
    group.bench_function("algorithm1", |b| {
        b.iter(|| execute_query(&store, &m3.text, &QueryOptions::default()).unwrap())
    });
    group.bench_function("textual_order", |b| {
        let opts = QueryOptions {
            optimize: false,
            ..QueryOptions::default()
        };
        b.iter(|| execute_query(&store, &m3.text, &opts).unwrap())
    });
    group.finish();

    // 4. RDFType store vs evaluating the same lookup through the SDS layers:
    //    subjects of a concept via the red-black CS path.
    let student = se_rdf::vocab::lubm::iri("UndergraduateStudent");
    let iv = store.concept_interval(&student).unwrap();
    let mut group = c.benchmark_group("ablation_rdftype_store");
    group.sample_size(10);
    group.bench_function("rbtree_interval_scan", |b| {
        b.iter(|| store.subjects_of_concept_interval(iv))
    });
    group.finish();

    // 5. PSO vs SPO anchoring (§6): the same succinct layer structure,
    //    anchored on predicates (SuccinctEdge) vs subjects (HDT-style).
    let hdt = se_baselines::HdtStyleStore::build(&graph);
    let works_for = se_rdf::vocab::lubm::iri("worksFor");
    let p_id_se = store.property_id(&works_for).unwrap();
    let p_id_hdt = hdt
        .resolve(&se_rdf::Term::iri(works_for.clone()))
        .expect("worksFor in the HDT dictionary");
    let mut group = c.benchmark_group("ablation_layout_anchor");
    group.sample_size(10);
    group.bench_function("pso_scan_predicate", |b| {
        b.iter(|| store.scan_predicate(p_id_se))
    });
    group.bench_function("spo_scan_predicate", |b| {
        b.iter(|| hdt.triples_matching(None, Some(p_id_hdt), None))
    });
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
