//! Figure 14 — RDFS-reasoning query latencies: LiteMat intervals
//! (SuccinctEdge) vs UNION rewriting (baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use se_bench::{BuiltSystem, System};
use se_datagen::{lubm, workload};
use se_ontology::lubm_ontology;

fn reasoning(c: &mut Criterion) {
    let graph = lubm::generate(1, 42);
    let onto = lubm_ontology();
    let dicts = onto.encode().unwrap();
    let se = BuiltSystem::build(System::SuccinctEdge, &onto, &graph);
    let mem = BuiltSystem::build(System::MemoryBaseline, &onto, &graph);
    let disk = BuiltSystem::build(System::DiskBaseline, &onto, &graph);

    let mut group = c.benchmark_group("fig14_reasoning");
    group.sample_size(10);
    for wq in workload::r_queries(&graph) {
        for (sys, sys_name) in [
            (&se, "succinct_edge"),
            (&mem, "multi_index_mem"),
            (&disk, "disk_store"),
        ] {
            group.bench_with_input(BenchmarkId::new(sys_name, &wq.id), &wq.text, |b, text| {
                b.iter(|| sys.run(text, wq.reasoning, &dicts))
            });
        }
    }
    group.finish();
    disk.destroy();
    se.destroy();
    mem.destroy();
}

criterion_group!(benches, reasoning);
criterion_main!(benches);
