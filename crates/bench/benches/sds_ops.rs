//! Microbenchmarks of the SDS substrate: the access/rank/select/rangeSearch
//! operations every triple pattern compiles into (§3.3, §5.2).

use criterion::{criterion_group, criterion_main, Criterion};
use se_sds::{RsBitVec, WaveletTree};

fn sds_ops(c: &mut Criterion) {
    let n = 1_000_000usize;
    let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let bm = RsBitVec::from_bits(bits.iter().copied());
    let values: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 1024).collect();
    let wt = WaveletTree::new(&values);

    let mut group = c.benchmark_group("sds_bitmap");
    group.bench_function("rank1", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 99_991) % n;
            bm.rank1(i)
        })
    });
    group.bench_function("select1", |b| {
        let ones = bm.count_ones();
        let mut k = 1usize;
        b.iter(|| {
            k = k % ones + 1;
            bm.select1(k)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("sds_wavelet_tree");
    group.bench_function("access", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 99_991) % n;
            wt.access(i)
        })
    });
    group.bench_function("rank", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 99_991) % n;
            wt.rank(i, 512)
        })
    });
    group.bench_function("select", |b| {
        let total = wt.rank(n, 512);
        let mut k = 1usize;
        b.iter(|| {
            k = k % total + 1;
            wt.select(k, 512)
        })
    });
    group.bench_function("range_search_narrow", |b| {
        let mut a = 0usize;
        b.iter(|| {
            a = (a + 99_991) % (n - 4096);
            wt.range_search(a, a + 4096, 512)
        })
    });
    group.finish();
}

criterion_group!(benches, sds_ops);
criterion_main!(benches);
