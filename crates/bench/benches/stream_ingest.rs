//! Write-path benchmarks for the incremental ingestion subsystem:
//! batch ingestion throughput and continuous-query latency on the hybrid
//! view, against the paper's original rebuild-per-instance model — plus
//! the sharded write path (parallel ingest, background compaction) against
//! the single-overlay store, with per-batch apply-latency percentiles.
//!
//! Besides the criterion timings this bench emits a machine-readable
//! `BENCH_stream_ingest.json` (throughput + p50/p99 apply latency per
//! engine) so the perf trajectory can be tracked across commits.

use criterion::{criterion_group, criterion_main, Criterion};
use se_core::SuccinctEdgeStore;
use se_datagen::water::{generate_stream, StreamBatch, WaterConfig};
use se_datagen::workload::water_anomaly_query;
use se_ontology::water_ontology;
use se_rdf::{Graph, Triple};
use se_sparql::QueryOptions;
use se_stream::{CompactionPolicy, HybridStore, ShardedHybridStore, StreamSession};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

const BATCHES: usize = 32;
/// The heavier multi-shard workload: more stations → more observation
/// subgraphs per batch spread across the predicate groups.
const LAT_STATIONS: usize = 24;
const LAT_BATCHES: usize = 48;
const SHARDS: usize = 4;

fn stream_ingest(c: &mut Criterion) {
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 4,
        rounds: 1,
        anomaly_rate: 0.15,
        seed: 21,
    };
    let batches = generate_stream(&cfg, BATCHES, 4);
    let query = water_anomaly_query();

    let mut group = c.benchmark_group("stream_ingest");
    group.sample_size(10);

    // One long-lived hybrid session: ingest + continuous query per batch,
    // overlay compacting under a realistic policy.
    group.bench_function("hybrid_ingest_and_query_32_batches", |b| {
        b.iter(|| {
            let store = HybridStore::build(&onto, &Graph::new())
                .unwrap()
                .with_policy(CompactionPolicy { max_overlay: 1024 });
            let mut session = StreamSession::new(store);
            session
                .register_query("anomaly", &query, QueryOptions::default())
                .unwrap();
            let mut alerts = 0usize;
            for batch in &batches {
                let out = session.apply_batch(&batch.inserts, &batch.deletes).unwrap();
                alerts += out.results[0].results.len();
            }
            alerts
        })
    });

    // The paper's execution model: rebuild the whole store per batch.
    group.bench_function("full_rebuild_and_query_32_batches", |b| {
        b.iter(|| {
            let mut reference: BTreeSet<Triple> = BTreeSet::new();
            let mut alerts = 0usize;
            for batch in &batches {
                for t in &batch.deletes {
                    reference.remove(t);
                }
                for t in &batch.inserts {
                    reference.insert(t.clone());
                }
                let store = SuccinctEdgeStore::build(
                    &onto,
                    &Graph::from_triples(reference.iter().cloned()),
                )
                .unwrap();
                alerts += se_sparql::execute_query(&store, &query, &QueryOptions::default())
                    .unwrap()
                    .len();
            }
            alerts
        })
    });

    // Continuous-query latency on a view with a dirty (uncompacted)
    // overlay — the steady-state read cost between compactions.
    let mut dirty = HybridStore::build(&onto, &Graph::new())
        .unwrap()
        .with_policy(CompactionPolicy {
            max_overlay: usize::MAX,
        });
    for batch in &batches {
        dirty.apply(&batch.inserts, &batch.deletes).unwrap();
    }
    let parsed = se_sparql::parse_query(&query).unwrap();
    let opts = QueryOptions::default();
    group.bench_function("continuous_query_on_dirty_overlay", |b| {
        b.iter(|| {
            se_sparql::exec::execute(&dirty, &parsed, &opts)
                .unwrap()
                .len()
        })
    });

    // Compaction cost: fold the accumulated overlay into the baseline.
    group.bench_function("compaction_of_32_batch_overlay", |b| {
        b.iter(|| {
            let mut h = dirty.clone();
            h.compact().unwrap();
            h.baseline().len()
        })
    });

    // ---- sharded vs single: multi-shard ingest throughput -----------------
    let heavy_cfg = WaterConfig {
        stations: LAT_STATIONS,
        rounds: 1,
        anomaly_rate: 0.15,
        seed: 77,
    };
    let heavy = generate_stream(&heavy_cfg, LAT_BATCHES, 6);
    let policy = CompactionPolicy { max_overlay: 2048 };

    group.bench_function("single_hybrid_ingest_heavy_stream", |b| {
        b.iter(|| {
            let mut h = HybridStore::build(&onto, &Graph::new())
                .unwrap()
                .with_policy(policy);
            for batch in &heavy {
                h.apply(&batch.inserts, &batch.deletes).unwrap();
            }
            se_core::TripleSource::len(&h)
        })
    });
    group.bench_function("sharded_ingest_heavy_stream_4_shards", |b| {
        b.iter(|| {
            let mut h = ShardedHybridStore::build(&onto, &Graph::new(), SHARDS)
                .unwrap()
                .with_policy(policy)
                .with_background_compaction(true);
            for batch in &heavy {
                h.apply(&batch.inserts, &batch.deletes).unwrap();
            }
            h.flush_compactions();
            se_core::TripleSource::len(&h)
        })
    });

    group.finish();

    // ---- apply-latency percentiles + machine-readable trajectory ---------
    emit_latency_report(&heavy);
}

/// Per-batch wall-clock `apply` latencies of one engine over a stream.
struct LatencyRun {
    label: &'static str,
    per_batch: Vec<Duration>,
    total: Duration,
    compactions: usize,
    final_len: usize,
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn run_latency<F>(label: &'static str, batches: &[StreamBatch], mut apply: F) -> LatencyRun
where
    F: FnMut(&StreamBatch),
{
    let t0 = Instant::now();
    let mut per_batch = Vec::with_capacity(batches.len());
    for batch in batches {
        let t = Instant::now();
        apply(batch);
        per_batch.push(t.elapsed());
    }
    let total = t0.elapsed();
    LatencyRun {
        label,
        per_batch,
        total,
        compactions: 0,
        final_len: 0,
    }
}

impl LatencyRun {
    fn json(&self) -> String {
        let mut sorted = self.per_batch.clone();
        sorted.sort_unstable();
        format!(
            "{{\"label\":\"{}\",\"total_ms\":{:.3},\"p50_us\":{:.1},\"p99_us\":{:.1},\"max_us\":{:.1},\"compactions\":{},\"final_triples\":{}}}",
            self.label,
            self.total.as_secs_f64() * 1e3,
            percentile(&sorted, 0.50).as_secs_f64() * 1e6,
            percentile(&sorted, 0.99).as_secs_f64() * 1e6,
            sorted.last().copied().unwrap_or_default().as_secs_f64() * 1e6,
            self.compactions,
            self.final_len,
        )
    }
}

/// Runs the heavy stream through (a) the single store with inline
/// compaction and (b) the sharded store with background compaction, under
/// a deliberately tight compaction policy so several rebuilds land inside
/// the run — the off-hot-path win shows up as the p99 gap. Results go to
/// stdout and `BENCH_stream_ingest.json`.
fn emit_latency_report(heavy: &[StreamBatch]) {
    let onto = water_ontology();
    let tight = CompactionPolicy { max_overlay: 768 };

    let mut single = HybridStore::build(&onto, &Graph::new())
        .unwrap()
        .with_policy(tight);
    let mut single_run = run_latency("single_inline_compaction", heavy, |b| {
        single.apply(&b.inserts, &b.deletes).unwrap();
    });
    single_run.compactions = single.stats().compactions;
    single_run.final_len = se_core::TripleSource::len(&single);

    let mut sharded = ShardedHybridStore::build(&onto, &Graph::new(), SHARDS)
        .unwrap()
        .with_policy(tight)
        .with_background_compaction(true);
    let mut sharded_run = run_latency("sharded_background_compaction", heavy, |b| {
        sharded.apply(&b.inserts, &b.deletes).unwrap();
    });
    sharded.flush_compactions();
    sharded_run.compactions = sharded.stats().compactions;
    sharded_run.final_len = se_core::TripleSource::len(&sharded);

    assert_eq!(
        single_run.final_len, sharded_run.final_len,
        "engines must agree on the final store"
    );
    let json = format!(
        "{{\"bench\":\"stream_ingest\",\"batches\":{},\"stations\":{},\"shards\":{},\"runs\":[{},{}]}}\n",
        heavy.len(),
        LAT_STATIONS,
        SHARDS,
        single_run.json(),
        sharded_run.json(),
    );
    println!("{json}");
    // Anchor at the workspace root regardless of the harness CWD.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_stream_ingest.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("note: could not write {}: {e}", path.display());
    }
}

criterion_group!(benches, stream_ingest);
criterion_main!(benches);
