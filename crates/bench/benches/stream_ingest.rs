//! Write-path benchmarks for the incremental ingestion subsystem:
//! batch ingestion throughput and continuous-query latency on the hybrid
//! view, against the paper's original rebuild-per-instance model — plus
//! the sharded write path (pooled parallel ingest, background compaction)
//! against the single-overlay store, with per-batch apply-latency
//! percentiles and a small-batch break-even sweep of the persistent
//! worker pool against the legacy per-batch scoped spawns.
//!
//! Besides the criterion timings this bench emits a machine-readable
//! `BENCH_stream_ingest.json` (throughput + rank-interpolated p50/p99
//! apply latency per engine, pooled/inline batch counts, the sweep, and
//! the v02 persistence trajectory: O(delta) save vs compact-then-dump,
//! with 4x-overlay / 4x-baseline cells pinning what the save time scales
//! with, the continuous-query trajectory: {4,16} registered queries ×
//! {small,heavy} store, differential delta evaluation vs forced full
//! re-evaluation over the same small-batch stream, and the se-server
//! trajectory: group-commit ingest for 16 concurrent TCP writers vs
//! per-client serial applies, plus snapshot-read QPS at 1/4/16 readers,
//! and the replication trajectory: WAL-tail catch-up for a fresh
//! follower vs the same records replayed in-process, plus live
//! commit-to-visible staleness percentiles) so the perf trajectory can
//! be tracked across commits — CI gates on the
//! `sharded_background_compaction`,
//! `continuous_incremental_16q_heavy_store`,
//! `server_group_commit_16_writers` and `replication_catchup` entries.

use criterion::{criterion_group, criterion_main, Criterion};
use se_core::SuccinctEdgeStore;
use se_datagen::water::{generate_stream, StreamBatch, WaterConfig};
use se_datagen::workload::water_anomaly_query;
use se_ontology::water_ontology;
use se_ontology::Ontology;
use se_rdf::{Graph, Term, Triple};
use se_sparql::QueryOptions;
use se_stream::{
    CompactionPolicy, HybridStore, IngestMode, ShardedHybridStore, StreamSession, SyncPolicy,
    WalConfig,
};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

const BATCHES: usize = 32;
/// The heavier multi-shard workload: more stations → more observation
/// subgraphs per batch spread across the predicate groups.
const LAT_STATIONS: usize = 24;
/// Criterion iterates the whole stream per sample — keep it short.
const CRIT_BATCHES: usize = 48;
/// The latency trajectory needs a real tail: ≥200 batches so p99 is an
/// interpolated rank statistic, not the sample maximum.
const LAT_BATCHES: usize = 240;
const SHARDS: usize = 4;
/// Small-batch sweep: ops per batch across the spawn/pool break-even.
const SWEEP_SIZES: [usize; 3] = [32, 256, 2048];
const SWEEP_BATCHES: usize = 64;

fn stream_ingest(c: &mut Criterion) {
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 4,
        rounds: 1,
        anomaly_rate: 0.15,
        seed: 21,
    };
    let batches = generate_stream(&cfg, BATCHES, 4);
    let query = water_anomaly_query();

    let mut group = c.benchmark_group("stream_ingest");
    group.sample_size(10);

    // One long-lived hybrid session: ingest + continuous query per batch,
    // overlay compacting under a realistic policy.
    group.bench_function("hybrid_ingest_and_query_32_batches", |b| {
        b.iter(|| {
            let store = HybridStore::build(&onto, &Graph::new())
                .unwrap()
                .with_policy(CompactionPolicy { max_overlay: 1024 });
            let mut session = StreamSession::new(store);
            session
                .register_query("anomaly", &query, QueryOptions::default())
                .unwrap();
            let mut alerts = 0usize;
            for batch in &batches {
                let out = session.apply_batch(&batch.inserts, &batch.deletes).unwrap();
                alerts += out.results[0].results.len();
            }
            alerts
        })
    });

    // The paper's execution model: rebuild the whole store per batch.
    group.bench_function("full_rebuild_and_query_32_batches", |b| {
        b.iter(|| {
            let mut reference: BTreeSet<Triple> = BTreeSet::new();
            let mut alerts = 0usize;
            for batch in &batches {
                for t in &batch.deletes {
                    reference.remove(t);
                }
                for t in &batch.inserts {
                    reference.insert(t.clone());
                }
                let store = SuccinctEdgeStore::build(
                    &onto,
                    &Graph::from_triples(reference.iter().cloned()),
                )
                .unwrap();
                alerts += se_sparql::execute_query(&store, &query, &QueryOptions::default())
                    .unwrap()
                    .len();
            }
            alerts
        })
    });

    // Continuous-query latency on a view with a dirty (uncompacted)
    // overlay — the steady-state read cost between compactions.
    let mut dirty = HybridStore::build(&onto, &Graph::new())
        .unwrap()
        .with_policy(CompactionPolicy {
            max_overlay: usize::MAX,
        });
    for batch in &batches {
        dirty.apply(&batch.inserts, &batch.deletes).unwrap();
    }
    let parsed = se_sparql::parse_query(&query).unwrap();
    let opts = QueryOptions::default();
    group.bench_function("continuous_query_on_dirty_overlay", |b| {
        b.iter(|| {
            se_sparql::exec::execute(&dirty, &parsed, &opts)
                .unwrap()
                .len()
        })
    });

    // Compaction cost: fold the accumulated overlay into the baseline.
    group.bench_function("compaction_of_32_batch_overlay", |b| {
        b.iter(|| {
            let mut h = dirty.clone();
            h.compact().unwrap();
            h.baseline().len()
        })
    });

    // ---- sharded vs single: multi-shard ingest throughput -----------------
    let heavy_cfg = WaterConfig {
        stations: LAT_STATIONS,
        rounds: 1,
        anomaly_rate: 0.15,
        seed: 77,
    };
    let heavy = generate_stream(&heavy_cfg, CRIT_BATCHES, 6);
    let policy = CompactionPolicy { max_overlay: 2048 };

    group.bench_function("single_hybrid_ingest_heavy_stream", |b| {
        b.iter(|| {
            let mut h = HybridStore::build(&onto, &Graph::new())
                .unwrap()
                .with_policy(policy);
            for batch in &heavy {
                h.apply(&batch.inserts, &batch.deletes).unwrap();
            }
            se_core::TripleSource::len(&h)
        })
    });
    group.bench_function("sharded_ingest_heavy_stream_4_shards", |b| {
        b.iter(|| {
            let mut h = ShardedHybridStore::build(&onto, &Graph::new(), SHARDS)
                .unwrap()
                .with_policy(policy)
                .with_background_compaction(true);
            for batch in &heavy {
                h.apply(&batch.inserts, &batch.deletes).unwrap();
            }
            h.flush_compactions();
            se_core::TripleSource::len(&h)
        })
    });

    group.finish();

    // ---- apply-latency percentiles + machine-readable trajectory ---------
    // A longer stream than the criterion benches: p99 over 240 batches is
    // a real (interpolated) tail statistic instead of the sample max.
    let heavy_long = generate_stream(&heavy_cfg, LAT_BATCHES, 6);
    emit_latency_report(&heavy_long);
}

/// Per-batch wall-clock `apply` latencies of one engine over a stream.
struct LatencyRun {
    label: String,
    per_batch: Vec<Duration>,
    total: Duration,
    compactions: usize,
    final_len: usize,
    /// How the batches were applied (from `ShardedStats`; the single
    /// store is all-inline by construction).
    pooled_batches: usize,
    inline_batches: usize,
    scoped_batches: usize,
}

/// Rank-interpolated percentile: the q-quantile of n samples sits at
/// rank `q·(n-1)`; interpolating linearly between the bracketing order
/// statistics makes p99 a genuine tail estimate instead of collapsing to
/// the maximum (which it did with 48 samples, where `round(0.99·47)` is
/// the last index).
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let a = sorted[lo].as_secs_f64();
    let b = sorted[hi].as_secs_f64();
    Duration::from_secs_f64(a + (b - a) * (rank - lo as f64))
}

fn run_latency<B, F>(label: &str, batches: &[B], mut apply: F) -> LatencyRun
where
    F: FnMut(&B),
{
    let t0 = Instant::now();
    let mut per_batch = Vec::with_capacity(batches.len());
    for batch in batches {
        let t = Instant::now();
        apply(batch);
        per_batch.push(t.elapsed());
    }
    let total = t0.elapsed();
    LatencyRun {
        label: label.to_string(),
        per_batch,
        total,
        compactions: 0,
        final_len: 0,
        pooled_batches: 0,
        inline_batches: 0,
        scoped_batches: 0,
    }
}

impl LatencyRun {
    fn take_sharded_stats(&mut self, store: &ShardedHybridStore) {
        let stats = store.stats();
        self.compactions = stats.compactions;
        self.pooled_batches = stats.pooled_batches;
        self.inline_batches = stats.inline_batches;
        self.scoped_batches = stats.scoped_batches;
        self.final_len = se_core::TripleSource::len(store);
    }

    fn json(&self) -> String {
        let mut sorted = self.per_batch.clone();
        sorted.sort_unstable();
        format!(
            "{{\"label\":\"{}\",\"batches\":{},\"total_ms\":{:.3},\"p50_us\":{:.1},\"p99_us\":{:.1},\"max_us\":{:.1},\"compactions\":{},\"final_triples\":{},\"pooled_batches\":{},\"inline_batches\":{},\"scoped_batches\":{}}}",
            self.label,
            self.per_batch.len(),
            self.total.as_secs_f64() * 1e3,
            percentile(&sorted, 0.50).as_secs_f64() * 1e6,
            percentile(&sorted, 0.99).as_secs_f64() * 1e6,
            sorted.last().copied().unwrap_or_default().as_secs_f64() * 1e6,
            self.compactions,
            self.final_len,
            self.pooled_batches,
            self.inline_batches,
            self.scoped_batches,
        )
    }
}

/// Synthetic uniform batches for the break-even sweep: `size` object
/// triples per batch over 8 predicates (spread across the shards by the
/// round-robin policy), fresh subjects every batch so every op is an
/// effective insert.
fn sweep_ontology() -> Ontology {
    let mut o = Ontology::new();
    for p in 0..8 {
        o.add_object_property(&format!("http://sweep.example/p{p}"));
    }
    o
}

fn sweep_stream(size: usize, batches: usize) -> Vec<StreamBatch> {
    (0..batches)
        .map(|b| StreamBatch {
            inserts: Graph::from_triples((0..size).map(|i| {
                Triple::new(
                    Term::iri(format!("http://sweep.example/s{b}_{i}")),
                    Term::iri(format!("http://sweep.example/p{}", i % 8)),
                    Term::iri(format!("http://sweep.example/o{}", i % 16)),
                )
            })),
            deletes: Graph::new(),
        })
        .collect()
}

/// Persistence trajectory: the v02 delta-aware save against the legacy
/// compact-then-dump shutdown, on a dirty store. Three v02 cells pin the
/// O(delta) claim: 4x the overlay must move the save time, 4x the
/// *baseline* must not (the baseline layer file is reused, not
/// rewritten). Every cell measures the steady state (the cold save that
/// writes the baseline file runs once, untimed).
#[allow(deprecated)] // the v01 compact-then-dump comparator
fn persistence_runs(onto: &Ontology) -> Vec<LatencyRun> {
    const SAVE_ITERS: usize = 12;
    const DUMP_ITERS: usize = 3;
    let root = std::env::temp_dir().join(format!("se-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Accumulated insert-only water graphs: the 1x and 4x baselines.
    let graph_of = |batches: usize| {
        let cfg = WaterConfig {
            stations: LAT_STATIONS,
            rounds: 1,
            anomaly_rate: 0.1,
            seed: 5,
        };
        let mut g = Graph::new();
        for b in generate_stream(&cfg, batches, batches) {
            for t in &b.inserts {
                g.insert(t.clone());
            }
        }
        g
    };
    // A dirty store: `ops` synthetic overlay inserts, compaction off.
    let build_dirty = |base: &Graph, ops: usize| {
        let mut h = HybridStore::build(onto, base)
            .unwrap()
            .with_policy(CompactionPolicy {
                max_overlay: usize::MAX,
            });
        for b in sweep_stream(ops, 1) {
            h.apply(&b.inserts, &b.deletes).unwrap();
        }
        h
    };

    let mut runs = Vec::new();
    let base1 = graph_of(40);
    let base4 = graph_of(160);
    let iters: Vec<usize> = (0..SAVE_ITERS).collect();
    for (label, base, ops) in [
        ("persist_v02_save_dirty", &base1, 512usize),
        ("persist_v02_save_4x_overlay", &base1, 2048),
        ("persist_v02_save_4x_baseline", &base4, 512),
    ] {
        let h = build_dirty(base, ops);
        let dir = root.join(label);
        h.save(&dir).unwrap(); // cold save writes the baseline file once
        let mut run = run_latency(label, &iters, |_| {
            let report = h.save(&dir).unwrap();
            assert_eq!(report.baseline_files_written, 0, "steady state");
        });
        run.final_len = se_core::TripleSource::len(&h);
        runs.push(run);
    }

    // The legacy shutdown: compact (full rebuild) + dump v01.
    {
        let h = build_dirty(&base1, 512);
        let path = root.join("legacy.v01");
        let iters: Vec<usize> = (0..DUMP_ITERS).collect();
        let mut run = run_latency("persist_v01_compact_then_dump", &iters, |_| {
            let mut doomed = h.clone();
            doomed.save_to_file(&path).unwrap();
        });
        run.final_len = se_core::TripleSource::len(&h);
        runs.push(run);
    }

    // Sharded manifest: steady-state save and a full load.
    {
        let mut h = ShardedHybridStore::build(onto, &base1, SHARDS)
            .unwrap()
            .with_policy(CompactionPolicy {
                max_overlay: usize::MAX,
            });
        for b in sweep_stream(512, 1) {
            h.apply(&b.inserts, &b.deletes).unwrap();
        }
        let dir = root.join("sharded");
        h.save(&dir).unwrap();
        let mut run = run_latency("persist_v02_sharded_save", &iters, |_| {
            h.save(&dir).unwrap();
        });
        run.take_sharded_stats(&h);
        runs.push(run);
        let load_iters: Vec<usize> = (0..4).collect();
        let mut run = run_latency("persist_v02_sharded_load", &load_iters, |_| {
            let back = ShardedHybridStore::load(&dir, onto).unwrap();
            std::hint::black_box(se_core::TripleSource::len(&back));
        });
        run.final_len = se_core::TripleSource::len(&h);
        runs.push(run);
    }

    // The headline claim, asserted: an O(delta) shutdown beats the
    // O(rebuild) one outright (the gap is orders of magnitude; equality
    // here would mean the baseline skip regressed).
    let per_save = |label: &str| {
        let r = runs.iter().find(|r| r.label == label).unwrap();
        r.total.as_secs_f64() / r.per_batch.len() as f64
    };
    assert!(
        per_save("persist_v02_save_dirty") < per_save("persist_v01_compact_then_dump"),
        "v02 O(delta) save must beat compact-then-dump"
    );

    let _ = std::fs::remove_dir_all(&root);
    runs
}

/// WAL sync-policy sweep: per-batch `apply` latency with a write-ahead
/// log attached under each [`SyncPolicy`], against the same stream with
/// no log at all. The spread is the durability price list — per-batch
/// fsync (an ack is durable) down to OS-buffered (fastest, crash loss
/// up to the flush interval) — to weigh against `persist_v02_save_dirty`,
/// the checkpoint-granular alternative the WAL rides on top of.
fn wal_runs(onto: &Ontology) -> Vec<LatencyRun> {
    const WAL_BATCH_OPS: usize = 64;
    const WAL_BATCHES: usize = 48;
    let root = std::env::temp_dir().join(format!("se-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let batches = sweep_stream(WAL_BATCH_OPS, WAL_BATCHES);

    let cells: [(&str, Option<SyncPolicy>); 4] = [
        ("wal_append_off", None),
        ("wal_append_every_batch", Some(SyncPolicy::EveryBatch)),
        ("wal_append_every_8", Some(SyncPolicy::EveryN(8))),
        ("wal_append_os_buffered", Some(SyncPolicy::OsBuffered)),
    ];
    let mut runs = Vec::new();
    for (label, sync) in cells {
        let mut h = HybridStore::build(onto, &Graph::new())
            .unwrap()
            .with_policy(CompactionPolicy {
                max_overlay: usize::MAX,
            });
        if let Some(sync) = sync {
            let dir = root.join(label);
            h.attach_wal(
                &dir,
                WalConfig {
                    sync,
                    ..WalConfig::default()
                },
            )
            .unwrap();
        }
        let mut run = run_latency(label, &batches, |b| {
            h.apply(&b.inserts, &b.deletes).unwrap();
        });
        run.final_len = se_core::TripleSource::len(&h);
        run.inline_batches = batches.len();
        runs.push(run);
    }
    let _ = std::fs::remove_dir_all(&root);
    runs
}

/// One sweep cell: the given ingest mode over `size`-op batches, no
/// compaction (isolates routing + overlay insertion + hand-off cost).
fn sweep_run(onto: &Ontology, mode: IngestMode, mode_name: &str, size: usize) -> LatencyRun {
    let batches = sweep_stream(size, SWEEP_BATCHES);
    let mut store = ShardedHybridStore::build(onto, &Graph::new(), SHARDS)
        .unwrap()
        .with_policy(CompactionPolicy {
            max_overlay: usize::MAX,
        })
        .with_ingest_mode(mode);
    let mut run = run_latency(&format!("sweep_{mode_name}_{size}"), &batches, |b| {
        store.apply(&b.inserts, &b.deletes).unwrap();
    });
    run.take_sharded_stats(&store);
    run
}

/// The continuous-query section: registered queries × store size,
/// differential delta evaluation against full re-evaluation.
const CQ_LIVE_BATCHES: usize = 24;
const CQ_PRELOAD_BATCHES: usize = 48;

/// `n` incremental-eligible continuous queries (pure constant-predicate
/// BGPs) over the water vocabulary, cycling 8 distinct shapes — single
/// scans, two-pattern joins, and a DISTINCT projection.
fn continuous_queries(n: usize) -> Vec<String> {
    const SHAPES: [&str; 8] = [
        "SELECT ?s ?o WHERE { ?s sosa:observes ?o }",
        "SELECT ?s ?o WHERE { ?s sosa:hosts ?o }",
        "SELECT ?o ?r WHERE { ?o sosa:hasResult ?r }",
        "SELECT ?o ?t WHERE { ?o sosa:resultTime ?t }",
        "SELECT ?st ?obs WHERE { ?st sosa:hosts ?sen . ?sen sosa:observes ?obs }",
        "SELECT ?sen ?res WHERE { ?sen sosa:observes ?obs . ?obs sosa:hasResult ?res }",
        "SELECT ?obs ?t WHERE { ?obs sosa:hasResult ?res . ?obs sosa:resultTime ?t }",
        "SELECT DISTINCT ?sen WHERE { ?sen sosa:observes ?obs }",
    ];
    (0..n)
        .map(|i| {
            format!(
                "PREFIX sosa: <http://www.w3.org/ns/sosa/> {}",
                SHAPES[i % SHAPES.len()]
            )
        })
        .collect()
}

/// One continuous-query cell: `nq` registered queries riding `live`
/// small batches on top of a `preload`ed store. `incremental` keeps the
/// registry's differential strategy; otherwise every query is demoted to
/// full re-evaluation (`force_full`) — the per-batch O(store) model the
/// delta path replaces. Seeding runs untimed, so the timed region is
/// the steady state. Eval counters ride the JSON's pooled/inline slots.
fn continuous_run(
    onto: &Ontology,
    label: &str,
    preload: &[StreamBatch],
    live: &[StreamBatch],
    nq: usize,
    incremental: bool,
) -> LatencyRun {
    let store = ShardedHybridStore::build(onto, &Graph::new(), SHARDS)
        .unwrap()
        .with_policy(CompactionPolicy { max_overlay: 4096 });
    let mut session = StreamSession::new(store);
    for b in preload {
        session.apply_batch(&b.inserts, &b.deletes).unwrap();
    }
    for (i, q) in continuous_queries(nq).iter().enumerate() {
        let id = format!("q{i}");
        session
            .register_query(&id, q, QueryOptions::default())
            .unwrap();
        if !incremental {
            assert!(session.registry_mut().force_full(&id));
        }
    }
    // Steady state pushes changes, not full sets — don't bill the delta
    // path for materializing answers nobody asked for.
    session.registry_mut().set_emit_full(false);
    let (seed, steady) = live.split_first().unwrap();
    session.apply_batch(&seed.inserts, &seed.deletes).unwrap();
    let mut run = run_latency(label, steady, |b| {
        session.apply_batch(&b.inserts, &b.deletes).unwrap();
    });
    let stats = session.stream_stats();
    run.pooled_batches = stats.incremental_evals as usize;
    run.inline_batches = stats.full_evals as usize;
    run.compactions = session.store().stats().compactions;
    run.final_len = se_core::TripleSource::len(session.store());
    run
}

/// The continuous-query trajectory: {4, 16} queries × {small, heavy}
/// store, incremental vs forced-full, over the same live stream of
/// small batches. Asserts the headline claim: at 16 queries on the
/// heavy store, differential evaluation beats per-batch full
/// re-evaluation by at least 5x.
fn continuous_runs(onto: &Ontology) -> Vec<LatencyRun> {
    let preload_cfg = WaterConfig {
        stations: LAT_STATIONS,
        rounds: 1,
        anomaly_rate: 0.15,
        seed: 33,
    };
    // Wide retention: the preload is insert-only bulk, so the heavy
    // store dwarfs each live batch and O(store) vs O(delta) separates.
    let preload = generate_stream(&preload_cfg, CQ_PRELOAD_BATCHES, CQ_PRELOAD_BATCHES);
    let live_cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.15,
        seed: 41,
    };
    // A short retention window keeps expiry deletions in the deltas.
    let live = generate_stream(&live_cfg, CQ_LIVE_BATCHES, 3);

    let mut runs = Vec::new();
    for (store_label, preload) in [("small_store", &[][..]), ("heavy_store", &preload[..])] {
        for nq in [4usize, 16] {
            for (mode, incremental) in [("incremental", true), ("full", false)] {
                runs.push(continuous_run(
                    onto,
                    &format!("continuous_{mode}_{nq}q_{store_label}"),
                    preload,
                    &live,
                    nq,
                    incremental,
                ));
            }
        }
    }

    let total = |label: &str| {
        runs.iter()
            .find(|r| r.label == label)
            .unwrap()
            .total
            .as_secs_f64()
    };
    let win =
        total("continuous_full_16q_heavy_store") / total("continuous_incremental_16q_heavy_store");
    assert!(
        win >= 5.0,
        "differential evaluation must beat full re-evaluation by >=5x \
         at 16 queries on the heavy store (got {win:.2}x)"
    );
    runs
}

/// The server section: 16 concurrent TCP writers (group commit) against
/// 16 clients' worth of serial single-client applies.
const SRV_WRITERS: usize = 16;
const SRV_ROUNDS: usize = 16;
const SRV_OPS: usize = 8;
const SRV_READER_QUERIES: usize = 200;

/// Writer `k`'s round-`r` batch: disjoint per-writer IRIs, so concurrent
/// group commit and the serial replay converge on the same store.
fn server_batch(k: usize, r: usize) -> Graph {
    Graph::from_triples((0..SRV_OPS).map(|i| {
        Triple::new(
            Term::iri(format!("http://srv.example/w{k}_s{r}_{i}")),
            Term::iri(format!("http://srv.example/p{}", i % 8)),
            Term::iri(format!("http://srv.example/o{}", i % 16)),
        )
    }))
}

/// A sharded store preloaded with enough water data that the registered
/// anomaly query has real per-batch re-evaluation cost — the cost group
/// commit amortizes across coalesced writers.
fn server_preloaded_store(onto: &Ontology) -> ShardedHybridStore {
    let cfg = WaterConfig {
        stations: LAT_STATIONS,
        rounds: 1,
        anomaly_rate: 0.15,
        seed: 9,
    };
    let mut store = ShardedHybridStore::build(onto, &Graph::new(), SHARDS)
        .unwrap()
        .with_policy(CompactionPolicy { max_overlay: 4096 });
    for b in generate_stream(&cfg, 16, 16) {
        store.apply(&b.inserts, &b.deletes).unwrap();
    }
    store
}

/// The se-server trajectory: group-commit ingest latency for 16
/// concurrent TCP writers vs the same 256 writes as per-client serial
/// applies (each paying its own continuous-query re-evaluation — the
/// regime the group-commit tick exists to amortize), plus snapshot-read
/// QPS at 1/4/16 concurrent readers while a writer keeps ingesting.
/// Asserts the headline claim: coalescing beats serial outright.
fn server_runs(onto: &Ontology) -> Vec<LatencyRun> {
    use se_server::{Client, Server, ServerConfig};

    let query = water_anomaly_query();
    let opts = QueryOptions::default();
    let mut runs = Vec::new();

    // ---- serial comparator: one apply (+ query re-eval) per client write.
    let mut session = StreamSession::new(server_preloaded_store(onto));
    session
        .register_query("anomaly", &query, opts.clone())
        .unwrap();
    let serial_batches: Vec<Graph> = (0..SRV_ROUNDS)
        .flat_map(|r| (0..SRV_WRITERS).map(move |k| server_batch(k, r)))
        .collect();
    let mut serial = run_latency("server_serial_16_clients", &serial_batches, |g| {
        session.apply_batch(g, &Graph::new()).unwrap();
    });
    serial.final_len = se_core::TripleSource::len(session.store());

    // ---- group commit: the same 256 writes from 16 concurrent clients.
    let server = Server::start(
        server_preloaded_store(onto),
        "127.0.0.1:0",
        ServerConfig {
            tick: Duration::from_millis(1),
        },
    )
    .unwrap();
    let addr = server.addr();
    let mut sub = Client::connect(addr).unwrap();
    sub.subscribe("anomaly", &query, &opts).unwrap();
    // Drain pushes so the subscriber's socket never backpressures the
    // writer; detached — it ends when the process does.
    std::thread::spawn(move || while sub.next_push().is_ok() {});

    let t0 = Instant::now();
    let handles: Vec<_> = (0..SRV_WRITERS)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut lats = Vec::with_capacity(SRV_ROUNDS);
                let mut max_coalesced = 0u32;
                for r in 0..SRV_ROUNDS {
                    let t = Instant::now();
                    let ack = c.ingest(&server_batch(k, r), &Graph::new()).unwrap();
                    lats.push(t.elapsed());
                    max_coalesced = max_coalesced.max(ack.coalesced);
                }
                (lats, max_coalesced)
            })
        })
        .collect();
    let mut per_batch = Vec::with_capacity(SRV_WRITERS * SRV_ROUNDS);
    let mut max_coalesced = 0u32;
    for h in handles {
        let (lats, mc) = h.join().unwrap();
        per_batch.extend(lats);
        max_coalesced = max_coalesced.max(mc);
    }
    let mut group_commit = LatencyRun {
        label: "server_group_commit_16_writers".into(),
        per_batch,
        total: t0.elapsed(),
        compactions: 0,
        final_len: serial.final_len,
        pooled_batches: 0,
        inline_batches: 0,
        scoped_batches: 0,
    };
    // Stash how hard the tick actually coalesced where the JSON has a
    // free slot (documented in docs/server.md).
    group_commit.pooled_batches = max_coalesced as usize;
    assert!(
        max_coalesced >= 2,
        "16 concurrent writers must coalesce at least once"
    );
    assert!(
        group_commit.total < serial.total,
        "group-commit coalescing ({:.1} ms) must beat {} serial single-client applies ({:.1} ms)",
        group_commit.total.as_secs_f64() * 1e3,
        SRV_WRITERS * SRV_ROUNDS,
        serial.total.as_secs_f64() * 1e3,
    );
    runs.push(serial);
    runs.push(group_commit);

    // ---- snapshot-read QPS at 1/4/16 readers during ingest.
    let read_query = "PREFIX sosa: <http://www.w3.org/ns/sosa/> \
                      SELECT ?s ?o WHERE { ?s sosa:observes ?o }";
    for readers in [1usize, 4, 16] {
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ingest_stop = std::sync::Arc::clone(&stop);
        let feeder = std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut r = SRV_ROUNDS; // fresh subjects beyond the commit phase
            while !ingest_stop.load(std::sync::atomic::Ordering::Acquire) {
                c.ingest(&server_batch(0, r), &Graph::new()).unwrap();
                r += 1;
            }
        });
        let t0 = Instant::now();
        let reader_handles: Vec<_> = (0..readers)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let mut lats = Vec::with_capacity(SRV_READER_QUERIES);
                    for _ in 0..SRV_READER_QUERIES {
                        let t = Instant::now();
                        c.query(read_query, &QueryOptions::default()).unwrap();
                        lats.push(t.elapsed());
                    }
                    lats
                })
            })
            .collect();
        let per_batch: Vec<Duration> = reader_handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let total = t0.elapsed();
        stop.store(true, std::sync::atomic::Ordering::Release);
        feeder.join().unwrap();
        runs.push(LatencyRun {
            label: format!("server_read_qps_{readers}_readers"),
            per_batch,
            total,
            compactions: 0,
            final_len: 0,
            pooled_batches: 0,
            inline_batches: 0,
            scoped_batches: 0,
        });
    }

    let mut closer = Client::connect(addr).unwrap();
    closer.shutdown().unwrap();
    server.join();
    runs
}

/// Replication section: epochs in the leader's WAL when a fresh
/// follower attaches (all served as records — the leader checkpoints at
/// epoch 0, before the first apply, so the log covers the full history).
const REPL_EPOCHS: usize = 256;
/// Fresh catch-ups per cell; each `per_batch` sample is one full
/// bootstrap-to-caught-up wall time over `REPL_EPOCHS` records.
const REPL_TRIALS: usize = 3;
/// Live ticks measured for the staleness cell.
const REPL_LIVE_ROUNDS: usize = 120;

/// The replication trajectory: a fresh follower replaying the leader's
/// full WAL tail over TCP (`replication_catchup` — records/s is
/// `pooled_batches / per-trial time`), against the same records applied
/// straight into a local session (`replication_local_replay`, the
/// comparator that cancels machine speed), plus `replication_staleness`:
/// commit-to-visible lag per leader tick, measured from the leader's
/// ingest ack until a STATS poll sees the follower at that epoch.
fn replication_runs(onto: &Ontology) -> Vec<LatencyRun> {
    use se_server::{Client, Replica, ReplicaConfig, Server, ServerConfig};

    let dir = std::env::temp_dir().join(format!("se_bench_repl_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let batches: Vec<Graph> = (0..REPL_EPOCHS)
        .map(|e| server_batch(e % SRV_WRITERS, e / SRV_WRITERS))
        .collect();

    // ---- comparator: the same records applied in-process — what
    // catch-up would cost with the frame shipping removed.
    let mut local_trials = Vec::with_capacity(REPL_TRIALS);
    let mut local_len = 0;
    for _ in 0..REPL_TRIALS {
        let store = ShardedHybridStore::build(onto, &Graph::new(), 2).unwrap();
        let mut session = StreamSession::new(store);
        let t = Instant::now();
        for b in &batches {
            session.apply_batch(b, &Graph::new()).unwrap();
        }
        local_trials.push(t.elapsed());
        local_len = se_core::TripleSource::len(session.store());
    }

    // ---- leader: WAL attached at epoch 0 (checkpointing the empty
    // store), then every epoch applied before the server starts — the
    // log covers the full history, so catch-up is pure record replay,
    // never a snapshot bootstrap.
    let mut store = ShardedHybridStore::build(onto, &Graph::new(), SHARDS).unwrap();
    store.attach_wal(&dir, WalConfig::default()).unwrap();
    for b in &batches {
        store.apply(b, &Graph::new()).unwrap();
    }
    let server = Server::start(
        store,
        "127.0.0.1:0",
        ServerConfig {
            tick: Duration::from_millis(1),
        },
    )
    .unwrap();
    let addr = server.addr();
    let mut leader = Client::connect(addr).unwrap();
    let target = leader.stats().unwrap().epoch;
    assert_eq!(target, REPL_EPOCHS as u64);

    // ---- catch-up: fresh followers, each bootstrapping from epoch 0.
    // The last one stays attached and feeds the staleness cell.
    let mut catchup_trials = Vec::with_capacity(REPL_TRIALS);
    let mut follower_len = 0u64;
    let mut live: Option<(Replica, Client)> = None;
    for trial in 0..REPL_TRIALS {
        let t = Instant::now();
        let replica = Replica::start(
            onto.clone(),
            addr,
            "127.0.0.1:0",
            ReplicaConfig {
                shards: 2,
                reconnect: Duration::from_millis(50),
            },
        )
        .unwrap();
        let mut follower = Client::connect(replica.addr()).unwrap();
        while follower.stats().unwrap().epoch < target {
            std::thread::yield_now();
        }
        catchup_trials.push(t.elapsed());
        follower_len = follower.stats().unwrap().triples;
        if trial + 1 == REPL_TRIALS {
            live = Some((replica, follower));
        } else {
            follower.shutdown().unwrap();
            replica.join();
        }
    }
    assert_eq!(
        follower_len as usize, local_len,
        "caught-up follower must converge on the local replay"
    );
    let ls = leader.stats().unwrap();
    assert_eq!(
        ls.repl_snapshots_served, 0,
        "a WAL covering epoch 0 must serve catch-up as records, not snapshots"
    );

    // ---- live staleness: one batch per round; the lag clock starts at
    // the leader's durable ack and stops when the follower's published
    // epoch covers it (each poll is a full STATS round trip, so the
    // samples include the cost a real monitor would pay to observe it).
    let (replica, mut follower) = live.expect("last catch-up trial keeps its follower");
    let mut lags = Vec::with_capacity(REPL_LIVE_ROUNDS);
    let t0 = Instant::now();
    for r in 0..REPL_LIVE_ROUNDS {
        let ack = leader
            .ingest(
                &server_batch(r % SRV_WRITERS, 100 + r / SRV_WRITERS),
                &Graph::new(),
            )
            .unwrap();
        let t = Instant::now();
        while follower.stats().unwrap().epoch < ack.epoch {
            std::thread::yield_now();
        }
        lags.push(t.elapsed());
    }
    let live_total = t0.elapsed();

    follower.shutdown().unwrap();
    replica.join();
    leader.shutdown().unwrap();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    vec![
        LatencyRun {
            label: "replication_local_replay".to_string(),
            per_batch: local_trials.clone(),
            total: local_trials.iter().sum(),
            compactions: 0,
            final_len: local_len,
            pooled_batches: REPL_EPOCHS,
            inline_batches: 0,
            scoped_batches: 0,
        },
        LatencyRun {
            label: "replication_catchup".to_string(),
            per_batch: catchup_trials.clone(),
            total: catchup_trials.iter().sum(),
            compactions: 0,
            final_len: follower_len as usize,
            pooled_batches: REPL_EPOCHS,
            inline_batches: 0,
            scoped_batches: 0,
        },
        LatencyRun {
            label: "replication_staleness".to_string(),
            per_batch: lags,
            total: live_total,
            compactions: 0,
            final_len: 0,
            pooled_batches: REPL_LIVE_ROUNDS,
            inline_batches: 0,
            scoped_batches: 0,
        },
    ]
}

/// Iterations per plan-cache cell: enough that the per-iteration µs
/// costs average cleanly, short enough to stay a footnote in the run.
const PLAN_ITERS: usize = 2000;

/// The plan-cache trajectory: the same point query executed cold
/// (parse + optimize + execute, every iteration) vs through a warmed
/// shared [`se_sparql::PlanCache`] (hash lookup + constant bind +
/// execute — zero parsing), plus the miss path on a fresh cache per
/// iteration (`plan_compile_vs_bind`: its gap to the cached cell is the
/// compile-vs-bind cost). Asserts the headline claim inline: cached
/// throughput ≥ 3x cold — machine-independent, both cells run the same
/// store on the same thread.
fn plan_cache_runs(onto: &Ontology) -> Vec<LatencyRun> {
    use se_sparql::PlanCache;

    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.15,
        seed: 7,
    };
    let mut store = HybridStore::build(onto, &Graph::new()).unwrap();
    // Two batches keep the answer set small: a serving-style point query
    // spends its time in parse + optimize + join ordering, not in the
    // scan — exactly the costs a cache hit skips.
    for b in generate_stream(&cfg, 2, 8) {
        store.apply(&b.inserts, &b.deletes).unwrap();
    }
    // A five-pattern chain off a bound subject, with two type checks.
    // The cold path re-parses and re-orders it per call and the
    // structural heuristic starts from the type patterns' scans; the
    // compiled plan starts from the bound subject's exact counts.
    let text = "PREFIX sosa: <http://www.w3.org/ns/sosa/> \
                SELECT ?sensor ?obs ?r WHERE { \
                <http://engie.example/station/1> sosa:hosts ?sensor . \
                ?sensor a sosa:Sensor . \
                ?sensor sosa:observes ?obs . \
                ?obs a sosa:Observation . \
                ?obs sosa:hasResult ?r }";
    let opts = QueryOptions::default();
    let iters = vec![(); PLAN_ITERS];

    let rows = se_sparql::execute_query(&store, text, &opts).unwrap().len();
    assert!(rows > 0, "the point query must have answers");

    let mut cold = run_latency("point_query_cold_qps", &iters, |_| {
        se_sparql::execute_query(&store, text, &opts).unwrap();
    });
    cold.final_len = rows;

    let cache = PlanCache::new();
    cache.execute_text(&store, text, &opts).unwrap(); // warm
    let mut cached = run_latency("point_query_cached_qps", &iters, |_| {
        cache.execute_text(&store, text, &opts).unwrap();
    });
    cached.final_len = rows;
    let stats = cache.stats();
    assert_eq!(stats.hits, PLAN_ITERS as u64, "every timed run must hit");
    assert_eq!(stats.misses, 1, "only the warm-up parsed");

    // Miss path, isolated: a fresh cache per iteration pays parse +
    // compile + insert on top of the same execution.
    let mut compile = run_latency("plan_compile_vs_bind", &iters, |_| {
        let fresh = PlanCache::new();
        fresh.execute_text(&store, text, &opts).unwrap();
    });
    compile.final_len = rows;

    // Compare medians, not totals: a single descheduling blip in one
    // cell (tens of a 2000-iteration run's total) would swing a total
    // ratio, while the median is immune to tail outliers.
    let median = |r: &LatencyRun| {
        let mut sorted = r.per_batch.clone();
        sorted.sort_unstable();
        percentile(&sorted, 0.5)
    };
    let (cold_med, cached_med) = (median(&cold), median(&cached));
    assert!(
        cold_med >= cached_med * 3,
        "cold parse+optimize+execute (median {:.2} us) must be >= 3x cached \
         plan execution (median {:.2} us)",
        cold_med.as_secs_f64() * 1e6,
        cached_med.as_secs_f64() * 1e6,
    );
    vec![cold, cached, compile]
}

/// Runs the heavy stream through (a) the single store with inline
/// compaction and (b) the sharded store with background compaction, under
/// a deliberately tight compaction policy so several rebuilds land inside
/// the run — the off-hot-path win shows up as the p99 gap — plus the
/// small-batch sweep (scoped-spawn vs persistent pool at 32/256/2048 ops
/// per batch) demonstrating the break-even shift. Results go to stdout
/// and `BENCH_stream_ingest.json`.
fn emit_latency_report(heavy: &[StreamBatch]) {
    let onto = water_ontology();
    let tight = CompactionPolicy { max_overlay: 768 };

    let mut single = HybridStore::build(&onto, &Graph::new())
        .unwrap()
        .with_policy(tight);
    let mut single_run = run_latency("single_inline_compaction", heavy, |b| {
        single.apply(&b.inserts, &b.deletes).unwrap();
    });
    single_run.compactions = single.stats().compactions;
    single_run.final_len = se_core::TripleSource::len(&single);
    single_run.inline_batches = heavy.len();

    let mut sharded = ShardedHybridStore::build(&onto, &Graph::new(), SHARDS)
        .unwrap()
        .with_policy(tight)
        .with_background_compaction(true);
    let mut sharded_run = run_latency("sharded_background_compaction", heavy, |b| {
        sharded.apply(&b.inserts, &b.deletes).unwrap();
    });
    sharded.flush_compactions();
    sharded_run.take_sharded_stats(&sharded);

    assert_eq!(
        single_run.final_len, sharded_run.final_len,
        "engines must agree on the final store"
    );

    // The break-even sweep: per size, per-batch scoped spawns (what the
    // legacy parallel path cost whenever it engaged), the single-threaded
    // inline path (what the legacy adaptive gate actually ran below
    // PARALLEL_MIN_OPS), and the persistent pool.
    let sweep_onto = sweep_ontology();
    let mut runs = vec![single_run, sharded_run];
    for size in SWEEP_SIZES {
        runs.push(sweep_run(&sweep_onto, IngestMode::Scoped, "scoped", size));
        runs.push(sweep_run(&sweep_onto, IngestMode::Inline, "inline", size));
        runs.push(sweep_run(&sweep_onto, IngestMode::Pooled, "pooled", size));
    }
    runs.extend(continuous_runs(&onto));
    runs.extend(persistence_runs(&onto));
    runs.extend(wal_runs(&sweep_onto));
    runs.extend(server_runs(&onto));
    runs.extend(replication_runs(&onto));
    runs.extend(plan_cache_runs(&onto));

    let entries: Vec<String> = runs.iter().map(LatencyRun::json).collect();
    let json = format!(
        "{{\"bench\":\"stream_ingest\",\"batches\":{},\"stations\":{},\"shards\":{},\"sweep_batches\":{},\"runs\":[{}]}}\n",
        heavy.len(),
        LAT_STATIONS,
        SHARDS,
        SWEEP_BATCHES,
        entries.join(","),
    );
    println!("{json}");
    // Anchor at the workspace root regardless of the harness CWD.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_stream_ingest.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("note: could not write {}: {e}", path.display());
    }
}

criterion_group!(benches, stream_ingest);
criterion_main!(benches);
