//! Write-path benchmarks for the incremental ingestion subsystem:
//! batch ingestion throughput and continuous-query latency on the hybrid
//! view, against the paper's original rebuild-per-instance model.

use criterion::{criterion_group, criterion_main, Criterion};
use se_core::SuccinctEdgeStore;
use se_datagen::water::{generate_stream, WaterConfig};
use se_datagen::workload::water_anomaly_query;
use se_ontology::water_ontology;
use se_rdf::{Graph, Triple};
use se_sparql::QueryOptions;
use se_stream::{CompactionPolicy, HybridStore, StreamSession};
use std::collections::BTreeSet;

const BATCHES: usize = 32;

fn stream_ingest(c: &mut Criterion) {
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 4,
        rounds: 1,
        anomaly_rate: 0.15,
        seed: 21,
    };
    let batches = generate_stream(&cfg, BATCHES, 4);
    let query = water_anomaly_query();

    let mut group = c.benchmark_group("stream_ingest");
    group.sample_size(10);

    // One long-lived hybrid session: ingest + continuous query per batch,
    // overlay compacting under a realistic policy.
    group.bench_function("hybrid_ingest_and_query_32_batches", |b| {
        b.iter(|| {
            let store = HybridStore::build(&onto, &Graph::new())
                .unwrap()
                .with_policy(CompactionPolicy { max_overlay: 1024 });
            let mut session = StreamSession::new(store);
            session
                .register_query("anomaly", &query, QueryOptions::default())
                .unwrap();
            let mut alerts = 0usize;
            for batch in &batches {
                let out = session.apply_batch(&batch.inserts, &batch.deletes).unwrap();
                alerts += out.results[0].results.len();
            }
            alerts
        })
    });

    // The paper's execution model: rebuild the whole store per batch.
    group.bench_function("full_rebuild_and_query_32_batches", |b| {
        b.iter(|| {
            let mut reference: BTreeSet<Triple> = BTreeSet::new();
            let mut alerts = 0usize;
            for batch in &batches {
                for t in &batch.deletes {
                    reference.remove(t);
                }
                for t in &batch.inserts {
                    reference.insert(t.clone());
                }
                let store = SuccinctEdgeStore::build(
                    &onto,
                    &Graph::from_triples(reference.iter().cloned()),
                )
                .unwrap();
                alerts += se_sparql::execute_query(&store, &query, &QueryOptions::default())
                    .unwrap()
                    .len();
            }
            alerts
        })
    });

    // Continuous-query latency on a view with a dirty (uncompacted)
    // overlay — the steady-state read cost between compactions.
    let mut dirty = HybridStore::build(&onto, &Graph::new())
        .unwrap()
        .with_policy(CompactionPolicy {
            max_overlay: usize::MAX,
        });
    for batch in &batches {
        dirty.apply(&batch.inserts, &batch.deletes).unwrap();
    }
    let parsed = se_sparql::parse_query(&query).unwrap();
    let opts = QueryOptions::default();
    group.bench_function("continuous_query_on_dirty_overlay", |b| {
        b.iter(|| {
            se_sparql::exec::execute(&dirty, &parsed, &opts)
                .unwrap()
                .len()
        })
    });

    // Compaction cost: fold the accumulated overlay into the baseline.
    group.bench_function("compaction_of_32_batch_overlay", |b| {
        b.iter(|| {
            let mut h = dirty.clone();
            h.compact().unwrap();
            h.baseline().len()
        })
    });

    group.finish();
}

criterion_group!(benches, stream_ingest);
criterion_main!(benches);
