//! Regenerates every table and figure of the paper's evaluation (§7.3) and
//! writes the results to `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p se-bench --release --bin tables            # everything
//! cargo run -p se-bench --release --bin tables -- --fast  # smaller medians
//! ```
//!
//! Experiments:
//!   Fig 8  — back-end construction time vs dataset size
//!   Fig 9  — dictionary size (persisted)
//!   Fig 10 — triple-storage size without dictionary (persisted)
//!   Fig 11 — RAM footprint of the in-memory systems
//!   Tab 1  — S,P,?o single-TP latency (S1–S5)
//!   Tab 2  — ?s,P,O single-TP latency (S6–S10)
//!   Fig 12 — ?s,P,?o single-TP latency (S11–S15)
//!   Fig 13 — multi-TP BGP latency (M1–M5)
//!   Fig 14 — RDFS-reasoning latency (R1–R6)
//!   Tab 3  — workload summary

use se_baselines::{DiskStore, MultiIndexStore};
use se_bench::{
    fmt_kib, fmt_ms, median_time, ontology_for, paper_datasets, prepared_query, BuiltSystem,
    System, DISK_POOL_PAGES,
};
use se_core::SuccinctEdgeStore;
use se_datagen::workload;
use se_ontology::lubm_ontology;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let query_runs = if fast { 3 } else { 7 };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "# EXPERIMENTS — paper vs measured\n\n\
         Reproduction of every table and figure of *Knowledge Graph Management on the\n\
         Edge* (EDBT 2021), §7. Absolute numbers differ from the paper (host machine\n\
         vs Raspberry Pi 3B+, reimplemented baselines vs JVM systems); the **shapes**\n\
         — who wins, by what factor, where crossovers fall — are the reproduction\n\
         target. Regenerate with `cargo run -p se-bench --release --bin tables`.\n"
    );

    eprintln!("generating datasets…");
    let ds = paper_datasets();

    construction_and_sizes(&mut report, &ds, fast);
    query_experiments(&mut report, &ds, query_runs);
    table3(&mut report, &ds);

    let path = std::path::Path::new("EXPERIMENTS.md");
    std::fs::write(path, &report).expect("EXPERIMENTS.md writable");
    eprintln!("wrote {}", path.display());
    println!("{report}");
}

// ---------------------------------------------------------------- Figs 8-11

fn construction_and_sizes(report: &mut String, ds: &se_bench::Datasets, fast: bool) {
    eprintln!("Figure 8–11: construction and sizes…");
    let mut fig8: Vec<Vec<String>> = Vec::new();
    let mut fig9: Vec<Vec<String>> = Vec::new();
    let mut fig10: Vec<Vec<String>> = Vec::new();
    let mut fig11: Vec<Vec<String>> = Vec::new();
    for (label, graph) in &ds.graphs {
        eprintln!("  dataset {label} ({} triples)", graph.len());
        let onto = ontology_for(label);
        let runs = if fast || graph.len() >= 50_000 { 1 } else { 3 };

        let t_se = median_time(runs, || {
            SuccinctEdgeStore::build(&onto, graph).expect("builds")
        });
        let t_mem = median_time(runs, || MultiIndexStore::build(graph));
        let t_disk = median_time(runs, || {
            let st = DiskStore::build_temp(graph, DISK_POOL_PAGES).expect("builds");
            st.destroy().expect("cleanup");
        });
        fig8.push(vec![
            label.clone(),
            fmt_ms(t_se),
            fmt_ms(t_mem),
            fmt_ms(t_disk),
        ]);

        let se = SuccinctEdgeStore::build(&onto, graph).expect("builds");
        let mem = MultiIndexStore::build(graph);
        let disk = DiskStore::build_temp(graph, DISK_POOL_PAGES).expect("builds");
        fig9.push(vec![
            label.clone(),
            fmt_kib(se.dictionary_serialized_size()),
            fmt_kib(mem.dictionary().serialized_size()),
            fmt_kib(disk.dictionary().serialized_size()),
        ]);
        fig10.push(vec![
            label.clone(),
            fmt_kib(se.triple_serialized_size()),
            fmt_kib(mem.triple_serialized_size()),
            fmt_kib(disk.triple_serialized_size()),
        ]);
        fig11.push(vec![
            label.clone(),
            fmt_kib(se.memory_footprint()),
            fmt_kib(mem.memory_footprint()),
        ]);
        disk.destroy().expect("cleanup");
    }
    push_table(
        report,
        "Figure 8 — back-end construction time (ms)",
        &["dataset", "SuccinctEdge", "MultiIndex(mem)", "DiskStore"],
        &fig8,
        "Paper shape: SuccinctEdge shows no advantage below ~1K triples but wins \
         increasingly as datasets grow (disk baselines pay per-page writes).",
    );
    push_table(
        report,
        "Figure 9 — dictionary size persisted to disk (KiB)",
        &["dataset", "SuccinctEdge", "MultiIndex(mem)", "DiskStore"],
        &fig9,
        "Paper shape: SuccinctEdge's dictionary is the smallest (about half of \
         RDF4Led's) because literals never enter the instance dictionary; the \
         baselines' full node tables are the largest.",
    );
    push_table(
        report,
        "Figure 10 — triple storage size without dictionary (KiB)",
        &["dataset", "SuccinctEdge", "MultiIndex(mem)", "DiskStore"],
        &fig10,
        "Paper shape: the SDS single index is much smaller than any multi-index \
         layout (3 permutations) and than page-granular disk storage.",
    );
    push_table(
        report,
        "Figure 11 — RAM footprint of the in-memory systems (KiB)",
        &["dataset", "SuccinctEdge", "MultiIndex(mem)"],
        &fig11,
        "Paper shape: the gap widens with data size — \"as the amount of data \
         grows, SuccinctEdge gradually shows its strength in saving memory space\".",
    );
}

// ------------------------------------------------------- Tables 1-2, Figs 12-14

fn query_experiments(report: &mut String, ds: &se_bench::Datasets, runs: usize) {
    eprintln!("query experiments on LUBM 100K…");
    let graph = &ds.lubm_full;
    let onto = lubm_ontology();
    let dicts = onto.encode().expect("encodes");
    eprintln!("  building systems…");
    let se = BuiltSystem::build(System::SuccinctEdge, &onto, graph);
    let mem = BuiltSystem::build(System::MemoryBaseline, &onto, graph);
    let disk = BuiltSystem::build(System::DiskBaseline, &onto, graph);
    let systems: [(&BuiltSystem, &str); 3] = [
        (&se, "SuccinctEdge"),
        (&mem, "MultiIndex(mem)"),
        (&disk, "DiskStore"),
    ];

    let groups: [(&str, &str, Vec<workload::WorkloadQuery>, &str); 5] = [
        (
            "Table 1 — single S,P,?o triple pattern (ms)",
            "S1–S5",
            workload::spo_queries(graph),
            "Paper shape: SuccinctEdge wins at every selectivity, up to an order of \
             magnitude on the most selective queries; the in-memory multi-index \
             closes in only on the largest answer sets.",
        ),
        (
            "Table 2 — single ?s,P,O triple pattern (ms)",
            "S6–S10",
            workload::po_queries(graph),
            "Paper shape: same trend as Table 1; the PSO layout makes ?s,P,O \
             slightly costlier than S,P,?o for SuccinctEdge, as §5.1 predicts.",
        ),
        (
            "Figure 12 — single ?s,P,?o triple pattern (ms)",
            "S11–S15",
            workload::p_queries(),
            "Paper shape: SuccinctEdge outperforms the disk systems everywhere and \
             the in-memory systems up to large answer sets, where they converge.",
        ),
        (
            "Figure 13 — multiple triple patterns / joins (ms)",
            "M1–M5",
            workload::m_queries(graph),
            "Paper shape: SuccinctEdge and the best baseline trade wins; the disk \
             store always loses. A single-index system staying level with \
             multi-index systems is the paper's success criterion here.",
        ),
        (
            "Figure 14 — queries with RDFS reasoning (ms)",
            "R1–R6",
            workload::r_queries(graph),
            "Paper shape: the more entailments, the bigger SuccinctEdge's lead — \
             LiteMat intervals vs the baselines' UNION rewriting (whose branch \
             count is listed). RDF4Led has no UNION support at all (no column).",
        ),
    ];

    for (title, ids, queries, note) in groups {
        eprintln!("  {ids}…");
        let mut rows = Vec::new();
        for wq in &queries {
            let mut row = vec![wq.id.clone()];
            let mut cardinality = 0usize;
            for (sys, _) in &systems {
                let t = median_time(runs, || sys.run(&wq.text, wq.reasoning, &dicts));
                let rs = sys.run(&wq.text, wq.reasoning, &dicts);
                cardinality = rs.len();
                row.push(fmt_ms(t));
            }
            let branches = if wq.reasoning {
                let (_, n) = se_baselines::rewrite_with_ontology(
                    &se_sparql::parse_query(&wq.text).expect("parses"),
                    &dicts,
                )
                .expect("rewrites");
                n.to_string()
            } else {
                "-".to_string()
            };
            row.insert(1, cardinality.to_string());
            row.push(branches);
            rows.push(row);
        }
        push_table(
            report,
            title,
            &[
                "query",
                "answers",
                "SuccinctEdge",
                "MultiIndex(mem)",
                "DiskStore",
                "UNION branches",
            ],
            &rows,
            note,
        );
    }

    // Cross-system agreement check, reported for transparency.
    eprintln!("  verifying answer-set agreement…");
    let mut agreed = 0usize;
    let mut total = 0usize;
    for wq in workload::full_workload(graph) {
        total += 1;
        let a = normalize(&se.run(&wq.text, wq.reasoning, &dicts));
        let b = normalize(&mem.run(&wq.text, wq.reasoning, &dicts));
        if a == b {
            agreed += 1;
        } else {
            eprintln!("    MISMATCH on {} ({} vs {})", wq.id, a.len(), b.len());
        }
    }
    let _ = writeln!(
        report,
        "\nAnswer-set agreement between SuccinctEdge (LiteMat) and the multi-index \
         baseline (UNION rewriting): **{agreed}/{total}** workload queries.\n"
    );

    disk.destroy();
    se.destroy();
    mem.destroy();
    let _ = prepared_query; // referenced for docs
}

fn normalize(rs: &se_sparql::ResultSet) -> Vec<String> {
    let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

// ------------------------------------------------------------------- Table 3

fn table3(report: &mut String, ds: &se_bench::Datasets) {
    let graph = &ds.lubm_full;
    let mut rows = Vec::new();
    for wq in workload::full_workload(graph) {
        let q = se_sparql::parse_query(&wq.text).expect("parses");
        let group = &q.groups[0];
        let n_tp = group.patterns.len();
        let mut joins = 0usize;
        let mut join_types = std::collections::BTreeSet::new();
        for i in 0..n_tp {
            for j in i + 1..n_tp {
                if let Some(jt) =
                    se_sparql::optimizer::join_type(&group.patterns[i], &group.patterns[j])
                {
                    joins += 1;
                    join_types.insert(format!("{jt:?}"));
                }
            }
        }
        rows.push(vec![
            wq.id.clone(),
            n_tp.to_string(),
            joins.to_string(),
            if join_types.is_empty() {
                "-".to_string()
            } else {
                join_types.into_iter().collect::<Vec<_>>().join(",")
            },
            if wq.reasoning { "Co/Pr" } else { "-" }.to_string(),
            wq.paper_cardinality
                .map_or("-".to_string(), |c| c.to_string()),
        ]);
    }
    push_table(
        report,
        "Table 3 — query summary",
        &[
            "query",
            "TPs",
            "joins",
            "join types",
            "reasoning",
            "paper cardinality",
        ],
        &rows,
        "Static summary of the reconstructed workload (paper Table 3). Join counts \
         are pairwise shared-variable edges of the query graph.",
    );
}

// -------------------------------------------------------------------- output

fn push_table(report: &mut String, title: &str, header: &[&str], rows: &[Vec<String>], note: &str) {
    let t0 = Instant::now();
    let _ = writeln!(report, "\n## {title}\n");
    let _ = writeln!(report, "| {} |", header.join(" | "));
    let _ = writeln!(
        report,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(report, "| {} |", row.join(" | "));
    }
    let _ = writeln!(report, "\n{note}\n");
    let _ = t0;
}
