//! # se-bench — shared harness code for the paper's experiments
//!
//! Dataset preparation, system-under-test wrappers and timing helpers used
//! by both the criterion benches (`benches/`) and the `tables` binary that
//! regenerates every table and figure of §7.

use se_baselines::{DiskStore, MultiIndexStore};
use se_core::SuccinctEdgeStore;
use se_datagen::{lubm, water};
use se_ontology::{lubm_ontology, water_ontology, Ontology};
use se_rdf::Graph;
use se_sparql::{QueryOptions, ResultSet};
use std::time::{Duration, Instant};

/// Buffer-pool frames given to the disk baseline (a small, edge-like cache).
pub const DISK_POOL_PAGES: usize = 256;

/// The five systems of the paper's §7 comparison matrix, mapped onto the
/// three architectures this reproduction implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// SuccinctEdge (this paper).
    SuccinctEdge,
    /// In-memory multi-index baseline (RDF4J / Jena-InMem analogue).
    MemoryBaseline,
    /// Disk-based baseline (Jena TDB2 / RDF4Led analogue).
    DiskBaseline,
}

impl System {
    /// Display name used in the generated tables.
    pub fn name(self) -> &'static str {
        match self {
            System::SuccinctEdge => "SuccinctEdge",
            System::MemoryBaseline => "MultiIndex (RDF4J/Jena-InMem analogue)",
            System::DiskBaseline => "DiskStore (JenaTDB/RDF4Led analogue)",
        }
    }

    /// All systems.
    pub fn all() -> [System; 3] {
        [
            System::SuccinctEdge,
            System::MemoryBaseline,
            System::DiskBaseline,
        ]
    }
}

/// The paper's datasets: water 250/500 plus LUBM subsets.
pub struct Datasets {
    /// `(label, graph)` in the paper's size order.
    pub graphs: Vec<(String, Graph)>,
    /// The full LUBM graph (queries run against this one).
    pub lubm_full: Graph,
}

/// Generates all eight datasets of §7.2.
pub fn paper_datasets() -> Datasets {
    let lubm_full = lubm::generate(1, 42);
    let mut graphs = vec![
        ("250".to_string(), water::generate(250, 7)),
        ("500".to_string(), water::generate(500, 7)),
    ];
    for &n in &[1_000usize, 5_000, 10_000, 25_000, 50_000] {
        let mut g = lubm_full.clone();
        g.truncate(n);
        graphs.push((format_size(n), g));
    }
    graphs.push(("100K".to_string(), lubm_full.clone()));
    Datasets { graphs, lubm_full }
}

fn format_size(n: usize) -> String {
    if n >= 1_000 {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}

/// The ontology matching a dataset label.
pub fn ontology_for(label: &str) -> Ontology {
    if label == "250" || label == "500" {
        water_ontology()
    } else {
        lubm_ontology()
    }
}

/// One built instance of a system under test.
pub enum BuiltSystem {
    SuccinctEdge(Box<SuccinctEdgeStore>),
    Memory(Box<MultiIndexStore>),
    Disk(Box<DiskStore>),
}

impl BuiltSystem {
    /// Builds `system` over `graph` (with `ontology` where applicable).
    pub fn build(system: System, ontology: &Ontology, graph: &Graph) -> Self {
        match system {
            System::SuccinctEdge => BuiltSystem::SuccinctEdge(Box::new(
                SuccinctEdgeStore::build(ontology, graph).expect("valid input graph"),
            )),
            System::MemoryBaseline => BuiltSystem::Memory(Box::new(MultiIndexStore::build(graph))),
            System::DiskBaseline => BuiltSystem::Disk(Box::new(
                DiskStore::build_temp(graph, DISK_POOL_PAGES).expect("temp file writable"),
            )),
        }
    }

    /// Runs a query. For reasoning queries, SuccinctEdge uses LiteMat
    /// intervals natively while the baselines execute the UNION rewriting
    /// (`rewritten`), mirroring §7.3.5.
    pub fn run(&self, text: &str, reasoning: bool, dicts: &se_litemat::Dictionaries) -> ResultSet {
        match self {
            BuiltSystem::SuccinctEdge(st) => {
                let opts = if reasoning {
                    QueryOptions::default()
                } else {
                    QueryOptions::without_reasoning()
                };
                se_sparql::execute_query(st.as_ref(), text, &opts).expect("workload query executes")
            }
            BuiltSystem::Memory(st) => {
                let q = prepared_query(text, reasoning, dicts);
                st.query(&q).expect("workload query executes")
            }
            BuiltSystem::Disk(st) => {
                let q = prepared_query(text, reasoning, dicts);
                st.query(&q).expect("workload query executes")
            }
        }
    }

    /// Cleans up disk artifacts.
    pub fn destroy(self) {
        if let BuiltSystem::Disk(st) = self {
            let _ = st.destroy();
        }
    }
}

/// Parses `text` and, for reasoning queries, applies the UNION rewriting.
pub fn prepared_query(
    text: &str,
    reasoning: bool,
    dicts: &se_litemat::Dictionaries,
) -> se_sparql::Query {
    let q = se_sparql::parse_query(text).expect("workload query parses");
    if reasoning {
        se_baselines::rewrite_with_ontology(&q, dicts)
            .expect("rewriting within branch cap")
            .0
    } else {
        q
    }
}

/// Median wall-clock duration of `runs` executions of `f`.
pub fn median_time<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let r = f();
            let dt = t0.elapsed();
            std::hint::black_box(r);
            dt
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Formats a duration in fractional milliseconds.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1_000.0)
}

/// Formats a byte count in KiB.
pub fn fmt_kib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_have_paper_sizes() {
        let ds = paper_datasets();
        let labels: Vec<&str> = ds.graphs.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec!["250", "500", "1K", "5K", "10K", "25K", "50K", "100K"]
        );
        assert_eq!(ds.graphs[0].1.len(), 250);
        assert_eq!(ds.graphs[2].1.len(), 1_000);
        assert!(ds.lubm_full.len() > 90_000);
    }

    #[test]
    fn all_systems_build_on_small_data() {
        let g = se_datagen::water::generate(250, 7);
        let onto = ontology_for("250");
        for sys in System::all() {
            let built = BuiltSystem::build(sys, &onto, &g);
            built.destroy();
        }
    }

    #[test]
    fn median_time_runs() {
        let d = median_time(5, || 1 + 1);
        assert!(d < Duration::from_secs(1));
    }
}
