//! Left-deep query execution over the SuccinctEdge store (§5.2).
//!
//! The executor walks the TP order produced by Algorithm 1, propagating
//! variable bindings from one TP to the next ("one of our joining
//! approaches amounts to propagate variable assignments from one TP to
//! another"). When the current intermediate relation is joined through its
//! subject against a fresh `(?s, p, ?o)` / `(?s, p, o)` pattern, the
//! PSO order of the layers makes both sides subject-sorted and a **merge
//! join** replaces the per-row lookups (§5.2, Figure 7); otherwise
//! index-nested-loop propagation is used.
//!
//! With reasoning enabled, constant concepts and properties evaluate
//! through their LiteMat intervals — no materialization, no UNION
//! rewriting.

use crate::ast::{GroupPattern, Query, TermPattern, TriplePattern};
use crate::error::QueryError;
use crate::expr::{eval, Env, EvalValue};
use crate::optimizer::order_patterns;
use se_core::{TripleSource, Value};
use se_litemat::IdInterval;
use se_rdf::Term;
use std::collections::{HashMap, HashSet};

/// Execution options (the ablation switches of the benchmark suite).
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// LiteMat interval reasoning over concept/property hierarchies
    /// (§5.2). On by default — reasoning is native in SuccinctEdge.
    pub reasoning: bool,
    /// Run Algorithm 1; when off, TPs execute in textual order.
    pub optimize: bool,
    /// Allow the merge-join fast path; when off, every join is
    /// binding-propagation (index nested loop).
    pub merge_join: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            reasoning: true,
            optimize: true,
            merge_join: true,
        }
    }
}

impl QueryOptions {
    /// Options with reasoning disabled (exact concept/property matching).
    pub fn without_reasoning() -> Self {
        Self {
            reasoning: false,
            ..Self::default()
        }
    }
}

/// A query answer set, decoded back to RDF terms.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Projected variable names.
    pub variables: Vec<String>,
    /// One row per solution; positions align with `variables`.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl ResultSet {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the answer set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The values of one projected variable across all rows.
    pub fn column(&self, var: &str) -> Option<Vec<&Option<Term>>> {
        let idx = self.variables.iter().position(|v| v == var)?;
        Some(self.rows.iter().map(|r| &r[idx]).collect())
    }
}

/// A slot of the intermediate relation: an encoded store value, or a term
/// computed by BIND (or seeded from a delta triple whose term no longer
/// resolves in the store — see `se-stream::incremental`).
#[derive(Debug, Clone)]
pub enum Slot {
    Enc(Value),
    Term(Term),
}

/// One row of the intermediate relation; positions follow the group's
/// column layout (see [`group_var_index`]).
pub type Row = Vec<Option<Slot>>;

/// Executes a parsed query.
pub fn execute<S: TripleSource + ?Sized>(
    store: &S,
    query: &Query,
    options: &QueryOptions,
) -> Result<ResultSet, QueryError> {
    let out_vars = query.output_variables();
    let mut rows: Vec<Vec<Option<Term>>> = Vec::new();
    for group in &query.groups {
        let group_rows = execute_group(store, group, options)?;
        // Project group rows onto the output variables.
        for (vars, row) in group_rows {
            let mut projected = Vec::with_capacity(out_vars.len());
            for v in &out_vars {
                let cell = vars
                    .get(v.as_str())
                    .and_then(|&i| row[i].as_ref())
                    .map(|slot| slot_to_term(store, slot));
                projected.push(cell);
            }
            rows.push(projected);
        }
    }
    if query.distinct {
        let mut seen = HashSet::new();
        rows.retain(|r| seen.insert(format!("{r:?}")));
    }
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }
    Ok(ResultSet {
        variables: out_vars,
        rows,
    })
}

/// Decodes one intermediate-relation slot back to an RDF term.
pub fn slot_to_term<S: TripleSource + ?Sized>(store: &S, slot: &Slot) -> Term {
    match slot {
        Slot::Enc(v) => store
            .value_to_term(*v)
            .unwrap_or_else(|| Term::literal("<dangling>")),
        Slot::Term(t) => t.clone(),
    }
}

type GroupRows<'a> = Vec<(HashMap<&'a str, usize>, Row)>;

/// The column layout of one group's intermediate relation: TP variables
/// in first-occurrence order, then BIND variables. Shared by the full
/// executor and `se-stream`'s incremental delta evaluator, so both build
/// rows with identical shapes.
pub fn group_var_index(group: &GroupPattern) -> HashMap<&str, usize> {
    let mut var_index: HashMap<&str, usize> = HashMap::new();
    for tp in &group.patterns {
        for v in tp.variables() {
            let next = var_index.len();
            var_index.entry(v).or_insert(next);
        }
    }
    for b in &group.binds {
        let next = var_index.len();
        var_index.entry(b.var.as_str()).or_insert(next);
    }
    var_index
}

/// Evaluates one group: BGP (ordered), then BINDs, then FILTERs.
fn execute_group<'a, S: TripleSource + ?Sized>(
    store: &S,
    group: &'a GroupPattern,
    options: &QueryOptions,
) -> Result<GroupRows<'a>, QueryError> {
    let var_index = group_var_index(group);
    let n_cols = var_index.len();

    // ---- BGP ---------------------------------------------------------------
    let order = if options.optimize {
        order_patterns(&group.patterns, store, options.reasoning)
    } else {
        (0..group.patterns.len()).collect()
    };
    let mut rows: Vec<Row> = vec![vec![None; n_cols]];
    for &tp_idx in &order {
        let tp = &group.patterns[tp_idx];
        rows = eval_pattern(store, tp, rows, &var_index, options)?;
        if rows.is_empty() {
            break;
        }
    }

    // ---- BIND (in order), then FILTER ---------------------------------------
    if !group.binds.is_empty() {
        for row in &mut rows {
            for b in &group.binds {
                let env = row_env(store, row, &var_index);
                if let Ok(v) = eval(&b.expr, &env) {
                    let col = var_index[b.var.as_str()];
                    row[col] = Some(Slot::Term(v.into_term()));
                }
            }
        }
    }
    for f in &group.filters {
        rows.retain(|row| {
            let env = row_env(store, row, &var_index);
            eval(f, &env).and_then(|v| v.truthy()).unwrap_or(false)
        });
    }
    Ok(rows.into_iter().map(|r| (var_index.clone(), r)).collect())
}

/// Builds the expression environment of one intermediate row — shared by
/// the interpreted executor and the compiled-IR executor (`crate::ir`),
/// so BIND/FILTER evaluate identically on both paths.
pub fn row_env<'a, S: TripleSource + ?Sized>(
    store: &S,
    row: &Row,
    var_index: &HashMap<&'a str, usize>,
) -> Env<'a> {
    let mut env = Env::new();
    for (&var, &col) in var_index {
        if let Some(slot) = &row[col] {
            env.insert(var, EvalValue::Term(slot_to_term(store, slot)));
        }
    }
    env
}

/// Resolved constant/bound position of a pattern during evaluation.
enum Pos {
    /// Bound to an encoded value.
    Enc(Value),
    /// Bound to a decoded term (from BIND or a query literal constant).
    Term(Term),
    /// Unbound variable at column `usize`.
    Free(usize),
    /// A constant that does not exist in the dictionaries: no match.
    NoMatch,
}

fn resolve_subject<S: TripleSource + ?Sized>(
    store: &S,
    pat: &TermPattern,
    row: &Row,
    vars: &HashMap<&str, usize>,
) -> Pos {
    match pat {
        TermPattern::Term(t) => match store.instance_id(t) {
            Some(id) => Pos::Enc(Value::Instance(id)),
            None => Pos::NoMatch,
        },
        TermPattern::Var(v) => {
            let col = vars[v.as_str()];
            match &row[col] {
                Some(Slot::Enc(val)) => Pos::Enc(*val),
                Some(Slot::Term(t)) => Pos::Term(t.clone()),
                None => Pos::Free(col),
            }
        }
    }
}

fn resolve_object<S: TripleSource + ?Sized>(
    store: &S,
    pat: &TermPattern,
    row: &Row,
    vars: &HashMap<&str, usize>,
) -> Pos {
    match pat {
        TermPattern::Term(t) => match t {
            Term::Literal(_) => Pos::Term(t.clone()),
            other => match store.instance_id(other) {
                Some(id) => Pos::Enc(Value::Instance(id)),
                None => Pos::NoMatch,
            },
        },
        TermPattern::Var(v) => {
            let col = vars[v.as_str()];
            match &row[col] {
                Some(Slot::Enc(val)) => Pos::Enc(*val),
                Some(Slot::Term(t)) => Pos::Term(t.clone()),
                None => Pos::Free(col),
            }
        }
    }
}

/// Subject position as an instance id, if it denotes one.
fn pos_subject_id<S: TripleSource + ?Sized>(store: &S, pos: &Pos) -> Option<u64> {
    match pos {
        Pos::Enc(Value::Instance(id)) => Some(*id),
        Pos::Term(t) if t.is_resource() => store.instance_id(t),
        _ => None,
    }
}

/// How a constant predicate evaluates.
pub enum PSpec {
    /// One property id.
    Exact(u64),
    /// A LiteMat subproperty interval.
    Interval(IdInterval),
    /// The IRI resolves to nothing: the pattern matches no triple.
    NoMatch,
}

/// Resolves a constant predicate IRI: its LiteMat interval with reasoning
/// on, its exact id with reasoning off.
pub fn predicate_spec<S: TripleSource + ?Sized>(store: &S, iri: &str, reasoning: bool) -> PSpec {
    if reasoning {
        match store.property_interval(iri) {
            Some(iv) if iv.is_singleton() => PSpec::Exact(iv.lower),
            Some(iv) => PSpec::Interval(iv),
            None => PSpec::NoMatch,
        }
    } else {
        match store.property_id(iri) {
            Some(id) => PSpec::Exact(id),
            None => PSpec::NoMatch,
        }
    }
}

/// Resolves a constant concept IRI to the id interval it matches: the
/// LiteMat subclass interval with reasoning on, a singleton otherwise.
pub fn concept_spec<S: TripleSource + ?Sized>(
    store: &S,
    iri: &str,
    reasoning: bool,
) -> Option<IdInterval> {
    if reasoning {
        store.concept_interval(iri)
    } else {
        store.concept_id(iri).map(|id| IdInterval {
            lower: id,
            upper: id + 1,
        })
    }
}

/// Joins one triple pattern against the store, propagating the bindings
/// of `rows` (index nested loop, or a merge join when the fast-path
/// conditions of §5.2 hold). This is the pattern-matching entry point the
/// incremental evaluator reuses to extend delta-seeded partial rows.
pub fn eval_pattern<S: TripleSource + ?Sized>(
    store: &S,
    tp: &TriplePattern,
    rows: Vec<Row>,
    vars: &HashMap<&str, usize>,
    options: &QueryOptions,
) -> Result<Vec<Row>, QueryError> {
    let TermPattern::Term(Term::Iri(p_iri)) = &tp.predicate else {
        return Err(QueryError::Unsupported(
            "variable predicates are outside SuccinctEdge's target fragment (§5.1)".to_string(),
        ));
    };
    if tp.is_type_pattern() {
        return eval_type_pattern(store, tp, rows, vars, options);
    }
    let spec = predicate_spec(store, p_iri, options.reasoning);
    if matches!(spec, PSpec::NoMatch) {
        return Ok(Vec::new());
    }

    // Merge-join fast path (§5.2): subject var bound in all rows, exact
    // predicate, free or constant object.
    if options.merge_join && rows.len() >= 16 {
        if let (PSpec::Exact(p), TermPattern::Var(sv)) = (&spec, &tp.subject) {
            let s_col = vars[sv.as_str()];
            let all_bound_enc = rows
                .iter()
                .all(|r| matches!(r[s_col], Some(Slot::Enc(Value::Instance(_)))));
            if all_bound_enc {
                return Ok(merge_join_subject(store, *p, rows, s_col, &tp.object, vars));
            }
        }
    }

    // Binding propagation (index nested loop).
    let mut out = Vec::new();
    for row in rows {
        let s_pos = resolve_subject(store, &tp.subject, &row, vars);
        let o_pos = resolve_object(store, &tp.object, &row, vars);
        if matches!(s_pos, Pos::NoMatch) || matches!(o_pos, Pos::NoMatch) {
            continue;
        }
        match (&s_pos, &o_pos) {
            // (s, p, ?o)
            (Pos::Enc(_) | Pos::Term(_), Pos::Free(o_col)) => {
                let Some(s_id) = pos_subject_id(store, &s_pos) else {
                    continue;
                };
                let objects = match &spec {
                    PSpec::Exact(p) => store.objects(*p, s_id),
                    PSpec::Interval(iv) => store.objects_interval(*iv, s_id),
                    PSpec::NoMatch => unreachable!(),
                };
                for o in objects {
                    let mut new_row = row.clone();
                    new_row[*o_col] = Some(Slot::Enc(o));
                    out.push(new_row);
                }
            }
            // (?s, p, o)
            (Pos::Free(s_col), Pos::Enc(_) | Pos::Term(_)) => {
                let subjects = subjects_for(store, &spec, &o_pos);
                for s in subjects {
                    let mut new_row = row.clone();
                    new_row[*s_col] = Some(Slot::Enc(Value::Instance(s)));
                    out.push(new_row);
                }
            }
            // (?s, p, ?o)
            (Pos::Free(s_col), Pos::Free(o_col)) => {
                let pairs = match &spec {
                    PSpec::Exact(p) => store.scan_predicate(*p),
                    PSpec::Interval(iv) => store.scan_interval(*iv),
                    PSpec::NoMatch => unreachable!(),
                };
                let same_var = s_col == o_col;
                for (s, o) in pairs {
                    if same_var && !matches!(o, Value::Instance(oid) if oid == s) {
                        continue;
                    }
                    let mut new_row = row.clone();
                    new_row[*s_col] = Some(Slot::Enc(Value::Instance(s)));
                    new_row[*o_col] = Some(Slot::Enc(o));
                    out.push(new_row);
                }
            }
            // (s, p, o) — membership check.
            (Pos::Enc(_) | Pos::Term(_), Pos::Enc(_) | Pos::Term(_)) => {
                let Some(s_id) = pos_subject_id(store, &s_pos) else {
                    continue;
                };
                if check_membership(store, &spec, s_id, &o_pos) {
                    out.push(row);
                }
            }
            _ => {}
        }
    }
    Ok(out)
}

fn subjects_for<S: TripleSource + ?Sized>(store: &S, spec: &PSpec, o_pos: &Pos) -> Vec<u64> {
    match o_pos {
        Pos::Enc(v) => match spec {
            PSpec::Exact(p) => store.subjects(*p, v),
            PSpec::Interval(iv) => store.subjects_interval(*iv, v),
            PSpec::NoMatch => Vec::new(),
        },
        Pos::Term(Term::Literal(lit)) => match spec {
            PSpec::Exact(p) => store.subjects_by_literal(*p, lit),
            PSpec::Interval(iv) => store.subjects_by_literal_interval(*iv, lit),
            PSpec::NoMatch => Vec::new(),
        },
        Pos::Term(t) => match store.instance_id(t) {
            Some(id) => subjects_for(store, spec, &Pos::Enc(Value::Instance(id))),
            None => Vec::new(),
        },
        _ => Vec::new(),
    }
}

fn check_membership<S: TripleSource + ?Sized>(
    store: &S,
    spec: &PSpec,
    s_id: u64,
    o_pos: &Pos,
) -> bool {
    match o_pos {
        Pos::Enc(v) => match spec {
            PSpec::Exact(p) => store.contains(*p, s_id, v),
            PSpec::Interval(iv) => store
                .objects_interval(*iv, s_id)
                .iter()
                .any(|x| store.values_join(*x, *v)),
            PSpec::NoMatch => false,
        },
        Pos::Term(Term::Literal(lit)) => {
            let objects = match spec {
                PSpec::Exact(p) => store.objects(*p, s_id),
                PSpec::Interval(iv) => store.objects_interval(*iv, s_id),
                PSpec::NoMatch => return false,
            };
            objects.iter().any(|o| match o {
                Value::Literal(idx) => store.literal(*idx) == Some(lit),
                _ => false,
            })
        }
        Pos::Term(t) => match store.instance_id(t) {
            Some(id) => check_membership(store, spec, s_id, &Pos::Enc(Value::Instance(id))),
            None => false,
        },
        _ => false,
    }
}

/// Merge join (§5.2 Figure 7): both the intermediate relation (sorted here)
/// and the predicate's `(s, o)` pairs (PSO order) are subject-sorted.
fn merge_join_subject<S: TripleSource + ?Sized>(
    store: &S,
    p: u64,
    rows: Vec<Row>,
    s_col: usize,
    object: &TermPattern,
    vars: &HashMap<&str, usize>,
) -> Vec<Row> {
    let mut indexed: Vec<(u64, Row)> = rows
        .into_iter()
        .filter_map(|r| match r[s_col] {
            Some(Slot::Enc(Value::Instance(id))) => Some((id, r)),
            _ => None,
        })
        .collect();
    indexed.sort_by_key(|(id, _)| *id);
    let pairs = store.scan_predicate(p); // subject-sorted by construction
    let mut out = Vec::new();
    let mut j = 0usize;
    for (s_id, row) in indexed {
        // Advance to the first pair with subject >= s_id.
        while j < pairs.len() && pairs[j].0 < s_id {
            j += 1;
        }
        let mut k = j;
        while k < pairs.len() && pairs[k].0 == s_id {
            let o = pairs[k].1;
            match object {
                TermPattern::Var(ov) => {
                    let o_col = vars[ov.as_str()];
                    match &row[o_col] {
                        None => {
                            let mut new_row = row.clone();
                            new_row[o_col] = Some(Slot::Enc(o));
                            out.push(new_row);
                        }
                        Some(Slot::Enc(bound)) => {
                            if store.values_join(*bound, o) {
                                out.push(row.clone());
                            }
                        }
                        Some(Slot::Term(t)) => {
                            if store.value_to_term(o).as_ref() == Some(t) {
                                out.push(row.clone());
                            }
                        }
                    }
                }
                TermPattern::Term(t) => {
                    let matches = match (t, o) {
                        (Term::Literal(lit), Value::Literal(idx)) => {
                            store.literal(idx) == Some(lit)
                        }
                        (other, Value::Instance(oid)) => store.instance_id(other) == Some(oid),
                        _ => false,
                    };
                    if matches {
                        out.push(row.clone());
                    }
                }
            }
            k += 1;
        }
        // NOTE: do not advance j past this subject run — several rows may
        // share the same subject id.
    }
    out
}

fn eval_type_pattern<S: TripleSource + ?Sized>(
    store: &S,
    tp: &TriplePattern,
    rows: Vec<Row>,
    vars: &HashMap<&str, usize>,
    options: &QueryOptions,
) -> Result<Vec<Row>, QueryError> {
    let mut out = Vec::new();
    for row in rows {
        let s_pos = resolve_subject(store, &tp.subject, &row, vars);
        if matches!(s_pos, Pos::NoMatch) {
            continue;
        }
        // Resolve the concept position.
        enum CPos {
            Interval(IdInterval),
            Free(usize),
            NoMatch,
        }
        let c_pos = match &tp.object {
            TermPattern::Term(Term::Iri(c)) => match concept_spec(store, c, options.reasoning) {
                Some(iv) => CPos::Interval(iv),
                None => CPos::NoMatch,
            },
            TermPattern::Term(_) => CPos::NoMatch,
            TermPattern::Var(v) => {
                let col = vars[v.as_str()];
                match &row[col] {
                    Some(Slot::Enc(Value::Concept(c))) => CPos::Interval(IdInterval {
                        lower: *c,
                        upper: *c + 1,
                    }),
                    Some(Slot::Term(Term::Iri(c))) => match concept_spec(store, c, false) {
                        Some(iv) => CPos::Interval(iv),
                        None => CPos::NoMatch,
                    },
                    Some(_) => CPos::NoMatch,
                    None => CPos::Free(col),
                }
            }
        };
        if matches!(c_pos, CPos::NoMatch) {
            continue;
        }
        match (&s_pos, c_pos) {
            // (?s, type, C)
            (Pos::Free(s_col), CPos::Interval(iv)) => {
                for s in store.subjects_of_concept_interval(iv) {
                    let mut new_row = row.clone();
                    new_row[*s_col] = Some(Slot::Enc(Value::Instance(s)));
                    out.push(new_row);
                }
            }
            // (s, type, C) — membership.
            (Pos::Enc(_) | Pos::Term(_), CPos::Interval(iv)) => {
                let Some(s_id) = pos_subject_id(store, &s_pos) else {
                    continue;
                };
                if store.has_type_in_interval(s_id, iv) {
                    out.push(row);
                }
            }
            // (s, type, ?c)
            (Pos::Enc(_) | Pos::Term(_), CPos::Free(c_col)) => {
                let Some(s_id) = pos_subject_id(store, &s_pos) else {
                    continue;
                };
                for c in store.concepts_of_subject(s_id) {
                    let mut new_row = row.clone();
                    new_row[c_col] = Some(Slot::Enc(Value::Concept(c)));
                    out.push(new_row);
                }
            }
            // (?s, type, ?c) — full scan of the RDFType store.
            (Pos::Free(s_col), CPos::Free(c_col)) => {
                for (s, c) in store.type_pairs() {
                    let mut new_row = row.clone();
                    new_row[*s_col] = Some(Slot::Enc(Value::Instance(s)));
                    new_row[c_col] = Some(Slot::Enc(Value::Concept(c)));
                    out.push(new_row);
                }
            }
            (Pos::NoMatch, _) | (_, CPos::NoMatch) => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_core::SuccinctEdgeStore;
    use se_ontology::Ontology;
    use se_rdf::{Graph, Literal, Triple};

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    /// A small social-graph store with a class hierarchy and a property
    /// hierarchy, shared by most executor tests.
    fn store() -> SuccinctEdgeStore {
        let mut o = Ontology::new();
        o.add_class("http://x/Employee", "http://x/Person");
        o.add_class("http://x/Manager", "http://x/Employee");
        o.add_property("http://x/worksFor", "http://x/memberOf");
        o.add_object_property("http://x/knows");
        o.add_datatype_property("http://x/age");
        o.add_datatype_property("http://x/name");
        let mut g = Graph::new();
        let t =
            |s: &str, p: &str, o: Term| Triple::new(iri(s), Term::iri(format!("http://x/{p}")), o);
        let ty =
            |s: &str, c: &str| Triple::new(iri(s), Term::iri(se_rdf::vocab::rdf::TYPE), iri(c));
        g.extend([
            ty("alice", "Manager"),
            ty("bob", "Employee"),
            ty("carol", "Person"),
            ty("org1", "Org"),
            t("alice", "worksFor", iri("org1")),
            t("bob", "memberOf", iri("org1")),
            t("alice", "knows", iri("bob")),
            t("bob", "knows", iri("carol")),
            t("carol", "knows", iri("alice")),
            t("alice", "age", Term::Literal(Literal::integer(42))),
            t("bob", "age", Term::Literal(Literal::integer(37))),
            t("alice", "name", Term::literal("Alice")),
            t("bob", "name", Term::literal("Bob")),
            t("carol", "name", Term::literal("Carol")),
        ]);
        SuccinctEdgeStore::build(&o, &g).unwrap()
    }

    fn run(store: &SuccinctEdgeStore, q: &str, opts: &QueryOptions) -> ResultSet {
        crate::execute_query(store, q, opts).unwrap()
    }

    fn names(rs: &ResultSet, var: &str) -> Vec<String> {
        let mut out: Vec<String> = rs
            .column(var)
            .unwrap()
            .iter()
            .map(|t| match t {
                Some(t) => t.str_value().to_string(),
                None => "UNBOUND".to_string(),
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn single_tp_spo() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?o WHERE { e:alice e:knows ?o }",
            &QueryOptions::default(),
        );
        assert_eq!(names(&rs, "o"), vec!["http://x/bob"]);
    }

    #[test]
    fn single_tp_pso() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:knows e:alice }",
            &QueryOptions::default(),
        );
        assert_eq!(names(&rs, "s"), vec!["http://x/carol"]);
    }

    #[test]
    fn single_tp_scan() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s ?o WHERE { ?s e:knows ?o }",
            &QueryOptions::default(),
        );
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn type_without_reasoning() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:Person }",
            &QueryOptions::without_reasoning(),
        );
        assert_eq!(names(&rs, "s"), vec!["http://x/carol"]);
    }

    #[test]
    fn type_with_reasoning() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:Person }",
            &QueryOptions::default(),
        );
        assert_eq!(
            names(&rs, "s"),
            vec!["http://x/alice", "http://x/bob", "http://x/carol"]
        );
    }

    #[test]
    fn property_reasoning() {
        let st = store();
        // memberOf ⊒ worksFor: with reasoning both alice and bob match.
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:memberOf e:org1 }",
            &QueryOptions::default(),
        );
        assert_eq!(names(&rs, "s"), vec!["http://x/alice", "http://x/bob"]);
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:memberOf e:org1 }",
            &QueryOptions::without_reasoning(),
        );
        assert_eq!(names(&rs, "s"), vec!["http://x/bob"]);
    }

    #[test]
    fn bgp_join() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s ?n WHERE { ?s e:knows e:bob . ?s e:name ?n }",
            &QueryOptions::default(),
        );
        assert_eq!(rs.len(), 1);
        assert_eq!(names(&rs, "n"), vec!["Alice"]);
    }

    #[test]
    fn star_join_with_type() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s ?o WHERE { ?s a e:Employee . ?s e:knows ?o }",
            &QueryOptions::default(),
        );
        // Employees (with reasoning): alice (Manager), bob. Both know someone.
        assert_eq!(names(&rs, "s"), vec!["http://x/alice", "http://x/bob"]);
    }

    #[test]
    fn filter_on_literal() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:age ?a . FILTER(?a > 40) }",
            &QueryOptions::default(),
        );
        assert_eq!(names(&rs, "s"), vec!["http://x/alice"]);
    }

    #[test]
    fn bind_and_filter() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s ?half WHERE { ?s e:age ?a . BIND(?a / 2 AS ?half) FILTER(?half > 20) }",
            &QueryOptions::default(),
        );
        assert_eq!(names(&rs, "s"), vec!["http://x/alice"]);
        assert_eq!(names(&rs, "half"), vec!["21"]);
    }

    #[test]
    fn literal_object_constant() {
        let st = store();
        let rs = run(
            &st,
            r#"PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:name "Bob" }"#,
            &QueryOptions::default(),
        );
        assert_eq!(names(&rs, "s"), vec!["http://x/bob"]);
    }

    #[test]
    fn membership_tp_keeps_or_drops_row() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:name ?n . e:alice e:knows e:bob }",
            &QueryOptions::default(),
        );
        assert_eq!(rs.len(), 3); // membership true: rows survive
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:name ?n . e:alice e:knows e:carol }",
            &QueryOptions::default(),
        );
        assert_eq!(rs.len(), 0); // membership false: all rows dropped
    }

    #[test]
    fn union_concatenates() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:Manager } UNION { ?s a e:Org }",
            &QueryOptions::without_reasoning(),
        );
        assert_eq!(names(&rs, "s"), vec!["http://x/alice", "http://x/org1"]);
    }

    #[test]
    fn distinct_and_limit() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT DISTINCT ?o WHERE { ?s e:memberOf ?o }",
            &QueryOptions::default(),
        );
        assert_eq!(rs.len(), 1);
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s ?o WHERE { ?s e:knows ?o } LIMIT 2",
            &QueryOptions::default(),
        );
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn unknown_terms_yield_empty() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?o WHERE { e:nobody e:knows ?o }",
            &QueryOptions::default(),
        );
        assert!(rs.is_empty());
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:unknownProp ?o }",
            &QueryOptions::default(),
        );
        assert!(rs.is_empty());
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:UnknownClass }",
            &QueryOptions::default(),
        );
        assert!(rs.is_empty());
    }

    #[test]
    fn variable_predicate_rejected() {
        let st = store();
        let err = crate::execute_query(
            &st,
            "SELECT ?p WHERE { <http://x/alice> ?p ?o }",
            &QueryOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::Unsupported(_)));
    }

    #[test]
    fn type_var_object() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT ?c WHERE { e:alice a ?c }",
            &QueryOptions::default(),
        );
        assert_eq!(names(&rs, "c"), vec!["http://x/Manager"]);
    }

    #[test]
    fn merge_join_equals_nested_loop() {
        let st = store();
        let q = "PREFIX e: <http://x/> SELECT ?s ?n WHERE { ?s e:knows ?o . ?s e:name ?n }";
        let with_merge = run(&st, q, &QueryOptions::default());
        let without = run(
            &st,
            q,
            &QueryOptions {
                merge_join: false,
                ..QueryOptions::default()
            },
        );
        let mut a = with_merge.rows.clone();
        let mut b = without.rows.clone();
        a.sort_by_key(|r| format!("{r:?}"));
        b.sort_by_key(|r| format!("{r:?}"));
        assert_eq!(a, b);
    }

    #[test]
    fn optimizer_on_off_same_answers() {
        let st = store();
        let q = "PREFIX e: <http://x/> SELECT ?s ?o ?n WHERE { ?s a e:Employee . ?s e:knows ?o . ?o e:name ?n }";
        let opt = run(&st, q, &QueryOptions::default());
        let unopt = run(
            &st,
            q,
            &QueryOptions {
                optimize: false,
                ..QueryOptions::default()
            },
        );
        let mut a = opt.rows.clone();
        let mut b = unopt.rows.clone();
        a.sort_by_key(|r| format!("{r:?}"));
        b.sort_by_key(|r| format!("{r:?}"));
        assert_eq!(a, b);
    }

    #[test]
    fn select_star() {
        let st = store();
        let rs = run(
            &st,
            "PREFIX e: <http://x/> SELECT * WHERE { ?s e:knows ?o }",
            &QueryOptions::default(),
        );
        assert_eq!(rs.variables, vec!["s", "o"]);
        assert_eq!(rs.len(), 3);
    }
}
