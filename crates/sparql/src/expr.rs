//! Expression evaluation for FILTER and BIND clauses.
//!
//! Follows SPARQL's semantics where it matters for the paper's workload:
//! `regex` is unanchored, `str()` returns the lexical form, numeric
//! comparisons coerce typed literals through their lexical form, and an
//! evaluation error inside a FILTER behaves as `false` (the row is
//! dropped) while an error inside a BIND leaves the variable unbound.

use crate::ast::{ArithOp, CmpOp, Expr, Func};
use se_rdf::{Literal, Term};
use se_regex::Regex;
use std::collections::HashMap;

/// A computed expression value.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalValue {
    /// An RDF term (IRI, blank node or literal).
    Term(Term),
    /// A plain number.
    Num(f64),
    /// A plain string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl EvalValue {
    /// SPARQL effective boolean value.
    pub fn truthy(&self) -> Result<bool, String> {
        match self {
            EvalValue::Bool(b) => Ok(*b),
            EvalValue::Num(n) => Ok(*n != 0.0 && !n.is_nan()),
            EvalValue::Str(s) => Ok(!s.is_empty()),
            EvalValue::Term(Term::Literal(lit)) => {
                if let Some(n) = lit.as_f64() {
                    Ok(n != 0.0)
                } else {
                    Ok(!lit.value.is_empty())
                }
            }
            EvalValue::Term(_) => Err("IRI has no effective boolean value".to_string()),
        }
    }

    /// Numeric interpretation, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            EvalValue::Num(n) => Some(*n),
            EvalValue::Term(Term::Literal(lit)) => lit.as_f64(),
            EvalValue::Str(s) => s.trim().parse().ok(),
            EvalValue::Bool(_) => None,
            EvalValue::Term(_) => None,
        }
    }

    /// SPARQL `str()`.
    pub fn str_value(&self) -> String {
        match self {
            EvalValue::Term(t) => t.str_value().to_string(),
            EvalValue::Num(n) => format_num(*n),
            EvalValue::Str(s) => s.clone(),
            EvalValue::Bool(b) => b.to_string(),
        }
    }

    /// Converts a computed value into an RDF term for projection / joins.
    pub fn into_term(self) -> Term {
        match self {
            EvalValue::Term(t) => t,
            EvalValue::Num(n) => Term::Literal(if n.fract() == 0.0 {
                Literal::integer(n as i64)
            } else {
                Literal::double(n)
            }),
            EvalValue::Str(s) => Term::literal(s),
            EvalValue::Bool(b) => {
                Term::Literal(Literal::typed(b.to_string(), se_rdf::vocab::xsd::BOOLEAN))
            }
        }
    }
}

fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// The variable environment an expression is evaluated against.
pub type Env<'a> = HashMap<&'a str, EvalValue>;

/// Evaluates `expr` under `env`. Unbound variables and type mismatches are
/// errors (`Err`), which FILTER maps to `false` and BIND to "unbound".
pub fn eval(expr: &Expr, env: &Env<'_>) -> Result<EvalValue, String> {
    match expr {
        Expr::Var(v) => env
            .get(v.as_str())
            .cloned()
            .ok_or_else(|| format!("unbound variable ?{v}")),
        Expr::Number(n) => Ok(EvalValue::Num(*n)),
        Expr::Str(s) => Ok(EvalValue::Str(s.clone())),
        Expr::Bool(b) => Ok(EvalValue::Bool(*b)),
        Expr::Iri(iri) => Ok(EvalValue::Term(Term::iri(iri.clone()))),
        Expr::Or(l, r) => {
            // SPARQL logical-or: true wins over error.
            let lv = eval(l, env).and_then(|v| v.truthy());
            let rv = eval(r, env).and_then(|v| v.truthy());
            match (lv, rv) {
                (Ok(true), _) | (_, Ok(true)) => Ok(EvalValue::Bool(true)),
                (Ok(false), Ok(false)) => Ok(EvalValue::Bool(false)),
                (Err(e), _) | (_, Err(e)) => Err(e),
            }
        }
        Expr::And(l, r) => {
            let lv = eval(l, env).and_then(|v| v.truthy());
            let rv = eval(r, env).and_then(|v| v.truthy());
            match (lv, rv) {
                (Ok(false), _) | (_, Ok(false)) => Ok(EvalValue::Bool(false)),
                (Ok(true), Ok(true)) => Ok(EvalValue::Bool(true)),
                (Err(e), _) | (_, Err(e)) => Err(e),
            }
        }
        Expr::Not(e) => Ok(EvalValue::Bool(!eval(e, env)?.truthy()?)),
        Expr::Cmp(op, l, r) => {
            let lv = eval(l, env)?;
            let rv = eval(r, env)?;
            Ok(EvalValue::Bool(compare(*op, &lv, &rv)?))
        }
        Expr::Arith(op, l, r) => {
            let lv = eval(l, env)?
                .as_num()
                .ok_or("non-numeric operand in arithmetic")?;
            let rv = eval(r, env)?
                .as_num()
                .ok_or("non-numeric operand in arithmetic")?;
            let out = match op {
                ArithOp::Add => lv + rv,
                ArithOp::Sub => lv - rv,
                ArithOp::Mul => lv * rv,
                ArithOp::Div => {
                    if rv == 0.0 {
                        return Err("division by zero".to_string());
                    }
                    lv / rv
                }
            };
            Ok(EvalValue::Num(out))
        }
        Expr::Neg(e) => {
            let v = eval(e, env)?
                .as_num()
                .ok_or("non-numeric operand in negation")?;
            Ok(EvalValue::Num(-v))
        }
        Expr::Call(func, args) => eval_call(*func, args, env),
    }
}

fn compare(op: CmpOp, l: &EvalValue, r: &EvalValue) -> Result<bool, String> {
    // Numeric comparison when both sides are numeric.
    if let (Some(a), Some(b)) = (l.as_num(), r.as_num()) {
        return Ok(match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        });
    }
    match op {
        CmpOp::Eq => Ok(eval_eq(l, r)),
        CmpOp::Ne => Ok(!eval_eq(l, r)),
        // Lexicographic comparison of string forms.
        _ => {
            let (a, b) = (l.str_value(), r.str_value());
            Ok(match op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            })
        }
    }
}

fn eval_eq(l: &EvalValue, r: &EvalValue) -> bool {
    match (l, r) {
        (EvalValue::Term(a), EvalValue::Term(b)) => a == b,
        (EvalValue::Bool(a), EvalValue::Bool(b)) => a == b,
        _ => l.str_value() == r.str_value(),
    }
}

fn eval_call(func: Func, args: &[Expr], env: &Env<'_>) -> Result<EvalValue, String> {
    let arity = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!(
                "{func:?} expects {n} arguments, got {}",
                args.len()
            ))
        }
    };
    match func {
        Func::Regex => {
            arity(2)?;
            let text = eval(&args[0], env)?.str_value();
            let pattern = eval(&args[1], env)?.str_value();
            let re = Regex::new(&pattern).map_err(|e| e.to_string())?;
            Ok(EvalValue::Bool(re.is_match(&text)))
        }
        Func::Str => {
            arity(1)?;
            Ok(EvalValue::Str(eval(&args[0], env)?.str_value()))
        }
        Func::If => {
            arity(3)?;
            if eval(&args[0], env)?.truthy()? {
                eval(&args[1], env)
            } else {
                eval(&args[2], env)
            }
        }
        Func::Bound => {
            arity(1)?;
            match &args[0] {
                Expr::Var(v) => Ok(EvalValue::Bool(env.contains_key(v.as_str()))),
                _ => Err("bound() expects a variable".to_string()),
            }
        }
        Func::Lang => {
            arity(1)?;
            match eval(&args[0], env)? {
                EvalValue::Term(Term::Literal(lit)) => Ok(EvalValue::Str(
                    lit.language.as_deref().unwrap_or("").to_string(),
                )),
                _ => Ok(EvalValue::Str(String::new())),
            }
        }
        Func::Datatype => {
            arity(1)?;
            match eval(&args[0], env)? {
                EvalValue::Term(Term::Literal(lit)) => {
                    let dt = lit
                        .datatype
                        .as_deref()
                        .unwrap_or(se_rdf::vocab::xsd::STRING)
                        .to_string();
                    Ok(EvalValue::Term(Term::iri(dt)))
                }
                _ => Err("datatype() expects a literal".to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn filter_expr(q: &str) -> Expr {
        parse_query(q).unwrap().groups[0].filters[0].clone()
    }

    fn env_with(vars: &[(&'static str, EvalValue)]) -> Env<'static> {
        vars.iter().cloned().collect()
    }

    #[test]
    fn numeric_comparison_with_literals() {
        let e =
            filter_expr("SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (?v < 3.00 || ?v > 4.50) }");
        let low = env_with(&[("v", EvalValue::Term(Term::Literal(Literal::double(2.5))))]);
        let mid = env_with(&[("v", EvalValue::Term(Term::Literal(Literal::double(4.0))))]);
        let high = env_with(&[("v", EvalValue::Term(Term::Literal(Literal::double(5.0))))]);
        assert_eq!(eval(&e, &low).unwrap(), EvalValue::Bool(true));
        assert_eq!(eval(&e, &mid).unwrap(), EvalValue::Bool(false));
        assert_eq!(eval(&e, &high).unwrap(), EvalValue::Bool(true));
    }

    #[test]
    fn regex_and_str_over_iri() {
        let e = filter_expr(
            r#"SELECT ?u WHERE { ?s <http://x/p> ?u . FILTER (regex(str(?u), "unit/BAR")) }"#,
        );
        let bar = env_with(&[(
            "u",
            EvalValue::Term(Term::iri("http://qudt.org/vocab/unit/BAR")),
        )]);
        let pa = env_with(&[(
            "u",
            EvalValue::Term(Term::iri("http://qudt.org/vocab/unit/HectoPA")),
        )]);
        assert_eq!(eval(&e, &bar).unwrap(), EvalValue::Bool(true));
        assert_eq!(eval(&e, &pa).unwrap(), EvalValue::Bool(false));
    }

    #[test]
    fn if_selects_branch() {
        let e = filter_expr(
            r#"SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (if(?v > 10, ?v / 1000, ?v) = 5) }"#,
        );
        // v = 5000 → 5000/1000 = 5 → true
        let big = env_with(&[("v", EvalValue::Num(5000.0))]);
        assert_eq!(eval(&e, &big).unwrap(), EvalValue::Bool(true));
        // v = 5 → 5 = 5 → true
        let small = env_with(&[("v", EvalValue::Num(5.0))]);
        assert_eq!(eval(&e, &small).unwrap(), EvalValue::Bool(true));
        // v = 7 → false
        let other = env_with(&[("v", EvalValue::Num(7.0))]);
        assert_eq!(eval(&e, &other).unwrap(), EvalValue::Bool(false));
    }

    #[test]
    fn unbound_variable_is_error() {
        let e = filter_expr("SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (?missing > 1) }");
        assert!(eval(&e, &env_with(&[])).is_err());
    }

    #[test]
    fn or_true_absorbs_error() {
        // SPARQL: (error || true) = true.
        let e =
            filter_expr("SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (?missing > 1 || ?v > 1) }");
        let env = env_with(&[("v", EvalValue::Num(5.0))]);
        assert_eq!(eval(&e, &env).unwrap(), EvalValue::Bool(true));
    }

    #[test]
    fn and_false_absorbs_error() {
        let e = filter_expr(
            "SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (?missing > 1 && ?v > 10) }",
        );
        let env = env_with(&[("v", EvalValue::Num(5.0))]);
        assert_eq!(eval(&e, &env).unwrap(), EvalValue::Bool(false));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = filter_expr("SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (?v / 0 > 1) }");
        assert!(eval(&e, &env_with(&[("v", EvalValue::Num(5.0))])).is_err());
    }

    #[test]
    fn bound_function() {
        let e = filter_expr("SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (bound(?v)) }");
        assert_eq!(
            eval(&e, &env_with(&[("v", EvalValue::Num(1.0))])).unwrap(),
            EvalValue::Bool(true)
        );
        assert_eq!(eval(&e, &env_with(&[])).unwrap(), EvalValue::Bool(false));
    }

    #[test]
    fn iri_equality() {
        let e =
            filter_expr("SELECT ?u WHERE { ?s <http://x/p> ?u . FILTER (?u = <http://x/target>) }");
        let yes = env_with(&[("u", EvalValue::Term(Term::iri("http://x/target")))]);
        let no = env_with(&[("u", EvalValue::Term(Term::iri("http://x/other")))]);
        assert_eq!(eval(&e, &yes).unwrap(), EvalValue::Bool(true));
        assert_eq!(eval(&e, &no).unwrap(), EvalValue::Bool(false));
    }

    #[test]
    fn arithmetic_precedence() {
        let e = filter_expr("SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (1 + 2 * 3 = 7) }");
        assert_eq!(eval(&e, &env_with(&[])).unwrap(), EvalValue::Bool(true));
    }

    #[test]
    fn negation_and_not() {
        let e = filter_expr("SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (!(-?v > 0)) }");
        assert_eq!(
            eval(&e, &env_with(&[("v", EvalValue::Num(5.0))])).unwrap(),
            EvalValue::Bool(true)
        );
    }

    #[test]
    fn into_term_roundtrip() {
        assert_eq!(
            EvalValue::Num(5.0).into_term(),
            Term::Literal(Literal::integer(5))
        );
        assert_eq!(
            EvalValue::Num(2.5).into_term(),
            Term::Literal(Literal::double(2.5))
        );
        assert_eq!(EvalValue::Str("x".into()).into_term(), Term::literal("x"));
    }

    #[test]
    fn lang_and_datatype() {
        let e = filter_expr(r#"SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (lang(?v) = "fr") }"#);
        let fr = env_with(&[(
            "v",
            EvalValue::Term(Term::Literal(Literal::lang("bonjour", "fr"))),
        )]);
        assert_eq!(eval(&e, &fr).unwrap(), EvalValue::Bool(true));
        let e = filter_expr(
            "SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (datatype(?v) = <http://www.w3.org/2001/XMLSchema#double>) }",
        );
        let d = env_with(&[("v", EvalValue::Term(Term::Literal(Literal::double(1.5))))]);
        assert_eq!(eval(&e, &d).unwrap(), EvalValue::Bool(true));
    }
}
