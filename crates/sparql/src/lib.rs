//! # se-sparql — SPARQL query processing for SuccinctEdge
//!
//! The query layer of the paper (§5): a SPARQL subset parser, the
//! heuristic + statistics join-order optimizer (Algorithm 1), and a
//! left-deep executor that translates triple patterns into the store's SDS
//! operations.
//!
//! Supported SPARQL: `PREFIX`, `SELECT` (with `*`, `DISTINCT`, `LIMIT`),
//! basic graph patterns with `;`/`,` continuations and the `a` keyword,
//! `FILTER`, `BIND (expr AS ?v)`, and top-level `UNION` of groups.
//! Expressions cover comparisons, boolean and arithmetic operators, and the
//! `regex`, `str`, `if`, `bound`, `lang`, `datatype` functions — everything
//! the paper's 26-query workload (Appendix A) and the motivating anomaly
//! query (§2) need.
//!
//! Reasoning (§5.2): with [`exec::QueryOptions`] reasoning enabled, every
//! constant concept/property is replaced by its LiteMat identifier interval
//! — a `[lowerBound, upperBound)` constraint computed with two bit shifts
//! and an addition — instead of being expanded into a UNION of rewritten
//! queries.

pub mod ast;
pub mod error;
pub mod exec;
pub mod expr;
pub mod optimizer;
pub mod parser;

pub use ast::{Query, TermPattern, TriplePattern};
pub use error::{QueryError, SparqlParseError};
pub use exec::{QueryOptions, ResultSet};
pub use parser::parse_query;

use se_core::TripleSource;

/// Parses and executes `query` against any [`TripleSource`] with `options`.
pub fn execute_query<S: TripleSource + ?Sized>(
    store: &S,
    query: &str,
    options: &QueryOptions,
) -> Result<ResultSet, QueryError> {
    let parsed = parse_query(query)?;
    exec::execute(store, &parsed, options)
}
