//! # se-sparql — SPARQL query processing for SuccinctEdge
//!
//! The query layer of the paper (§5): a SPARQL subset parser, the
//! heuristic + statistics join-order optimizer (Algorithm 1), and a
//! left-deep executor that translates triple patterns into the store's SDS
//! operations.
//!
//! Supported SPARQL: `PREFIX`, `SELECT` (with `*`, `DISTINCT`, `LIMIT`),
//! basic graph patterns with `;`/`,` continuations and the `a` keyword,
//! `FILTER`, `BIND (expr AS ?v)`, and top-level `UNION` of groups.
//! Expressions cover comparisons, boolean and arithmetic operators, and the
//! `regex`, `str`, `if`, `bound`, `lang`, `datatype` functions — everything
//! the paper's 26-query workload (Appendix A) and the motivating anomaly
//! query (§2) need.
//!
//! Reasoning (§5.2): with [`exec::QueryOptions`] reasoning enabled, every
//! constant concept/property is replaced by its LiteMat identifier interval
//! — a `[lowerBound, upperBound)` constraint computed with two bit shifts
//! and an addition — instead of being expanded into a UNION of rewritten
//! queries.

pub mod ast;
pub mod error;
pub mod exec;
pub mod expr;
pub mod ir;
pub mod optimizer;
pub mod parser;

pub use ast::{Query, TermPattern, TriplePattern};
pub use error::{QueryError, SparqlParseError};
pub use exec::{QueryOptions, ResultSet};
pub use ir::{CompiledPlan, PlanCache, PlanCacheConfig, PlanCacheStats, PlanTrace};
pub use parser::parse_query;

use se_core::TripleSource;

/// Parses and executes `query` against any [`TripleSource`] with `options`.
pub fn execute_query<S: TripleSource + ?Sized>(
    store: &S,
    query: &str,
    options: &QueryOptions,
) -> Result<ResultSet, QueryError> {
    let parsed = parse_query(query)?;
    exec::execute(store, &parsed, options)
}

/// [`execute_query`] through a compiled-plan cache: a repeated query
/// text (or a different query of an already-seen *shape*) skips
/// parse/optimize and binds its constants into the cached plan. The
/// embedded-caller entry point; servers and the continuous-query
/// registry hold their own shared [`PlanCache`].
pub fn execute_query_cached<S: TripleSource + ?Sized>(
    store: &S,
    query: &str,
    options: &QueryOptions,
    cache: &PlanCache,
) -> Result<ResultSet, QueryError> {
    cache.execute_text(store, query, options)
}
