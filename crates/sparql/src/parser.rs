//! Recursive-descent parser for the supported SPARQL fragment.
//!
//! Grammar (informal):
//!
//! ```text
//! query    := prologue SELECT (DISTINCT)? (vars | '*') WHERE? group (LIMIT n)?
//! prologue := (PREFIX name: <iri>)*
//! group    := '{' unit* '}' (UNION group)*
//! unit     := triples '.'? | FILTER '(' expr ')' | BIND '(' expr AS ?v ')'
//! triples  := term pred-obj (';' pred-obj)*
//! pred-obj := (term | 'a') term (',' term)*
//! ```
//!
//! Expressions use standard precedence: `||` < `&&` < comparisons <
//! additive < multiplicative < unary.

use crate::ast::{
    ArithOp, Bind, CmpOp, Expr, Func, GroupPattern, Query, TermPattern, TriplePattern,
};
use crate::error::SparqlParseError;
use se_rdf::{Literal, Term};
use std::collections::HashMap;

/// Parses a SPARQL SELECT query.
pub fn parse_query(input: &str) -> Result<Query, SparqlParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
    };
    p.parse_query()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    IriRef(String),
    PName(String, String),
    Var(String),
    Str(String),
    Num(f64),
    Ident(String), // keywords and bare identifiers (case preserved)
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Semi,
    Comma,
    Star,
    OrOr,
    AndAnd,
    Bang,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Slash,
    Caret2,
}

struct SpannedTok {
    tok: Tok,
    at: usize,
}

fn tokenize(input: &str) -> Result<Vec<SpannedTok>, SparqlParseError> {
    let chars: Vec<char> = input.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let err = |at: usize, m: &str| SparqlParseError {
        position: at,
        message: m.to_string(),
    };
    while i < chars.len() {
        let c = chars[i];
        let at = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(SpannedTok { tok: Tok::Le, at });
                    i += 2;
                    continue;
                }
                // IRI or less-than: an IRI ref has no whitespace before '>'.
                let mut j = i + 1;
                let mut iri = String::new();
                let mut ok = false;
                while j < chars.len() {
                    if chars[j] == '>' {
                        ok = true;
                        break;
                    }
                    if chars[j].is_whitespace() {
                        break;
                    }
                    iri.push(chars[j]);
                    j += 1;
                }
                if ok && iri.contains(':') {
                    toks.push(SpannedTok {
                        tok: Tok::IriRef(iri),
                        at,
                    });
                    i = j + 1;
                } else {
                    toks.push(SpannedTok { tok: Tok::Lt, at });
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(SpannedTok { tok: Tok::Ge, at });
                    i += 2;
                } else {
                    toks.push(SpannedTok { tok: Tok::Gt, at });
                    i += 1;
                }
            }
            '?' | '$' => {
                let mut j = i + 1;
                let mut name = String::new();
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    name.push(chars[j]);
                    j += 1;
                }
                if name.is_empty() {
                    return Err(err(at, "empty variable name"));
                }
                toks.push(SpannedTok {
                    tok: Tok::Var(name),
                    at,
                });
                i = j;
            }
            '"' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match chars.get(j) {
                        Some('"') => break,
                        Some('\\') => {
                            j += 1;
                            match chars.get(j) {
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some('r') => s.push('\r'),
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some(&c) => s.push(c),
                                None => return Err(err(at, "unterminated string")),
                            }
                            j += 1;
                        }
                        Some(&c) => {
                            s.push(c);
                            j += 1;
                        }
                        None => return Err(err(at, "unterminated string")),
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Str(s),
                    at,
                });
                i = j + 1;
            }
            '{' => {
                toks.push(SpannedTok {
                    tok: Tok::LBrace,
                    at,
                });
                i += 1;
            }
            '}' => {
                toks.push(SpannedTok {
                    tok: Tok::RBrace,
                    at,
                });
                i += 1;
            }
            '(' => {
                toks.push(SpannedTok {
                    tok: Tok::LParen,
                    at,
                });
                i += 1;
            }
            ')' => {
                toks.push(SpannedTok {
                    tok: Tok::RParen,
                    at,
                });
                i += 1;
            }
            ';' => {
                toks.push(SpannedTok { tok: Tok::Semi, at });
                i += 1;
            }
            ',' => {
                toks.push(SpannedTok {
                    tok: Tok::Comma,
                    at,
                });
                i += 1;
            }
            '*' => {
                toks.push(SpannedTok { tok: Tok::Star, at });
                i += 1;
            }
            '/' => {
                toks.push(SpannedTok {
                    tok: Tok::Slash,
                    at,
                });
                i += 1;
            }
            '+' => {
                toks.push(SpannedTok { tok: Tok::Plus, at });
                i += 1;
            }
            '-' => {
                toks.push(SpannedTok {
                    tok: Tok::Minus,
                    at,
                });
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(SpannedTok { tok: Tok::Ne, at });
                    i += 2;
                } else {
                    toks.push(SpannedTok { tok: Tok::Bang, at });
                    i += 1;
                }
            }
            '=' => {
                toks.push(SpannedTok { tok: Tok::Eq, at });
                i += 1;
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    toks.push(SpannedTok { tok: Tok::OrOr, at });
                    i += 2;
                } else {
                    return Err(err(at, "single '|' (expected '||')"));
                }
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    toks.push(SpannedTok {
                        tok: Tok::AndAnd,
                        at,
                    });
                    i += 2;
                } else {
                    return Err(err(at, "single '&' (expected '&&')"));
                }
            }
            '^' => {
                if chars.get(i + 1) == Some(&'^') {
                    toks.push(SpannedTok {
                        tok: Tok::Caret2,
                        at,
                    });
                    i += 2;
                } else {
                    return Err(err(at, "single '^' (expected '^^')"));
                }
            }
            '.' => {
                // A dot starting a number like `.5` is not supported; plain dot.
                toks.push(SpannedTok { tok: Tok::Dot, at });
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut text = String::new();
                let mut seen_dot = false;
                while j < chars.len() {
                    let d = chars[j];
                    if d.is_ascii_digit() {
                        text.push(d);
                        j += 1;
                    } else if d == '.'
                        && !seen_dot
                        && chars.get(j + 1).is_some_and(|c| c.is_ascii_digit())
                    {
                        seen_dot = true;
                        text.push(d);
                        j += 1;
                    } else {
                        break;
                    }
                }
                let value: f64 = text
                    .parse()
                    .map_err(|_| err(at, "malformed numeric literal"))?;
                toks.push(SpannedTok {
                    tok: Tok::Num(value),
                    at,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                // Identifier, keyword, or prefixed name.
                let mut j = i;
                let mut text = String::new();
                while j < chars.len()
                    && (chars[j].is_alphanumeric() || chars[j] == '_' || chars[j] == '-')
                {
                    text.push(chars[j]);
                    j += 1;
                }
                if chars.get(j) == Some(&':') {
                    // prefixed name: prefix ':' local
                    j += 1;
                    let mut local = String::new();
                    while j < chars.len()
                        && (chars[j].is_alphanumeric()
                            || chars[j] == '_'
                            || chars[j] == '-'
                            || (chars[j] == '.'
                                && chars
                                    .get(j + 1)
                                    .is_some_and(|c| c.is_alphanumeric() || *c == '_')))
                    {
                        local.push(chars[j]);
                        j += 1;
                    }
                    toks.push(SpannedTok {
                        tok: Tok::PName(text, local),
                        at,
                    });
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Ident(text),
                        at,
                    });
                }
                i = j;
            }
            other => return Err(err(at, &format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> SparqlParseError {
        SparqlParseError {
            position: self.tokens.get(self.pos).map_or(usize::MAX, |t| t.at),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.tokens.get(self.pos).map(|t| &t.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(id)) = self.peek() {
            if id.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlParseError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn parse_query(&mut self) -> Result<Query, SparqlParseError> {
        while self.keyword("PREFIX") {
            let Some(Tok::PName(prefix, local)) = self.bump().cloned() else {
                return Err(self.err("expected 'name:' after PREFIX"));
            };
            if !local.is_empty() {
                return Err(self.err("prefix declaration must end with ':'"));
            }
            let Some(Tok::IriRef(iri)) = self.bump().cloned() else {
                return Err(self.err("expected <iri> in PREFIX declaration"));
            };
            self.prefixes.insert(prefix, iri);
        }
        self.expect_keyword("SELECT")?;
        let distinct = self.keyword("DISTINCT");
        let mut select = Vec::new();
        if self.eat(&Tok::Star) {
            // SELECT * — leave `select` empty.
        } else {
            while let Some(Tok::Var(v)) = self.peek() {
                select.push(v.clone());
                self.pos += 1;
            }
            if select.is_empty() {
                return Err(self.err("expected '*' or at least one variable after SELECT"));
            }
        }
        let _ = self.keyword("WHERE");
        let mut groups = vec![self.parse_group()?];
        while self.keyword("UNION") {
            groups.push(self.parse_group()?);
        }
        let mut limit = None;
        if self.keyword("LIMIT") {
            let Some(Tok::Num(n)) = self.bump().cloned() else {
                return Err(self.err("expected a number after LIMIT"));
            };
            limit = Some(n as usize);
        }
        if self.pos != self.tokens.len() {
            return Err(self.err("unexpected trailing tokens"));
        }
        Ok(Query {
            select,
            distinct,
            limit,
            groups,
        })
    }

    fn parse_group(&mut self) -> Result<GroupPattern, SparqlParseError> {
        if !self.eat(&Tok::LBrace) {
            return Err(self.err("expected '{'"));
        }
        let mut group = GroupPattern::default();
        loop {
            if self.eat(&Tok::RBrace) {
                break;
            }
            if self.keyword("FILTER") {
                if !self.eat(&Tok::LParen) {
                    return Err(self.err("expected '(' after FILTER"));
                }
                let e = self.parse_expr()?;
                if !self.eat(&Tok::RParen) {
                    return Err(self.err("expected ')' closing FILTER"));
                }
                group.filters.push(e);
                let _ = self.eat(&Tok::Dot);
                continue;
            }
            if self.keyword("BIND") {
                if !self.eat(&Tok::LParen) {
                    return Err(self.err("expected '(' after BIND"));
                }
                let e = self.parse_expr()?;
                self.expect_keyword("AS")?;
                let Some(Tok::Var(v)) = self.bump().cloned() else {
                    return Err(self.err("expected variable after AS"));
                };
                if !self.eat(&Tok::RParen) {
                    return Err(self.err("expected ')' closing BIND"));
                }
                group.binds.push(Bind { expr: e, var: v });
                let _ = self.eat(&Tok::Dot);
                continue;
            }
            self.parse_triples_block(&mut group)?;
        }
        Ok(group)
    }

    /// One `subject pred obj (',' obj)* (';' pred obj ...)* '.'?` block.
    fn parse_triples_block(&mut self, group: &mut GroupPattern) -> Result<(), SparqlParseError> {
        let subject = self.parse_term_pattern()?;
        loop {
            let predicate = self.parse_predicate_pattern()?;
            loop {
                let object = self.parse_term_pattern()?;
                group.patterns.push(TriplePattern {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            if self.eat(&Tok::Semi) {
                // A dangling ';' before '.' or '}' is tolerated.
                if matches!(self.peek(), Some(Tok::Dot | Tok::RBrace)) {
                    let _ = self.eat(&Tok::Dot);
                    return Ok(());
                }
                continue;
            }
            let _ = self.eat(&Tok::Dot);
            return Ok(());
        }
    }

    fn parse_predicate_pattern(&mut self) -> Result<TermPattern, SparqlParseError> {
        if let Some(Tok::Ident(id)) = self.peek() {
            if id == "a" {
                self.pos += 1;
                return Ok(TermPattern::Term(Term::iri(se_rdf::vocab::rdf::TYPE)));
            }
        }
        self.parse_term_pattern()
    }

    fn parse_term_pattern(&mut self) -> Result<TermPattern, SparqlParseError> {
        match self.peek().cloned() {
            Some(Tok::Var(v)) => {
                self.pos += 1;
                Ok(TermPattern::Var(v))
            }
            Some(Tok::IriRef(iri)) => {
                self.pos += 1;
                Ok(TermPattern::Term(Term::iri(iri)))
            }
            Some(Tok::PName(prefix, local)) => {
                self.pos += 1;
                let iri = self.resolve_pname(&prefix, &local)?;
                Ok(TermPattern::Term(Term::iri(iri)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                // Optional ^^datatype
                if self.eat(&Tok::Caret2) {
                    let dt = match self.bump().cloned() {
                        Some(Tok::IriRef(iri)) => iri,
                        Some(Tok::PName(p, l)) => self.resolve_pname(&p, &l)?,
                        _ => return Err(self.err("expected datatype IRI after '^^'")),
                    };
                    return Ok(TermPattern::Term(Term::Literal(Literal::typed(s, dt))));
                }
                Ok(TermPattern::Term(Term::literal(s)))
            }
            Some(Tok::Num(n)) => {
                self.pos += 1;
                let lit = if n.fract() == 0.0 {
                    Literal::typed(format!("{}", n as i64), se_rdf::vocab::xsd::INTEGER)
                } else {
                    Literal::typed(format!("{n}"), se_rdf::vocab::xsd::DOUBLE)
                };
                Ok(TermPattern::Term(Term::Literal(lit)))
            }
            other => Err(self.err(format!("expected a term, got {other:?}"))),
        }
    }

    fn resolve_pname(&self, prefix: &str, local: &str) -> Result<String, SparqlParseError> {
        let ns = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| self.err(format!("undeclared prefix {prefix:?}")))?;
        Ok(format!("{ns}{local}"))
    }

    // -------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<Expr, SparqlParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SparqlParseError> {
        let mut left = self.parse_and()?;
        while self.eat(&Tok::OrOr) {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SparqlParseError> {
        let mut left = self.parse_cmp()?;
        while self.eat(&Tok::AndAnd) {
            let right = self.parse_cmp()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_cmp(&mut self) -> Result<Expr, SparqlParseError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::Cmp(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, SparqlParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            if self.eat(&Tok::Plus) {
                let right = self.parse_multiplicative()?;
                left = Expr::Arith(ArithOp::Add, Box::new(left), Box::new(right));
            } else if self.eat(&Tok::Minus) {
                let right = self.parse_multiplicative()?;
                left = Expr::Arith(ArithOp::Sub, Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, SparqlParseError> {
        let mut left = self.parse_unary()?;
        loop {
            if self.eat(&Tok::Star) {
                let right = self.parse_unary()?;
                left = Expr::Arith(ArithOp::Mul, Box::new(left), Box::new(right));
            } else if self.eat(&Tok::Slash) {
                let right = self.parse_unary()?;
                left = Expr::Arith(ArithOp::Div, Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, SparqlParseError> {
        if self.eat(&Tok::Bang) {
            return Ok(Expr::Not(Box::new(self.parse_unary()?)));
        }
        if self.eat(&Tok::Minus) {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, SparqlParseError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                if !self.eat(&Tok::RParen) {
                    return Err(self.err("expected ')'"));
                }
                Ok(e)
            }
            Some(Tok::Var(v)) => {
                self.pos += 1;
                Ok(Expr::Var(v))
            }
            Some(Tok::Num(n)) => {
                self.pos += 1;
                Ok(Expr::Number(n))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Tok::IriRef(iri)) => {
                self.pos += 1;
                Ok(Expr::Iri(iri))
            }
            Some(Tok::PName(prefix, local)) => {
                self.pos += 1;
                let iri = self.resolve_pname(&prefix, &local)?;
                Ok(Expr::Iri(iri))
            }
            Some(Tok::Ident(id)) => {
                self.pos += 1;
                if id.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Bool(true));
                }
                if id.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Bool(false));
                }
                let func = match id.to_ascii_lowercase().as_str() {
                    "regex" => Func::Regex,
                    "str" => Func::Str,
                    "if" => Func::If,
                    "bound" => Func::Bound,
                    "lang" => Func::Lang,
                    "datatype" => Func::Datatype,
                    other => return Err(self.err(format!("unknown function {other:?}"))),
                };
                if !self.eat(&Tok::LParen) {
                    return Err(self.err("expected '(' after function name"));
                }
                let mut args = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        args.push(self.parse_expr()?);
                        if self.eat(&Tok::RParen) {
                            break;
                        }
                        if !self.eat(&Tok::Comma) {
                            return Err(self.err("expected ',' or ')' in argument list"));
                        }
                    }
                }
                Ok(Expr::Call(func, args))
            }
            other => Err(self.err(format!("expected an expression, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TermPattern as TP;

    #[test]
    fn simple_select() {
        let q = parse_query("SELECT ?x WHERE { ?x <http://x/p> <http://x/o> . }").unwrap();
        assert_eq!(q.select, vec!["x"]);
        assert_eq!(q.groups.len(), 1);
        assert_eq!(q.groups[0].patterns.len(), 1);
        let tp = &q.groups[0].patterns[0];
        assert_eq!(tp.subject, TP::Var("x".into()));
        assert_eq!(tp.predicate, TP::Term(Term::iri("http://x/p")));
    }

    #[test]
    fn prefixes_and_a_keyword() {
        let q = parse_query("PREFIX ex: <http://x/> SELECT ?s WHERE { ?s a ex:C ; ex:p ?o . }")
            .unwrap();
        let tps = &q.groups[0].patterns;
        assert_eq!(tps.len(), 2);
        assert!(tps[0].is_type_pattern());
        assert_eq!(tps[0].object, TP::Term(Term::iri("http://x/C")));
        assert_eq!(tps[1].predicate, TP::Term(Term::iri("http://x/p")));
        assert_eq!(tps[1].subject, TP::Var("s".into()));
    }

    #[test]
    fn semicolon_and_comma() {
        let q = parse_query(
            "PREFIX e: <http://x/> SELECT * WHERE { ?s e:p ?a , ?b ; e:q ?c . ?t e:r ?d }",
        )
        .unwrap();
        assert_eq!(q.groups[0].patterns.len(), 4);
        assert!(q.select.is_empty()); // SELECT *
        assert_eq!(q.output_variables(), vec!["s", "a", "b", "c", "t", "d"]);
    }

    #[test]
    fn filter_expression() {
        let q =
            parse_query("SELECT ?v WHERE { ?s <http://x/p> ?v . FILTER (?v < 3.00 || ?v > 4.50) }")
                .unwrap();
        assert_eq!(q.groups[0].filters.len(), 1);
        match &q.groups[0].filters[0] {
            Expr::Or(l, r) => {
                assert!(matches!(**l, Expr::Cmp(CmpOp::Lt, _, _)));
                assert!(matches!(**r, Expr::Cmp(CmpOp::Gt, _, _)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn bind_with_nested_if_regex() {
        let q = parse_query(
            r#"SELECT ?newV WHERE {
                ?y <http://x/v> ?v1 .
                BIND(if(regex(str(?u1),"http://qudt.org/vocab/unit/BAR"),?v1,
                     if(regex(str(?u1),"http://qudt.org/vocab/unit/HectoPA"),?v1/1000,0)) as ?newV)
            }"#,
        )
        .unwrap();
        assert_eq!(q.groups[0].binds.len(), 1);
        assert_eq!(q.groups[0].binds[0].var, "newV");
        assert!(matches!(q.groups[0].binds[0].expr, Expr::Call(Func::If, _)));
    }

    #[test]
    fn union_groups() {
        let q =
            parse_query("PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:A } UNION { ?s a e:B }")
                .unwrap();
        assert_eq!(q.groups.len(), 2);
    }

    #[test]
    fn distinct_and_limit() {
        let q = parse_query("SELECT DISTINCT ?s WHERE { ?s <http://x/p> ?o } LIMIT 10").unwrap();
        assert!(q.distinct);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn literal_objects() {
        let q = parse_query(
            r#"SELECT ?s WHERE { ?s <http://x/p> "plain" . ?s <http://x/q> 42 . ?s <http://x/r> 3.5 . }"#,
        )
        .unwrap();
        let tps = &q.groups[0].patterns;
        assert_eq!(tps[0].object, TP::Term(Term::literal("plain")));
        assert_eq!(
            tps[1].object,
            TP::Term(Term::Literal(Literal::typed(
                "42",
                se_rdf::vocab::xsd::INTEGER
            )))
        );
        assert_eq!(
            tps[2].object,
            TP::Term(Term::Literal(Literal::typed(
                "3.5",
                se_rdf::vocab::xsd::DOUBLE
            )))
        );
    }

    #[test]
    fn typed_literal_object() {
        let q = parse_query(
            r#"SELECT ?s WHERE { ?s <http://x/p> "1"^^<http://www.w3.org/2001/XMLSchema#integer> }"#,
        )
        .unwrap();
        assert_eq!(
            q.groups[0].patterns[0].object,
            TP::Term(Term::Literal(Literal::typed(
                "1",
                se_rdf::vocab::xsd::INTEGER
            )))
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_query("select ?x where { ?x <http://x/p> ?y }").is_ok());
        assert!(parse_query("SELECT ?x WHERE { ?x <http://x/p> ?y . filter(bound(?y)) }").is_ok());
    }

    #[test]
    fn errors() {
        assert!(parse_query("FOO ?x WHERE { }").is_err());
        assert!(parse_query("SELECT WHERE { ?s ?p ?o }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x <http://x/p> }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ex:p ?y }").is_err()); // undeclared prefix
        assert!(parse_query("SELECT ?x WHERE { ?x <http://x/p> ?y ").is_err()); // unclosed brace
        assert!(parse_query("SELECT ?x WHERE { ?x <http://x/p> ?y } trailing").is_err());
    }

    #[test]
    fn motivating_example_query_parses() {
        // The full anomaly-detection query of §2 (with the FILTER after the
        // BIND it references, as printed in the paper).
        let q = parse_query(
            r#"
            PREFIX sosa: <http://www.w3.org/ns/sosa/>
            PREFIX qudt: <http://qudt.org/schema/qudt/>
            PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
            SELECT ?x ?s ?ts ?v1 WHERE {
                ?x a sosa:Platform ; sosa:hosts ?s .
                ?s sosa:observes ?o ; a sosa:Sensor .
                ?o sosa:hasResult ?y ; a sosa:Observation ; sosa:resultTime ?ts .
                ?y a sosa:Result ; qudt:numericValue ?v1 ; qudt:unit ?u1 .
                ?u1 a qudt:PressureUnit .
                FILTER (?newV < 3.00 || ?newV > 4.50)
                BIND(if(regex(str(?u1),"http://qudt.org/vocab/unit/BAR"),?v1,
                     if(regex(str(?u1),"http://qudt.org/vocab/unit/HectoPA"),?v1/1000,0)) as ?newV)
            }"#,
        )
        .unwrap();
        assert_eq!(q.groups[0].patterns.len(), 11);
        assert_eq!(q.groups[0].filters.len(), 1);
        assert_eq!(q.groups[0].binds.len(), 1);
        assert_eq!(q.select, vec!["x", "s", "ts", "v1"]);
    }
}
