//! The SPARQL abstract syntax tree.

use se_rdf::Term;
use std::fmt;

/// A position in a triple pattern: a variable or a constant term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermPattern {
    /// `?name` (without the question mark).
    Var(String),
    /// A constant IRI, blank node or literal.
    Term(Term),
}

impl TermPattern {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Term(_) => None,
        }
    }

    /// `true` for variables.
    pub fn is_var(&self) -> bool {
        matches!(self, TermPattern::Var(_))
    }
}

impl fmt::Display for TermPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermPattern::Var(v) => write!(f, "?{v}"),
            TermPattern::Term(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern (TP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    pub subject: TermPattern,
    pub predicate: TermPattern,
    pub object: TermPattern,
}

impl TriplePattern {
    /// `true` if the predicate is the constant `rdf:type`.
    pub fn is_type_pattern(&self) -> bool {
        matches!(
            &self.predicate,
            TermPattern::Term(Term::Iri(iri)) if &**iri == se_rdf::vocab::rdf::TYPE
        )
    }

    /// The variables of this pattern, in S, P, O order.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(TermPattern::as_var)
            .collect()
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// SPARQL expressions (the FILTER / BIND language).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `?x`
    Var(String),
    /// A numeric constant.
    Number(f64),
    /// A string constant.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// A constant IRI.
    Iri(String),
    /// `a || b`
    Or(Box<Expr>, Box<Expr>),
    /// `a && b`
    And(Box<Expr>, Box<Expr>),
    /// `!a`
    Not(Box<Expr>),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Built-in function call.
    Call(Func, Vec<Expr>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `regex(text, pattern)` — unanchored match.
    Regex,
    /// `str(term)` — lexical form.
    Str,
    /// `if(cond, then, else)`.
    If,
    /// `bound(?v)`.
    Bound,
    /// `lang(literal)`.
    Lang,
    /// `datatype(literal)`.
    Datatype,
}

/// A `BIND(expr AS ?v)` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Bind {
    pub expr: Expr,
    pub var: String,
}

/// One group graph pattern: a BGP plus its FILTERs and BINDs, in source
/// order (BINDs are applied in order, FILTERs after all BINDs — the
/// group-scope semantics SPARQL gives them).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupPattern {
    pub patterns: Vec<TriplePattern>,
    pub binds: Vec<Bind>,
    pub filters: Vec<Expr>,
}

impl GroupPattern {
    /// All variables appearing in triple patterns.
    pub fn tp_variables(&self) -> Vec<String> {
        let mut vars = Vec::new();
        for tp in &self.patterns {
            for v in tp.variables() {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.to_string());
                }
            }
        }
        vars
    }
}

/// A parsed SELECT query: one or more UNION-ed groups.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projected variables; empty means `SELECT *`.
    pub select: Vec<String>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// `LIMIT n`.
    pub limit: Option<usize>,
    /// UNION branches (a query without UNION has exactly one).
    pub groups: Vec<GroupPattern>,
}

impl Query {
    /// The output variable list: the explicit projection, or every variable
    /// of the first group for `SELECT *` (TP variables first, then BINDs).
    pub fn output_variables(&self) -> Vec<String> {
        if !self.select.is_empty() {
            return self.select.clone();
        }
        let Some(group) = self.groups.first() else {
            return Vec::new();
        };
        let mut vars = group.tp_variables();
        for b in &group.binds {
            if !vars.iter().any(|x| x == &b.var) {
                vars.push(b.var.clone());
            }
        }
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_pattern_accessors() {
        let v = TermPattern::Var("x".into());
        assert!(v.is_var());
        assert_eq!(v.as_var(), Some("x"));
        let t = TermPattern::Term(Term::iri("http://x/a"));
        assert!(!t.is_var());
        assert_eq!(t.as_var(), None);
    }

    #[test]
    fn type_pattern_detection() {
        let tp = TriplePattern {
            subject: TermPattern::Var("x".into()),
            predicate: TermPattern::Term(Term::iri(se_rdf::vocab::rdf::TYPE)),
            object: TermPattern::Term(Term::iri("http://x/C")),
        };
        assert!(tp.is_type_pattern());
        assert_eq!(tp.variables(), vec!["x"]);
    }

    #[test]
    fn output_variables_star() {
        let q = Query {
            select: vec![],
            distinct: false,
            limit: None,
            groups: vec![GroupPattern {
                patterns: vec![TriplePattern {
                    subject: TermPattern::Var("s".into()),
                    predicate: TermPattern::Term(Term::iri("http://x/p")),
                    object: TermPattern::Var("o".into()),
                }],
                binds: vec![Bind {
                    expr: Expr::Number(1.0),
                    var: "b".into(),
                }],
                filters: vec![],
            }],
        };
        assert_eq!(q.output_variables(), vec!["s", "o", "b"]);
    }
}
