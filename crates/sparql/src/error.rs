//! Query-layer errors.

use std::fmt;

/// A SPARQL syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlParseError {
    /// Byte offset into the query text.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SparqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SPARQL parse error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for SparqlParseError {}

/// Any error raised while answering a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query text is not valid (supported) SPARQL.
    Parse(SparqlParseError),
    /// A feature outside SuccinctEdge's target fragment, e.g. a variable in
    /// predicate position combined with `rdf:type` reasoning.
    Unsupported(String),
    /// An expression failed in a BIND (FILTER errors silently drop the row,
    /// as SPARQL prescribes).
    Expression(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Unsupported(m) => write!(f, "unsupported query feature: {m}"),
            QueryError::Expression(m) => write!(f, "expression error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<SparqlParseError> for QueryError {
    fn from(e: SparqlParseError) -> Self {
        QueryError::Parse(e)
    }
}
