//! Compiled query IR and the shape-keyed plan cache.
//!
//! A serving workload repeats a handful of query *shapes* millions of
//! times with only the constants changing. This module lowers a parsed
//! (and join-ordered) query into a [`CompiledPlan`] — a flat list of
//! [`PlanStep`]s the executor runs directly, without re-walking the AST
//! — and caches plans in a [`PlanCache`] keyed by the query's
//! *normalized shape*: constant subjects and non-`rdf:type` constant
//! objects are hollowed out into numbered slots, while predicates,
//! `rdf:type` concept objects, expressions and the SELECT/DISTINCT/LIMIT
//! clause stay structural (they change the plan, so they key it).
//!
//! Two cache levels serve the two consumers:
//!
//! - **text level** — `(query text, option bits)` maps straight to a
//!   plan plus its extracted constants, so a repeated QUERY frame skips
//!   tokenizing, parsing *and* optimizing entirely;
//! - **shape level** — the normalized shape maps to one shared
//!   [`CompiledPlan`]; queries that differ only in constants bind their
//!   own constants into the same plan.
//!
//! Join order is chosen at compile time by
//! [`order_patterns_by_cardinality`](crate::optimizer::order_patterns_by_cardinality)
//! from the O(1)-ish rank/select statistics the store answers
//! ([`estimate`](crate::optimizer::estimate)), instead of the
//! interpreted path's structural Heuristic-1 ordering. Because estimates
//! drift as the store ingests, each plan records the store epoch it was
//! costed at and is lazily **re-costed** (re-ordered, not re-parsed)
//! once [`PlanCache::set_epoch`] advances past a staleness threshold.
//!
//! Pattern matching itself is delegated to [`exec::eval_pattern`] — the
//! exact code the interpreted executor runs — so a compiled plan and the
//! interpreted `execute` agree on every answer by construction; the only
//! divergence a caller can observe is row *order* under `LIMIT`, where
//! either prefix is a valid SPARQL answer.

use crate::ast::{Expr, Query, TermPattern, TriplePattern};
use crate::error::QueryError;
use crate::exec::{
    eval_pattern, group_var_index, row_env, slot_to_term, QueryOptions, ResultSet, Row, Slot,
};
use crate::expr::eval;
use crate::optimizer::order_patterns_by_cardinality;
use crate::parser::parse_query;
use se_core::TripleSource;
use se_rdf::Term;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One step of a compiled plan. A plan is a flat `Vec<PlanStep>`; the
/// executor walks it once, threading a working row set through pattern /
/// bind / filter steps and an emitted (projected) row set through the
/// tail steps.
#[derive(Debug, Clone)]
pub enum PlanStep {
    /// Start a UNION branch: reset the working set to one all-unbound
    /// row of `n_cols` columns. `vars[i]` names column `i`.
    BeginGroup { n_cols: usize, vars: Vec<String> },
    /// Match one triple pattern — a scan when nothing is bound yet, a
    /// binding-propagation / merge-join extension afterwards. `tp` is a
    /// template: when `s_slot`/`o_slot` is set, that position is
    /// replaced by the caller's constant before matching (the hollowed
    /// slots of the normalized shape). Predicates and `rdf:type`
    /// concepts stay in the template and resolve to their LiteMat
    /// interval / exact id (`PSpec`) against the store at run time, so
    /// one cached plan serves every store generation. `src` is the
    /// pattern's textual index (introspection).
    Pattern {
        tp: TriplePattern,
        s_slot: Option<usize>,
        o_slot: Option<usize>,
        src: usize,
    },
    /// `BIND(expr AS ?v)` into column `col` of every working row.
    Bind { col: usize, expr: Expr },
    /// `FILTER(expr)`: retain the working rows where it is truthy.
    Filter { expr: Expr },
    /// Project the working rows onto the output variables and append
    /// them to the emitted set; `cols[i]` is the source column of output
    /// variable `i` (None: not bound by this branch).
    Project { cols: Vec<Option<usize>> },
    /// `SELECT DISTINCT`: drop duplicate emitted rows.
    Distinct,
    /// `LIMIT n`: truncate the emitted rows.
    Limit { n: usize },
}

/// A query compiled to a flat step list, shareable across every query of
/// the same shape (wrap in an `Arc`; all methods take `&self`).
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    shape: String,
    /// The source AST (first query compiled for this shape) — kept so a
    /// re-cost can re-order without re-parsing. Constants in it are
    /// irrelevant: hollowed positions are overwritten at bind time and
    /// cardinality estimates never look at them.
    query: Query,
    steps: Vec<PlanStep>,
    n_slots: usize,
    out_vars: Vec<String>,
    /// Per group: the textual pattern indices in execution order.
    orders: Vec<Vec<usize>>,
    compile_epoch: u64,
}

impl CompiledPlan {
    /// The normalized shape this plan was compiled from.
    pub fn shape(&self) -> &str {
        &self.shape
    }

    /// The flat step list.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Number of constant slots a caller must bind.
    pub fn n_constants(&self) -> usize {
        self.n_slots
    }

    /// The store epoch the join order was costed at.
    pub fn compile_epoch(&self) -> u64 {
        self.compile_epoch
    }

    /// Execution order of group `group`'s patterns, as textual indices —
    /// the introspection hook the ordering regression tests assert on.
    pub fn pattern_order(&self, group: usize) -> Option<&[usize]> {
        self.orders.get(group).map(Vec::as_slice)
    }
}

/// Per-pattern-step execution record (see [`PlanTrace`]).
#[derive(Debug, Clone)]
pub struct StepTrace {
    /// Textual index of the pattern within its group.
    pub src: usize,
    /// The bound pattern that was matched.
    pub pattern: String,
    /// Working rows fed into the step.
    pub rows_in: usize,
    /// Working rows after the step.
    pub rows_out: usize,
}

/// Execution trace of one compiled run: one entry per executed pattern
/// step, in execution order. `steps_examined` totals the intermediate
/// rows fed through joins — the machine-independent "did the narrow
/// interval run first" signal the ordering tests assert on.
#[derive(Debug, Clone, Default)]
pub struct PlanTrace {
    /// One record per executed pattern step.
    pub steps: Vec<StepTrace>,
}

impl PlanTrace {
    /// Total intermediate rows examined across all pattern steps.
    pub fn steps_examined(&self) -> usize {
        self.steps.iter().map(|s| s.rows_in).sum()
    }
}

/// Whether a pattern position is hollowed into a constant slot.
/// Subjects: every constant. Objects: constants except on `rdf:type`
/// patterns, whose concept drives the plan (its interval width is the
/// cardinality estimate) and therefore stays structural.
fn hollow_slots(tp: &TriplePattern) -> (bool, bool) {
    let s = matches!(tp.subject, TermPattern::Term(_));
    let o = !tp.is_type_pattern() && matches!(tp.object, TermPattern::Term(_));
    (s, o)
}

/// Computes a query's normalized shape string and extracts its hollowed
/// constants, in slot order (groups, then patterns textually, subject
/// before object). Two queries with equal shapes bind into the same
/// cached plan.
pub fn normalize(query: &Query) -> (String, Vec<Term>) {
    let mut shape = String::new();
    let mut consts = Vec::new();
    let _ = write!(
        shape,
        "select={:?} distinct={} limit={:?}",
        query.select, query.distinct, query.limit
    );
    for group in &query.groups {
        shape.push_str("|G");
        for tp in &group.patterns {
            let (hs, ho) = hollow_slots(tp);
            shape.push('{');
            if hs {
                let _ = write!(shape, "\u{a7}{}", consts.len());
                if let TermPattern::Term(t) = &tp.subject {
                    consts.push(t.clone());
                }
            } else {
                let _ = write!(shape, "{}", tp.subject);
            }
            let _ = write!(shape, " {} ", tp.predicate);
            if ho {
                let _ = write!(shape, "\u{a7}{}", consts.len());
                if let TermPattern::Term(t) = &tp.object {
                    consts.push(t.clone());
                }
            } else {
                let _ = write!(shape, "{}", tp.object);
            }
            shape.push('}');
        }
        for b in &group.binds {
            let _ = write!(shape, "B[?{}={:?}]", b.var, b.expr);
        }
        for f in &group.filters {
            let _ = write!(shape, "F[{f:?}]");
        }
    }
    (shape, consts)
}

/// Compiles a parsed query into a flat plan: join order from the store's
/// cardinality statistics (textual when `options.optimize` is off),
/// constants hollowed into slots, epoch recorded for lazy re-costing.
pub fn compile<S: TripleSource + ?Sized>(
    query: &Query,
    store: &S,
    options: &QueryOptions,
    epoch: u64,
) -> CompiledPlan {
    let (shape, _) = normalize(query);
    let out_vars = query.output_variables();
    let mut steps = Vec::new();
    let mut orders = Vec::new();
    let mut n_slots = 0usize;
    for group in &query.groups {
        // Slot numbering must mirror `normalize`: textual order, subject
        // before object.
        let mut s_slots = vec![None; group.patterns.len()];
        let mut o_slots = vec![None; group.patterns.len()];
        for (ti, tp) in group.patterns.iter().enumerate() {
            let (hs, ho) = hollow_slots(tp);
            if hs {
                s_slots[ti] = Some(n_slots);
                n_slots += 1;
            }
            if ho {
                o_slots[ti] = Some(n_slots);
                n_slots += 1;
            }
        }
        let var_index = group_var_index(group);
        let n_cols = var_index.len();
        let mut vars = vec![String::new(); n_cols];
        for (name, &i) in &var_index {
            vars[i] = (*name).to_string();
        }
        let order: Vec<usize> = if options.optimize {
            order_patterns_by_cardinality(&group.patterns, store, options.reasoning)
        } else {
            (0..group.patterns.len()).collect()
        };
        steps.push(PlanStep::BeginGroup { n_cols, vars });
        for &ti in &order {
            steps.push(PlanStep::Pattern {
                tp: group.patterns[ti].clone(),
                s_slot: s_slots[ti],
                o_slot: o_slots[ti],
                src: ti,
            });
        }
        orders.push(order);
        for b in &group.binds {
            steps.push(PlanStep::Bind {
                col: var_index[b.var.as_str()],
                expr: b.expr.clone(),
            });
        }
        for f in &group.filters {
            steps.push(PlanStep::Filter { expr: f.clone() });
        }
        steps.push(PlanStep::Project {
            cols: out_vars
                .iter()
                .map(|v| var_index.get(v.as_str()).copied())
                .collect(),
        });
    }
    if query.distinct {
        steps.push(PlanStep::Distinct);
    }
    if let Some(n) = query.limit {
        steps.push(PlanStep::Limit { n });
    }
    CompiledPlan {
        shape,
        query: query.clone(),
        steps,
        n_slots,
        out_vars,
        orders,
        compile_epoch: epoch,
    }
}

/// Runs a compiled plan with `consts` bound into its hollowed slots.
pub fn execute_plan<S: TripleSource + ?Sized>(
    store: &S,
    plan: &CompiledPlan,
    consts: &[Term],
    options: &QueryOptions,
) -> Result<ResultSet, QueryError> {
    execute_plan_inner(store, plan, consts, options, None)
}

/// [`execute_plan`], recording a per-step [`PlanTrace`].
pub fn execute_plan_traced<S: TripleSource + ?Sized>(
    store: &S,
    plan: &CompiledPlan,
    consts: &[Term],
    options: &QueryOptions,
    trace: &mut PlanTrace,
) -> Result<ResultSet, QueryError> {
    execute_plan_inner(store, plan, consts, options, Some(trace))
}

fn execute_plan_inner<S: TripleSource + ?Sized>(
    store: &S,
    plan: &CompiledPlan,
    consts: &[Term],
    options: &QueryOptions,
    mut trace: Option<&mut PlanTrace>,
) -> Result<ResultSet, QueryError> {
    if consts.len() != plan.n_slots {
        return Err(QueryError::Unsupported(format!(
            "plan expects {} bound constants, got {}",
            plan.n_slots,
            consts.len()
        )));
    }
    let mut emitted: Vec<Vec<Option<Term>>> = Vec::new();
    let mut work: Vec<Row> = Vec::new();
    let mut vars_map: HashMap<&str, usize> = HashMap::new();
    for step in &plan.steps {
        match step {
            PlanStep::BeginGroup { n_cols, vars } => {
                work = vec![vec![None; *n_cols]];
                vars_map = vars
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v.as_str(), i))
                    .collect();
            }
            PlanStep::Pattern {
                tp,
                s_slot,
                o_slot,
                src,
            } => {
                // An empty working set stays empty — mirrors the
                // interpreted executor's early break (in particular, a
                // later unsupported pattern is then never reached).
                if work.is_empty() {
                    continue;
                }
                let bound;
                let tp_ref = if s_slot.is_some() || o_slot.is_some() {
                    let mut t = tp.clone();
                    if let Some(k) = s_slot {
                        t.subject = TermPattern::Term(consts[*k].clone());
                    }
                    if let Some(k) = o_slot {
                        t.object = TermPattern::Term(consts[*k].clone());
                    }
                    bound = t;
                    &bound
                } else {
                    tp
                };
                let rows_in = work.len();
                work = eval_pattern(store, tp_ref, std::mem::take(&mut work), &vars_map, options)?;
                if let Some(tr) = trace.as_deref_mut() {
                    tr.steps.push(StepTrace {
                        src: *src,
                        pattern: tp_ref.to_string(),
                        rows_in,
                        rows_out: work.len(),
                    });
                }
            }
            PlanStep::Bind { col, expr } => {
                for row in &mut work {
                    let env = row_env(store, row, &vars_map);
                    if let Ok(v) = eval(expr, &env) {
                        row[*col] = Some(Slot::Term(v.into_term()));
                    }
                }
            }
            PlanStep::Filter { expr } => {
                work.retain(|row| {
                    let env = row_env(store, row, &vars_map);
                    eval(expr, &env).and_then(|v| v.truthy()).unwrap_or(false)
                });
            }
            PlanStep::Project { cols } => {
                for row in work.drain(..) {
                    emitted.push(
                        cols.iter()
                            .map(|c| {
                                c.and_then(|i| row[i].as_ref())
                                    .map(|slot| slot_to_term(store, slot))
                            })
                            .collect(),
                    );
                }
            }
            PlanStep::Distinct => {
                let mut seen = HashSet::new();
                emitted.retain(|r| seen.insert(format!("{r:?}")));
            }
            PlanStep::Limit { n } => emitted.truncate(*n),
        }
    }
    Ok(ResultSet {
        variables: plan.out_vars.clone(),
        rows: emitted,
    })
}

// ---------------------------------------------------------------- cache

/// Sizing and staleness policy of a [`PlanCache`].
#[derive(Debug, Clone)]
pub struct PlanCacheConfig {
    /// Maximum cached plans (shape level); least-recently-used beyond.
    pub max_plans: usize,
    /// Maximum cached text entries; least-recently-used beyond.
    pub max_texts: usize,
    /// A plan whose compile epoch lags [`PlanCache::set_epoch`] by more
    /// than this many epochs is re-costed (re-ordered from fresh
    /// cardinality estimates) on its next use.
    pub recost_epochs: u64,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        Self {
            max_plans: 256,
            max_texts: 1024,
            recost_epochs: 64,
        }
    }
}

/// Counters of a [`PlanCache`], cumulative since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Executions that reused a cached plan with zero parsing.
    pub hits: u64,
    /// Executions that had to parse (text level) or had no cached plan.
    pub misses: u64,
    /// Fresh plan compilations (excludes re-costs).
    pub compiles: u64,
    /// Entries dropped by the LRU caps (plans and texts combined).
    pub evictions: u64,
    /// Stale plans re-ordered after the epoch advanced past the
    /// staleness threshold.
    pub recosts: u64,
}

struct PlanEntry {
    plan: Arc<CompiledPlan>,
    last_used: u64,
}

struct TextEntry {
    plan: Arc<CompiledPlan>,
    consts: Arc<Vec<Term>>,
    shape: String,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    /// option bits → normalized shape → shared plan.
    plans: HashMap<u8, HashMap<String, PlanEntry>>,
    /// option bits → query text → plan + pre-extracted constants.
    texts: HashMap<u8, HashMap<String, TextEntry>>,
    tick: u64,
}

impl Inner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

fn options_bits(options: &QueryOptions) -> u8 {
    u8::from(options.reasoning)
        | (u8::from(options.optimize) << 1)
        | (u8::from(options.merge_join) << 2)
}

fn evict_lru<V>(buckets: &mut HashMap<u8, HashMap<String, V>>, last_used: impl Fn(&V) -> u64) {
    let last_used = &last_used;
    let victim = buckets
        .iter()
        .flat_map(|(&bits, m)| m.iter().map(move |(k, v)| (last_used(v), bits, k.clone())))
        .min();
    if let Some((_, bits, key)) = victim {
        if let Some(m) = buckets.get_mut(&bits) {
            m.remove(&key);
        }
    }
}

/// A concurrent, shape-keyed compiled-plan cache (see the module docs
/// for the two key levels and the hollowing rules). Cheap to share:
/// wrap in an `Arc` and clone across threads; all methods take `&self`.
#[derive(Default)]
pub struct PlanCache {
    config: PlanCacheConfig,
    inner: Mutex<Inner>,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
    recosts: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl PlanCache {
    /// A cache with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache with explicit sizing/staleness policy.
    pub fn with_config(config: PlanCacheConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// Publishes the store's current epoch (applied batches). Plans
    /// whose compile epoch lags by more than
    /// [`PlanCacheConfig::recost_epochs`] re-cost on their next use.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Relaxed);
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            recosts: self.recosts.load(Ordering::Relaxed),
        }
    }

    /// Executes `text`: on a text-level hit the stored plan and
    /// constants run directly — no tokenizing, no parsing, no
    /// optimizing. On a miss the text is parsed once, bound into the
    /// shape-level plan (compiling it if this shape is new), and the
    /// text entry is installed for next time.
    pub fn execute_text<S: TripleSource + ?Sized>(
        &self,
        store: &S,
        text: &str,
        options: &QueryOptions,
    ) -> Result<ResultSet, QueryError> {
        let bits = options_bits(options);
        let cached = {
            let mut inner = self.inner.lock().unwrap();
            let tick = inner.touch();
            inner
                .texts
                .get_mut(&bits)
                .and_then(|m| m.get_mut(text))
                .map(|e| {
                    e.last_used = tick;
                    (e.plan.clone(), e.consts.clone())
                })
        };
        if let Some((plan, consts)) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let plan = self.recost_if_stale(store, plan, options, bits, Some(text));
            return execute_plan(store, &plan, &consts, options);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let query = parse_query(text)?;
        let (plan, consts) = self.plan_for(store, &query, options, bits);
        let consts = Arc::new(consts);
        {
            let mut inner = self.inner.lock().unwrap();
            let tick = inner.touch();
            inner.texts.entry(bits).or_default().insert(
                text.to_string(),
                TextEntry {
                    plan: plan.clone(),
                    consts: consts.clone(),
                    shape: plan.shape().to_string(),
                    last_used: tick,
                },
            );
            self.enforce_caps(&mut inner);
        }
        execute_plan(store, &plan, &consts, options)
    }

    /// Executes an already-parsed query through the shape-level cache —
    /// the registry path, where continuous queries hold their AST and
    /// structurally identical queries should share one seeded plan.
    pub fn execute_ast<S: TripleSource + ?Sized>(
        &self,
        store: &S,
        query: &Query,
        options: &QueryOptions,
    ) -> Result<ResultSet, QueryError> {
        let bits = options_bits(options);
        let (shape, consts) = normalize(query);
        let cached = {
            let mut inner = self.inner.lock().unwrap();
            let tick = inner.touch();
            inner
                .plans
                .get_mut(&bits)
                .and_then(|m| m.get_mut(&shape))
                .map(|e| {
                    e.last_used = tick;
                    e.plan.clone()
                })
        };
        let plan = match cached {
            Some(plan) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.recost_if_stale(store, plan, options, bits, None)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.compile_and_insert(store, query, options, bits)
            }
        };
        execute_plan(store, &plan, &consts, options)
    }

    /// Shape-level lookup-or-compile for a freshly parsed query.
    fn plan_for<S: TripleSource + ?Sized>(
        &self,
        store: &S,
        query: &Query,
        options: &QueryOptions,
        bits: u8,
    ) -> (Arc<CompiledPlan>, Vec<Term>) {
        let (shape, consts) = normalize(query);
        let cached = {
            let mut inner = self.inner.lock().unwrap();
            let tick = inner.touch();
            inner
                .plans
                .get_mut(&bits)
                .and_then(|m| m.get_mut(&shape))
                .map(|e| {
                    e.last_used = tick;
                    e.plan.clone()
                })
        };
        let plan = match cached {
            Some(plan) => self.recost_if_stale(store, plan, options, bits, None),
            None => self.compile_and_insert(store, query, options, bits),
        };
        (plan, consts)
    }

    fn compile_and_insert<S: TripleSource + ?Sized>(
        &self,
        store: &S,
        query: &Query,
        options: &QueryOptions,
        bits: u8,
    ) -> Arc<CompiledPlan> {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let epoch = self.epoch.load(Ordering::Relaxed);
        let plan = Arc::new(compile(query, store, options, epoch));
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.touch();
        inner.plans.entry(bits).or_default().insert(
            plan.shape().to_string(),
            PlanEntry {
                plan: plan.clone(),
                last_used: tick,
            },
        );
        self.enforce_caps(&mut inner);
        plan
    }

    /// Re-orders a stale plan from fresh cardinality estimates and
    /// republishes it at both cache levels. The AST is retained in the
    /// plan, so a re-cost never re-parses.
    fn recost_if_stale<S: TripleSource + ?Sized>(
        &self,
        store: &S,
        plan: Arc<CompiledPlan>,
        options: &QueryOptions,
        bits: u8,
        text: Option<&str>,
    ) -> Arc<CompiledPlan> {
        let epoch = self.epoch.load(Ordering::Relaxed);
        if epoch.saturating_sub(plan.compile_epoch) <= self.config.recost_epochs {
            return plan;
        }
        self.recosts.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(compile(&plan.query, store, options, epoch));
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.touch();
        if let Some(e) = inner
            .plans
            .get_mut(&bits)
            .and_then(|m| m.get_mut(fresh.shape()))
        {
            e.plan = fresh.clone();
            e.last_used = tick;
        }
        if let Some(text) = text {
            if let Some(e) = inner.texts.get_mut(&bits).and_then(|m| m.get_mut(text)) {
                e.plan = fresh.clone();
                e.last_used = tick;
            }
        }
        fresh
    }

    fn enforce_caps(&self, inner: &mut Inner) {
        let count = |m: &HashMap<u8, HashMap<String, PlanEntry>>| {
            m.values().map(HashMap::len).sum::<usize>()
        };
        while count(&inner.plans) > self.config.max_plans {
            evict_lru(&mut inner.plans, |e: &PlanEntry| e.last_used);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        while inner.texts.values().map(HashMap::len).sum::<usize>() > self.config.max_texts {
            evict_lru(&mut inner.texts, |e: &TextEntry| e.last_used);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// `shape` on TextEntry documents the text→shape mapping for debugging;
// keep the field exercised even though lookups go through the Arc.
impl TextEntry {
    #[allow(dead_code)]
    fn shape(&self) -> &str {
        &self.shape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use se_core::SuccinctEdgeStore;
    use se_ontology::Ontology;
    use se_rdf::{Graph, Literal, Triple};

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn store() -> SuccinctEdgeStore {
        let mut o = Ontology::new();
        o.add_class("http://x/Employee", "http://x/Person");
        o.add_class("http://x/Manager", "http://x/Employee");
        o.add_property("http://x/worksFor", "http://x/memberOf");
        o.add_object_property("http://x/knows");
        o.add_datatype_property("http://x/age");
        o.add_datatype_property("http://x/name");
        let mut g = Graph::new();
        let t =
            |s: &str, p: &str, o: Term| Triple::new(iri(s), Term::iri(format!("http://x/{p}")), o);
        let ty =
            |s: &str, c: &str| Triple::new(iri(s), Term::iri(se_rdf::vocab::rdf::TYPE), iri(c));
        g.extend([
            ty("alice", "Manager"),
            ty("bob", "Employee"),
            ty("carol", "Person"),
            ty("org1", "Org"),
            t("alice", "worksFor", iri("org1")),
            t("bob", "memberOf", iri("org1")),
            t("alice", "knows", iri("bob")),
            t("bob", "knows", iri("carol")),
            t("carol", "knows", iri("alice")),
            t("alice", "age", Term::Literal(Literal::integer(42))),
            t("bob", "age", Term::Literal(Literal::integer(37))),
            t("alice", "name", Term::literal("Alice")),
            t("bob", "name", Term::literal("Bob")),
            t("carol", "name", Term::literal("Carol")),
        ]);
        SuccinctEdgeStore::build(&o, &g).unwrap()
    }

    fn norm(rs: &ResultSet) -> Vec<String> {
        let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    }

    #[test]
    fn same_shape_different_constants_share_one_plan() {
        let st = store();
        let cache = PlanCache::new();
        let opts = QueryOptions::default();
        let qa = "PREFIX e: <http://x/> SELECT ?o WHERE { e:alice e:knows ?o }";
        let qb = "PREFIX e: <http://x/> SELECT ?o WHERE { e:bob e:knows ?o }";
        let ra = cache.execute_text(&st, qa, &opts).unwrap();
        let rb = cache.execute_text(&st, qb, &opts).unwrap();
        assert_eq!(
            norm(&ra),
            norm(&execute(&st, &parse_query(qa).unwrap(), &opts).unwrap())
        );
        assert_eq!(
            norm(&rb),
            norm(&execute(&st, &parse_query(qb).unwrap(), &opts).unwrap())
        );
        assert_ne!(norm(&ra), norm(&rb), "constants must stay per-query");
        let s = cache.stats();
        assert_eq!(s.compiles, 1, "one shape, one compile");
        assert_eq!(s.misses, 2, "both texts were cold");
        // Replays hit the text level: no parsing at all.
        cache.execute_text(&st, qa, &opts).unwrap();
        cache.execute_text(&st, qb, &opts).unwrap();
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.compiles, 1);
    }

    #[test]
    fn normalization_keeps_structure_structural() {
        let q1 = parse_query(
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:Person . ?s e:knows e:alice }",
        )
        .unwrap();
        let q2 = parse_query(
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:Person . ?s e:knows e:bob }",
        )
        .unwrap();
        let q3 = parse_query(
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:Employee . ?s e:knows e:bob }",
        )
        .unwrap();
        let (s1, c1) = normalize(&q1);
        let (s2, c2) = normalize(&q2);
        let (s3, _) = normalize(&q3);
        assert_eq!(s1, s2, "instance constants hollow out");
        assert_ne!(c1, c2);
        assert_ne!(s1, s3, "rdf:type concepts stay structural");
    }

    #[test]
    fn compiled_agrees_with_interpreted_on_binds_filters_union() {
        let st = store();
        let cache = PlanCache::new();
        for opts in [QueryOptions::default(), QueryOptions::without_reasoning()] {
            for q in [
                "PREFIX e: <http://x/> SELECT ?s ?half WHERE { ?s e:age ?a . BIND(?a / 2 AS ?half) FILTER(?half > 20) }",
                "PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:Manager } UNION { ?s a e:Org }",
                "PREFIX e: <http://x/> SELECT DISTINCT ?o WHERE { ?s e:memberOf ?o }",
                r#"PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:name "Bob" }"#,
                "PREFIX e: <http://x/> SELECT * WHERE { ?s e:knows ?o }",
            ] {
                let parsed = parse_query(q).unwrap();
                let want = execute(&st, &parsed, &opts).unwrap();
                let got = cache.execute_text(&st, q, &opts).unwrap();
                assert_eq!(norm(&got), norm(&want), "query {q} diverged");
                assert_eq!(got.variables, want.variables);
                let got_ast = cache.execute_ast(&st, &parsed, &opts).unwrap();
                assert_eq!(norm(&got_ast), norm(&want), "AST path diverged on {q}");
            }
        }
    }

    #[test]
    fn trace_reports_execution_order_and_rows() {
        let st = store();
        let q = parse_query(
            "PREFIX e: <http://x/> SELECT ?s ?o WHERE { ?s a e:Employee . ?s e:knows ?o }",
        )
        .unwrap();
        let opts = QueryOptions::default();
        let plan = compile(&q, &st, &opts, 0);
        let (_, consts) = normalize(&q);
        let mut trace = PlanTrace::default();
        let rs = execute_plan_traced(&st, &plan, &consts, &opts, &mut trace).unwrap();
        assert!(!rs.is_empty());
        assert_eq!(trace.steps.len(), 2);
        assert!(trace.steps_examined() >= 2);
        let order = plan.pattern_order(0).unwrap().to_vec();
        let traced: Vec<usize> = trace.steps.iter().map(|s| s.src).collect();
        assert_eq!(order, traced);
    }

    #[test]
    fn epoch_advance_triggers_recost() {
        let st = store();
        let cache = PlanCache::with_config(PlanCacheConfig {
            recost_epochs: 4,
            ..PlanCacheConfig::default()
        });
        let opts = QueryOptions::default();
        let q = "PREFIX e: <http://x/> SELECT ?o WHERE { e:alice e:knows ?o }";
        let first = cache.execute_text(&st, q, &opts).unwrap();
        assert_eq!(cache.stats().recosts, 0);
        cache.set_epoch(100);
        let again = cache.execute_text(&st, q, &opts).unwrap();
        assert_eq!(norm(&first), norm(&again));
        let s = cache.stats();
        assert_eq!(s.recosts, 1, "stale plan re-costs once");
        // The republished plan is fresh: the next use does not re-cost.
        cache.execute_text(&st, q, &opts).unwrap();
        assert_eq!(cache.stats().recosts, 1);
    }

    #[test]
    fn lru_eviction_is_counted_and_bounded() {
        let st = store();
        let cache = PlanCache::with_config(PlanCacheConfig {
            max_plans: 2,
            max_texts: 2,
            ..PlanCacheConfig::default()
        });
        let opts = QueryOptions::default();
        for p in ["knows", "age", "name", "memberOf"] {
            let q = format!("PREFIX e: <http://x/> SELECT ?s ?o WHERE {{ ?s e:{p} ?o }}");
            cache.execute_text(&st, &q, &opts).unwrap();
        }
        let s = cache.stats();
        assert!(s.evictions >= 4, "two caps of 2 under 4 shapes evict");
        assert_eq!(s.compiles, 4);
        // Evicted entries fall back to the miss path, still correct.
        let q = "PREFIX e: <http://x/> SELECT ?s ?o WHERE { ?s e:knows ?o }";
        let rs = cache.execute_text(&st, q, &opts).unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn constant_arity_mismatch_is_an_error() {
        let st = store();
        let q =
            parse_query("PREFIX e: <http://x/> SELECT ?o WHERE { e:alice e:knows ?o }").unwrap();
        let plan = compile(&q, &st, &QueryOptions::default(), 0);
        assert_eq!(plan.n_constants(), 1);
        let err = execute_plan(&st, &plan, &[], &QueryOptions::default()).unwrap_err();
        assert!(matches!(err, QueryError::Unsupported(_)));
    }

    #[test]
    fn unoptimized_plan_preserves_textual_order() {
        let st = store();
        let q = parse_query(
            "PREFIX e: <http://x/> SELECT ?s ?o WHERE { ?s e:knows ?o . ?s a e:Employee }",
        )
        .unwrap();
        let opts = QueryOptions {
            optimize: false,
            ..QueryOptions::default()
        };
        let plan = compile(&q, &st, &opts, 0);
        assert_eq!(plan.pattern_order(0).unwrap(), &[0, 1]);
    }
}
