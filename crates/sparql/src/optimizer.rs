//! Join-order optimization — the paper's Algorithm 1 (§5.1).
//!
//! SuccinctEdge only generates *left-deep* join trees. The optimizer builds
//! a query graph (one node per TP, edges between TPs sharing a variable,
//! labelled SS / SO / OS / OO), then repeatedly appends the "most
//! selective" next TP, ranked by:
//!
//! 1. **Heuristic 1** (adapted from Tsialiamanis et al. to the PSO access
//!    paths): TP-shape priority
//!    `(s,type,?o) > (?s,type,o) > (s,p,?o) > (?s,p,o) > (?s,p,?o)`,
//!    where positions bound by *earlier* TPs of the left-deep order count
//!    as constants;
//! 2. **Heuristic 2**: SS joins are preferred over SO joins
//!    (`S ⋈ S > S ⋈ O`), other join forms rank lower;
//! 3. **statistics** collected at dictionary-creation time, aggregated
//!    along the concept/property hierarchies, plus run-time counts computed
//!    directly on the SDS structures (the paper's Algorithm 2).

use crate::ast::{TermPattern, TriplePattern};
use se_core::TripleSource;
use se_rdf::Term;
use std::collections::HashSet;

/// How two triple patterns join (the query-graph edge label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// subject–subject (the preferred form).
    SS,
    /// subject–object in either direction.
    SO,
    /// object–object.
    OO,
    /// Any join involving a predicate position (rare, lowest priority).
    Other,
}

impl JoinType {
    fn priority(self) -> u8 {
        match self {
            JoinType::SS => 0,
            JoinType::SO => 1,
            JoinType::OO => 2,
            JoinType::Other => 3,
        }
    }
}

/// Classifies the strongest join between two TPs, if they share a variable.
pub fn join_type(a: &TriplePattern, b: &TriplePattern) -> Option<JoinType> {
    let mut best: Option<JoinType> = None;
    let mut consider = |jt: JoinType| {
        best = Some(match best {
            Some(cur) if cur.priority() <= jt.priority() => cur,
            _ => jt,
        });
    };
    let positions = |tp: &TriplePattern, var: &str| -> (bool, bool, bool) {
        (
            tp.subject.as_var() == Some(var),
            tp.predicate.as_var() == Some(var),
            tp.object.as_var() == Some(var),
        )
    };
    let mut vars: Vec<&str> = a.variables();
    vars.retain(|v| b.variables().contains(v));
    for var in vars {
        let (as_, ap, ao) = positions(a, var);
        let (bs, bp, bo) = positions(b, var);
        if as_ && bs {
            consider(JoinType::SS);
        }
        if (as_ && bo) || (ao && bs) {
            consider(JoinType::SO);
        }
        if ao && bo {
            consider(JoinType::OO);
        }
        if ap || bp {
            consider(JoinType::Other);
        }
    }
    best
}

/// Shape priority under a set of already-bound variables (lower = run
/// earlier). The adapted Heuristic 1 of §5.1.
fn shape_priority(tp: &TriplePattern, bound: &HashSet<&str>) -> u8 {
    let is_bound = |p: &TermPattern| match p {
        TermPattern::Term(_) => true,
        TermPattern::Var(v) => bound.contains(v.as_str()),
    };
    let s = is_bound(&tp.subject);
    let o = is_bound(&tp.object);
    let p_var = tp.predicate.is_var();
    if p_var {
        return 9;
    }
    if tp.is_type_pattern() {
        match (s, o) {
            (true, true) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (false, false) => 8, // "(?s rdf:type ?o) is not relevant in a practical IoT context"
        }
    } else {
        match (s, o) {
            (true, true) => 3,
            (true, false) => 4,
            (false, true) => 5,
            (false, false) => 6,
        }
    }
}

/// Estimated result cardinality of a TP from the creation-time statistics
/// and the run-time SDS counts — predicate interval widths via
/// rank/select, per-concept type counts, overlay per-predicate counts.
/// All O(1)-ish on the store; this is also the cost model the compiled
/// IR's cardinality-driven ordering builds on.
pub fn estimate<S: TripleSource + ?Sized>(tp: &TriplePattern, store: &S, reasoning: bool) -> usize {
    if tp.is_type_pattern() {
        match &tp.object {
            TermPattern::Term(Term::Iri(c)) => {
                let iv = if reasoning {
                    store.concept_interval(c)
                } else {
                    store.concept_id(c).map(|id| se_litemat::IdInterval {
                        lower: id,
                        upper: id + 1,
                    })
                };
                iv.map_or(0, |iv| store.type_count(iv))
            }
            _ => store.type_total(),
        }
    } else {
        match &tp.predicate {
            TermPattern::Term(Term::Iri(p)) => {
                if reasoning {
                    store
                        .property_interval(p)
                        .map_or(0, |iv| store.predicate_interval_count(iv))
                } else {
                    store
                        .property_id(p)
                        .map_or(0, |id| store.predicate_count(id))
                }
            }
            _ => store.len(),
        }
    }
}

/// The paper's Algorithm 1: computes a left-deep TP execution order.
pub fn order_patterns<S: TripleSource + ?Sized>(
    patterns: &[TriplePattern],
    store: &S,
    reasoning: bool,
) -> Vec<usize> {
    let n = patterns.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let estimates: Vec<usize> = patterns
        .iter()
        .map(|tp| estimate(tp, store, reasoning))
        .collect();

    // Line 2: the starting TP. Prefer the most selective rdf:type TP that
    // participates in an SS join; otherwise the best non-type TP; otherwise
    // anything.
    let has_ss_join = |i: usize| {
        (0..n).any(|j| j != i && join_type(&patterns[i], &patterns[j]) == Some(JoinType::SS))
    };
    let empty_bound = HashSet::new();
    let rank_start = |i: usize| (shape_priority(&patterns[i], &empty_bound), estimates[i], i);
    let start = (0..n)
        .filter(|&i| patterns[i].is_type_pattern() && (n == 1 || has_ss_join(i)))
        .min_by_key(|&i| rank_start(i))
        .or_else(|| {
            (0..n)
                .filter(|&i| !patterns[i].is_type_pattern())
                .min_by_key(|&i| rank_start(i))
        })
        .or_else(|| (0..n).min_by_key(|&i| rank_start(i)))
        .expect("n >= 1");

    let mut order = vec![start];
    let mut used = vec![false; n];
    used[start] = true;
    let mut bound: HashSet<&str> = patterns[start].variables().into_iter().collect();

    // Lines 4–7: repeatedly pick the most selective TP connected to the
    // current prefix.
    while order.len() < n {
        let connected: Vec<usize> = (0..n)
            .filter(|&i| {
                !used[i]
                    && order
                        .iter()
                        .any(|&j| join_type(&patterns[i], &patterns[j]).is_some())
            })
            .collect();
        // A disconnected pattern forces a cartesian product; all remaining
        // TPs become candidates.
        let candidates: Vec<usize> = if connected.is_empty() {
            (0..n).filter(|&i| !used[i]).collect()
        } else {
            connected
        };
        let best_join = |i: usize| {
            order
                .iter()
                .filter_map(|&j| join_type(&patterns[i], &patterns[j]))
                .map(JoinType::priority)
                .min()
                .unwrap_or(4)
        };
        let next = candidates
            .into_iter()
            .min_by_key(|&i| {
                (
                    shape_priority(&patterns[i], &bound),
                    best_join(i),
                    estimates[i],
                    i,
                )
            })
            .expect("candidates nonempty while TPs remain");
        used[next] = true;
        order.push(next);
        bound.extend(patterns[next].variables());
    }
    order
}

/// Cardinality-driven left-deep ordering — the compiled-IR planner.
///
/// Where [`order_patterns`] ranks by the structural Heuristic 1 first
/// and only consults statistics as a tiebreak, this ordering makes the
/// statistics primary: each candidate's [`estimate`] is discounted by
/// how many of its subject/object positions are already bound
/// (constants, or variables bound by the prefix) — a bound position
/// turns a scan into a per-row probe, so the discount is steep
/// (`base >> 4` per bound position). Join shape only breaks ties.
/// Connectivity still constrains candidates: a disconnected pattern is
/// chosen only when nothing connected remains (cartesian fallback).
pub fn order_patterns_by_cardinality<S: TripleSource + ?Sized>(
    patterns: &[TriplePattern],
    store: &S,
    reasoning: bool,
) -> Vec<usize> {
    let n = patterns.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let base: Vec<usize> = patterns
        .iter()
        .map(|tp| estimate(tp, store, reasoning))
        .collect();
    let cost = |i: usize, bound: &HashSet<&str>| -> usize {
        let is_bound = |p: &TermPattern| match p {
            TermPattern::Term(_) => true,
            TermPattern::Var(v) => bound.contains(v.as_str()),
        };
        let mut discount = 0u32;
        if is_bound(&patterns[i].subject) {
            discount += 4;
        }
        // A type pattern's constant concept is already priced into its
        // estimate (the concept's type count) — no extra discount.
        let obj_in_estimate =
            patterns[i].is_type_pattern() && matches!(patterns[i].object, TermPattern::Term(_));
        if !obj_in_estimate && is_bound(&patterns[i].object) {
            discount += 4;
        }
        base[i] >> discount
    };

    let empty = HashSet::new();
    let start = (0..n)
        .min_by_key(|&i| (cost(i, &empty), base[i], i))
        .expect("n >= 1");
    let mut order = vec![start];
    let mut used = vec![false; n];
    used[start] = true;
    let mut bound: HashSet<&str> = patterns[start].variables().into_iter().collect();

    while order.len() < n {
        let connected: Vec<usize> = (0..n)
            .filter(|&i| {
                !used[i]
                    && order
                        .iter()
                        .any(|&j| join_type(&patterns[i], &patterns[j]).is_some())
            })
            .collect();
        let candidates: Vec<usize> = if connected.is_empty() {
            (0..n).filter(|&i| !used[i]).collect()
        } else {
            connected
        };
        let best_join = |i: usize| {
            order
                .iter()
                .filter_map(|&j| join_type(&patterns[i], &patterns[j]))
                .map(JoinType::priority)
                .min()
                .unwrap_or(4)
        };
        let next = candidates
            .into_iter()
            .min_by_key(|&i| (cost(i, &bound), best_join(i), base[i], i))
            .expect("candidates nonempty while TPs remain");
        used[next] = true;
        order.push(next);
        bound.extend(patterns[next].variables());
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use se_core::SuccinctEdgeStore;
    use se_ontology::Ontology;
    use se_rdf::{Graph, Triple};

    fn tp(q: &str) -> Vec<TriplePattern> {
        let mut parsed = parse_query(q).unwrap();
        parsed.groups.remove(0).patterns
    }

    fn toy_store() -> SuccinctEdgeStore {
        let mut o = Ontology::new();
        o.add_class("http://x/C2", "http://x/C1");
        o.add_class("http://x/C3", "http://x/C1");
        o.add_object_property("http://x/p");
        o.add_object_property("http://x/q");
        let mut g = Graph::new();
        let iri = |s: &str| Term::iri(format!("http://x/{s}"));
        // C2 is rarer than C3.
        g.insert(Triple::new(
            iri("a"),
            Term::iri(se_rdf::vocab::rdf::TYPE),
            iri("C2"),
        ));
        for i in 0..5 {
            g.insert(Triple::new(
                iri(&format!("b{i}")),
                Term::iri(se_rdf::vocab::rdf::TYPE),
                iri("C3"),
            ));
        }
        // p is rarer than q.
        g.insert(Triple::new(iri("a"), iri("p"), iri("b0")));
        for i in 0..5 {
            g.insert(Triple::new(iri(&format!("b{i}")), iri("q"), iri("a")));
        }
        SuccinctEdgeStore::build(&o, &g).unwrap()
    }

    #[test]
    fn join_type_classification() {
        let tps = tp("SELECT * WHERE { ?x <http://x/p> ?y . ?x <http://x/q> ?z . ?w <http://x/r> ?x . ?a <http://x/s> ?y }");
        assert_eq!(join_type(&tps[0], &tps[1]), Some(JoinType::SS));
        assert_eq!(join_type(&tps[0], &tps[2]), Some(JoinType::SO));
        assert_eq!(join_type(&tps[0], &tps[3]), Some(JoinType::OO));
        assert_eq!(join_type(&tps[1], &tps[3]), None);
    }

    #[test]
    fn ss_preferred_over_so() {
        // Two TPs join the first via SS and SO respectively; SS runs first.
        let store = toy_store();
        let tps = tp("PREFIX e: <http://x/> SELECT * WHERE { ?x a e:C2 . ?y e:q ?x . ?x e:p ?z }");
        let order = order_patterns(&tps, &store, false);
        assert_eq!(order[0], 0, "type TP with SS join starts");
        assert_eq!(order[1], 2, "SS join (?x e:p ?z) beats SO join (?y e:q ?x)");
    }

    #[test]
    fn starts_with_most_selective_type_tp() {
        let store = toy_store();
        let tps = tp("PREFIX e: <http://x/> SELECT * WHERE { ?x a e:C3 . ?x a e:C2 . ?x e:p ?z }");
        let order = order_patterns(&tps, &store, false);
        // C2 (1 instance) is more selective than C3 (5 instances).
        assert_eq!(order[0], 1);
    }

    #[test]
    fn non_type_start_when_no_type_tp() {
        let store = toy_store();
        let tps = tp("PREFIX e: <http://x/> SELECT * WHERE { ?x e:p ?y . ?x e:q ?z }");
        let order = order_patterns(&tps, &store, false);
        // p (1 triple) is more selective than q (5 triples).
        assert_eq!(order[0], 0);
    }

    #[test]
    fn order_is_a_permutation_and_connected() {
        let store = toy_store();
        let tps = tp("PREFIX e: <http://x/> SELECT * WHERE {
                ?x a e:C2 . ?x e:p ?y . ?y e:q ?z . ?z a e:C3 . ?z e:p ?w }");
        let order = order_patterns(&tps, &store, false);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        // Every TP after the first joins something before it (connected query).
        for (k, &i) in order.iter().enumerate().skip(1) {
            assert!(
                order[..k]
                    .iter()
                    .any(|&j| join_type(&tps[i], &tps[j]).is_some()),
                "TP {i} at position {k} is not connected to the prefix"
            );
        }
    }

    #[test]
    fn single_tp() {
        let store = toy_store();
        let tps = tp("PREFIX e: <http://x/> SELECT * WHERE { ?x e:p ?y }");
        assert_eq!(order_patterns(&tps, &store, false), vec![0]);
    }

    #[test]
    fn cartesian_fallback() {
        let store = toy_store();
        // Two disconnected components: order must still cover everything.
        let tps = tp("PREFIX e: <http://x/> SELECT * WHERE { ?x e:p ?y . ?a e:q ?b }");
        let order = order_patterns(&tps, &store, false);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn cardinality_order_starts_with_selective_predicate() {
        let store = toy_store();
        // The selective predicate (p: 1 triple) is textually last; the
        // structural heuristic starts with the type TP regardless, the
        // cardinality-driven order must scan the narrow predicate first.
        let tps = tp("PREFIX e: <http://x/> SELECT * WHERE { ?x a e:C3 . ?x e:q ?y . ?x e:p ?z }");
        let heuristic = order_patterns(&tps, &store, false);
        assert_eq!(heuristic[0], 0, "Heuristic 1 starts with the type TP");
        let by_card = order_patterns_by_cardinality(&tps, &store, false);
        assert_eq!(by_card[0], 2, "cardinality order starts with e:p");
        let mut sorted = by_card.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn cardinality_order_discounts_bound_positions() {
        let store = toy_store();
        // After e:p binds ?x, the wide e:q probe is per-row and its
        // discounted cost drops below the unbound patterns' scans.
        let tps = tp(
            "PREFIX e: <http://x/> SELECT * WHERE { ?a e:q ?b . ?x e:q ?y . ?x e:p ?z . ?y e:q ?w }",
        );
        let order = order_patterns_by_cardinality(&tps, &store, false);
        assert_eq!(order[0], 2, "starts with the narrow predicate");
        assert_eq!(order[1], 1, "SS-joined probe on bound ?x runs next");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cardinality_order_is_connected_when_possible() {
        let store = toy_store();
        let tps = tp("PREFIX e: <http://x/> SELECT * WHERE {
                ?x a e:C2 . ?x e:p ?y . ?y e:q ?z . ?z a e:C3 . ?z e:p ?w }");
        let order = order_patterns_by_cardinality(&tps, &store, false);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        for (k, &i) in order.iter().enumerate().skip(1) {
            assert!(
                order[..k]
                    .iter()
                    .any(|&j| join_type(&tps[i], &tps[j]).is_some()),
                "TP {i} at position {k} is not connected to the prefix"
            );
        }
    }

    #[test]
    fn reasoning_changes_estimates() {
        let store = toy_store();
        let tps = tp("PREFIX e: <http://x/> SELECT * WHERE { ?x a e:C1 . ?x a e:C2 }");
        // Without reasoning C1 has 0 direct instances (most selective);
        // with reasoning C1 covers C2+C3 (6) and C2 (1) wins.
        let no_reason = order_patterns(&tps, &store, false);
        assert_eq!(no_reason[0], 0);
        let with_reason = order_patterns(&tps, &store, true);
        assert_eq!(with_reason[0], 1);
    }
}
