//! The [`TripleSource`] trait: pattern-level access to an RDF store.
//!
//! The paper evaluates every triple pattern through a fixed menu of
//! identifier-space accesses (Algorithms 2–4 plus the LiteMat interval
//! variants of §5.2). This trait captures exactly that menu, so the query
//! executor in `se-sparql` is independent of *which* store answers it:
//!
//! * the immutable [`SuccinctEdgeStore`](crate::SuccinctEdgeStore) —
//!   wavelet trees, bitmaps and red-black trees;
//! * the streaming `HybridStore` of `se-stream` — the same baseline plus a
//!   mutable delta overlay of inserted/deleted triples.
//!
//! # Contract
//!
//! Implementations must keep the invariants the executor relies on:
//!
//! * [`scan_predicate`](TripleSource::scan_predicate) returns `(subject,
//!   object)` pairs **sorted by subject id** (PSO order) — the merge-join
//!   fast path of §5.2 merges it against a subject-sorted intermediate
//!   relation;
//! * `subjects*` results are ascending and deduplicated;
//! * [`values_join`](TripleSource::values_join) must treat two
//!   [`Value::Literal`]s with equal literal *content* as joinable even if
//!   their indices differ (the flat literal store keeps duplicates);
//! * identifier spaces are shared with the dictionaries exposed by the
//!   encode/decode methods: a `u64` returned from one method is meaningful
//!   as input to any other.
//!
//! # Thread safety
//!
//! The trait carries `Send + Sync` supertraits: sources are shared across
//! ingest workers, background-compaction threads and parallel
//! continuous-query evaluation (`se-stream`'s sharded store fans a single
//! query out over shard-local views on scoped threads). All built-in
//! implementations are plain owned data (`Vec`s, boxed red-black trees,
//! `Arc<str>` dictionaries), so the bounds are free.

use crate::value::Value;
use se_litemat::IdInterval;
use se_rdf::{Literal, Term};

/// Pattern-level, identifier-space access to an RDF store — the interface
/// the SPARQL executor runs against.
///
/// `Send + Sync` so executors can evaluate against a shared `&S` from
/// multiple threads (scatter/gather stores, background compaction).
pub trait TripleSource: Send + Sync {
    // ---------------------------------------------------------------- encode

    /// Instance identifier of a subject/object resource term.
    fn instance_id(&self, term: &Term) -> Option<u64>;

    /// Identifier of a property IRI.
    fn property_id(&self, iri: &str) -> Option<u64>;

    /// Identifier of a concept IRI.
    fn concept_id(&self, iri: &str) -> Option<u64>;

    /// Subsumption interval of a property (its whole sub-hierarchy).
    fn property_interval(&self, iri: &str) -> Option<IdInterval>;

    /// Subsumption interval of a concept.
    fn concept_interval(&self, iri: &str) -> Option<IdInterval>;

    // ---------------------------------------------------------------- decode

    /// Decodes an encoded value back to an RDF term.
    fn value_to_term(&self, value: Value) -> Option<Term>;

    /// The literal at flat-store position `idx`.
    fn literal(&self, idx: u64) -> Option<&Literal>;

    /// Join-aware equality (literal content equality sees through
    /// duplicate flat-store entries).
    fn values_join(&self, a: Value, b: Value) -> bool {
        if a == b {
            return true;
        }
        match (a, b) {
            (Value::Literal(x), Value::Literal(y)) => match self.literal(x) {
                Some(lx) => self.literal(y) == Some(lx),
                None => false,
            },
            _ => false,
        }
    }

    // ------------------------------------------------ TP eval (no inference)

    /// `(s, p, ?o)`.
    fn objects(&self, p: u64, s: u64) -> Vec<Value>;

    /// `(?s, p, o)`.
    fn subjects(&self, p: u64, o: &Value) -> Vec<u64>;

    /// `(?s, p, o)` with a literal constant object.
    fn subjects_by_literal(&self, p: u64, lit: &Literal) -> Vec<u64>;

    /// `(?s, p, ?o)` — `(subject, object)` pairs **sorted by subject**.
    fn scan_predicate(&self, p: u64) -> Vec<(u64, Value)>;

    /// `(s, p, o)` membership.
    fn contains(&self, p: u64, s: u64, o: &Value) -> bool;

    // -------------------------------------------- TP eval (LiteMat inference)

    /// Reasoning-enabled `(s, p⊑, ?o)` over a property interval.
    fn objects_interval(&self, p_iv: IdInterval, s: u64) -> Vec<Value>;

    /// Reasoning-enabled `(?s, p⊑, o)`.
    fn subjects_interval(&self, p_iv: IdInterval, o: &Value) -> Vec<u64>;

    /// Reasoning-enabled `(?s, p⊑, lit)` with a literal constant object.
    fn subjects_by_literal_interval(&self, p_iv: IdInterval, lit: &Literal) -> Vec<u64>;

    /// Reasoning-enabled `(?s, p⊑, ?o)`.
    fn scan_interval(&self, p_iv: IdInterval) -> Vec<(u64, Value)>;

    // ----------------------------------------------------------- rdf:type TPs

    /// `(?s, rdf:type, C)` without reasoning.
    fn subjects_of_concept(&self, c: u64) -> Vec<u64>;

    /// `(?s, rdf:type, C)` with reasoning over C's sub-hierarchy.
    fn subjects_of_concept_interval(&self, iv: IdInterval) -> Vec<u64>;

    /// `(s, rdf:type, ?c)`.
    fn concepts_of_subject(&self, s: u64) -> Vec<u64>;

    /// `(s, rdf:type, C)` exact membership.
    fn has_type(&self, s: u64, c: u64) -> bool;

    /// `(s, rdf:type, C)` membership with reasoning.
    fn has_type_in_interval(&self, s: u64, iv: IdInterval) -> bool;

    /// `(?s, rdf:type, ?c)` — all `(subject, concept)` pairs.
    fn type_pairs(&self) -> Vec<(u64, u64)>;

    // ------------------------------------------------------------ statistics

    /// Total number of triples visible through this source.
    fn len(&self) -> usize;

    /// `true` if no triples are visible.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Triples with predicate `p` (the optimizer's Algorithm 2 statistic).
    fn predicate_count(&self, p: u64) -> usize;

    /// Triples whose predicate lies in the interval.
    fn predicate_interval_count(&self, iv: IdInterval) -> usize;

    /// `rdf:type` triples whose concept lies in the interval.
    fn type_count(&self, iv: IdInterval) -> usize;

    /// Total number of `rdf:type` triples.
    fn type_total(&self) -> usize;
}

impl TripleSource for crate::SuccinctEdgeStore {
    fn instance_id(&self, term: &Term) -> Option<u64> {
        Self::instance_id(self, term)
    }
    fn property_id(&self, iri: &str) -> Option<u64> {
        Self::property_id(self, iri)
    }
    fn concept_id(&self, iri: &str) -> Option<u64> {
        Self::concept_id(self, iri)
    }
    fn property_interval(&self, iri: &str) -> Option<IdInterval> {
        Self::property_interval(self, iri)
    }
    fn concept_interval(&self, iri: &str) -> Option<IdInterval> {
        Self::concept_interval(self, iri)
    }
    fn value_to_term(&self, value: Value) -> Option<Term> {
        Self::value_to_term(self, value)
    }
    fn literal(&self, idx: u64) -> Option<&Literal> {
        Self::literal(self, idx)
    }
    fn values_join(&self, a: Value, b: Value) -> bool {
        Self::values_join(self, a, b)
    }
    fn objects(&self, p: u64, s: u64) -> Vec<Value> {
        Self::objects(self, p, s)
    }
    fn subjects(&self, p: u64, o: &Value) -> Vec<u64> {
        Self::subjects(self, p, o)
    }
    fn subjects_by_literal(&self, p: u64, lit: &Literal) -> Vec<u64> {
        Self::subjects_by_literal(self, p, lit)
    }
    fn scan_predicate(&self, p: u64) -> Vec<(u64, Value)> {
        Self::scan_predicate(self, p)
    }
    fn contains(&self, p: u64, s: u64, o: &Value) -> bool {
        Self::contains(self, p, s, o)
    }
    fn objects_interval(&self, p_iv: IdInterval, s: u64) -> Vec<Value> {
        Self::objects_interval(self, p_iv, s)
    }
    fn subjects_interval(&self, p_iv: IdInterval, o: &Value) -> Vec<u64> {
        Self::subjects_interval(self, p_iv, o)
    }
    fn subjects_by_literal_interval(&self, p_iv: IdInterval, lit: &Literal) -> Vec<u64> {
        Self::subjects_by_literal_interval(self, p_iv, lit)
    }
    fn scan_interval(&self, p_iv: IdInterval) -> Vec<(u64, Value)> {
        Self::scan_interval(self, p_iv)
    }
    fn subjects_of_concept(&self, c: u64) -> Vec<u64> {
        Self::subjects_of_concept(self, c)
    }
    fn subjects_of_concept_interval(&self, iv: IdInterval) -> Vec<u64> {
        Self::subjects_of_concept_interval(self, iv)
    }
    fn concepts_of_subject(&self, s: u64) -> Vec<u64> {
        Self::concepts_of_subject(self, s)
    }
    fn has_type(&self, s: u64, c: u64) -> bool {
        Self::has_type(self, s, c)
    }
    fn has_type_in_interval(&self, s: u64, iv: IdInterval) -> bool {
        Self::has_type_in_interval(self, s, iv)
    }
    fn type_pairs(&self) -> Vec<(u64, u64)> {
        self.type_store().iter().collect()
    }
    fn len(&self) -> usize {
        Self::len(self)
    }
    fn predicate_count(&self, p: u64) -> usize {
        Self::predicate_count(self, p)
    }
    fn predicate_interval_count(&self, iv: IdInterval) -> usize {
        Self::predicate_interval_count(self, iv)
    }
    fn type_count(&self, iv: IdInterval) -> usize {
        Self::type_count(self, iv)
    }
    fn type_total(&self) -> usize {
        self.type_store().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ontology::Ontology;
    use se_rdf::Graph;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    /// Exercises the trait through a `dyn` reference, proving object
    /// safety and that the blanket impl routes to the inherent methods.
    #[test]
    fn store_answers_through_the_trait() {
        let mut o = Ontology::new();
        o.add_class("http://x/C2", "http://x/C1");
        o.add_object_property("http://x/knows");
        o.add_datatype_property("http://x/age");
        let mut g = Graph::new();
        g.extend([
            se_rdf::Triple::new(iri("a"), Term::iri(se_rdf::vocab::rdf::TYPE), iri("C2")),
            se_rdf::Triple::new(iri("a"), iri("knows"), iri("b")),
            se_rdf::Triple::new(iri("a"), iri("age"), Term::literal("42")),
        ]);
        let store = crate::SuccinctEdgeStore::build(&o, &g).unwrap();
        let src: &dyn TripleSource = &store;

        assert_eq!(src.len(), 3);
        assert_eq!(src.type_total(), 1);
        let knows = src.property_id("http://x/knows").unwrap();
        let a = src.instance_id(&iri("a")).unwrap();
        let b = src.instance_id(&iri("b")).unwrap();
        assert_eq!(src.objects(knows, a), vec![Value::Instance(b)]);
        assert_eq!(src.subjects(knows, &Value::Instance(b)), vec![a]);
        assert_eq!(src.type_pairs().len(), 1);
        let c1 = src.concept_interval("http://x/C1").unwrap();
        assert_eq!(src.subjects_of_concept_interval(c1), vec![a]);
        assert!(src.has_type_in_interval(a, c1));
        // Literal-content join through the default method.
        let age = src.property_id("http://x/age").unwrap();
        let lit = src.objects(age, a)[0];
        assert!(src.values_join(lit, lit));
        let age_iv = src.property_interval("http://x/age").unwrap();
        assert_eq!(
            src.subjects_by_literal_interval(age_iv, &Literal::string("42")),
            vec![a]
        );
    }

    /// The trait's `Send + Sync` supertraits hold for the built-in store
    /// (compile-time check; scoped ingest workers and background
    /// compaction rely on it).
    #[test]
    fn sources_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::SuccinctEdgeStore>();
        fn assert_trait_object(src: &(dyn TripleSource + Send + Sync)) -> usize {
            src.len()
        }
        let store =
            crate::SuccinctEdgeStore::build(&se_ontology::Ontology::new(), &se_rdf::Graph::new())
                .unwrap();
        assert_eq!(assert_trait_object(&store), 0);
    }

    /// The literal/literal arm of the default `values_join` resolves each
    /// side exactly once and joins on content.
    #[test]
    fn values_join_default_literal_content() {
        let mut g = Graph::new();
        g.insert(se_rdf::Triple::new(
            iri("a"),
            iri("v"),
            Term::literal("3.14"),
        ));
        g.insert(se_rdf::Triple::new(
            iri("b"),
            iri("v"),
            Term::literal("3.14"),
        ));
        let store = crate::SuccinctEdgeStore::build(&Ontology::new(), &g).unwrap();
        let src: &dyn TripleSource = &store;
        let v = src.property_id("http://x/v").unwrap();
        let a = src.instance_id(&iri("a")).unwrap();
        let b = src.instance_id(&iri("b")).unwrap();
        let la = src.objects(v, a)[0];
        let lb = src.objects(v, b)[0];
        assert_ne!(la, lb, "flat store keeps duplicate literals");
        assert!(src.values_join(la, lb));
        assert!(!src.values_join(la, Value::Literal(999)));
        assert!(!src.values_join(Value::Literal(999), Value::Literal(998)));
    }
}
