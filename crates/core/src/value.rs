//! Typed encoded values.
//!
//! SuccinctEdge keeps three identifier spaces (paper §4): instances (dense
//! arbitrary integers), concepts and properties (sparse LiteMat prefix
//! codes), and literals (positions in the flat literal store of the
//! Datatype-triple layer). A [`Value`] tags an identifier with its space so
//! the query engine never confuses, say, instance 5 with concept 5.

use std::fmt;

/// An encoded RDF term: an identifier tagged with its identifier space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An entry of the instance dictionary.
    Instance(u64),
    /// A LiteMat concept identifier.
    Concept(u64),
    /// A LiteMat property identifier.
    Property(u64),
    /// An index into the flat literal store.
    Literal(u64),
}

impl Value {
    /// The raw identifier, whatever the space.
    #[inline]
    pub fn raw(self) -> u64 {
        match self {
            Value::Instance(v) | Value::Concept(v) | Value::Property(v) | Value::Literal(v) => v,
        }
    }

    /// `true` for [`Value::Literal`].
    #[inline]
    pub fn is_literal(self) -> bool {
        matches!(self, Value::Literal(_))
    }

    /// `true` for [`Value::Instance`].
    #[inline]
    pub fn is_instance(self) -> bool {
        matches!(self, Value::Instance(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Instance(v) => write!(f, "i{v}"),
            Value::Concept(v) => write!(f, "c{v}"),
            Value::Property(v) => write!(f, "p{v}"),
            Value::Literal(v) => write!(f, "l{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_spaces_never_equal() {
        assert_ne!(Value::Instance(5), Value::Concept(5));
        assert_ne!(Value::Concept(5), Value::Property(5));
        assert_ne!(Value::Instance(5), Value::Literal(5));
        assert_eq!(Value::Instance(5), Value::Instance(5));
    }

    #[test]
    fn raw_extracts_id() {
        assert_eq!(Value::Instance(7).raw(), 7);
        assert_eq!(Value::Literal(9).raw(), 9);
    }

    #[test]
    fn predicates() {
        assert!(Value::Literal(0).is_literal());
        assert!(!Value::Instance(0).is_literal());
        assert!(Value::Instance(0).is_instance());
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(Value::Instance(3).to_string(), "i3");
        assert_eq!(Value::Concept(4).to_string(), "c4");
    }
}
