//! Store persistence.
//!
//! The paper's administration model (§4) broadcasts LiteMat-encoded
//! dictionaries from a central server to the edge instances, and §7.3.2
//! persists "all the data structures existing in SuccinctEdge to disk".
//! This module implements that persistent form: one compact binary file
//! containing the three dictionaries, both SDS layers and the `rdf:type`
//! pairs. Loading rebuilds the rank/select directories and the red-black
//! trees (they are cheap derived structures; only raw data is stored).

use crate::builder::BuildStats;
use crate::datatype::DatatypeLayer;
use crate::layer::TripleLayer;
use crate::store::SuccinctEdgeStore;
use crate::typestore::RdfTypeStore;
use se_litemat::{Dictionaries, InstanceDictionary, LiteMatDictionary};
use se_sds::{ReadBin, Serialize, WriteBin};
use std::io;
use std::path::Path;

/// Magic header of the persistent format.
const MAGIC: &[u8; 8] = b"SEDGEv01";

impl SuccinctEdgeStore {
    /// Writes the store's persistent form.
    pub fn save<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        // Dictionaries.
        self.dictionaries().concepts.serialize(w)?;
        self.dictionaries().properties.serialize(w)?;
        self.dictionaries().instances.serialize(w)?;
        // Layers.
        self.object_layer().serialize(w)?;
        self.datatype_layer().serialize(w)?;
        // rdf:type pairs.
        w.write_u64(self.type_store().len() as u64)?;
        for (s, c) in self.type_store().iter() {
            w.write_u64(s)?;
            w.write_u64(c)?;
        }
        // Stats.
        let st = self.stats();
        for v in [
            st.n_triples,
            st.n_type_triples,
            st.n_object_triples,
            st.n_datatype_triples,
            st.n_augmented_classes,
            st.n_augmented_properties,
        ] {
            w.write_u64(v as u64)?;
        }
        Ok(())
    }

    /// Saves to a file.
    pub fn save_to_file(&self, path: &Path) -> io::Result<()> {
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        self.save(&mut file)
    }

    /// Reads a store previously written by [`SuccinctEdgeStore::save`].
    pub fn load<R: io::Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a SuccinctEdge store file",
            ));
        }
        let concepts = LiteMatDictionary::deserialize(r)?;
        let properties = LiteMatDictionary::deserialize(r)?;
        let instances = InstanceDictionary::deserialize(r)?;
        let object_layer = TripleLayer::deserialize(r)?;
        let datatype_layer = DatatypeLayer::deserialize(r)?;
        let n_types = r.read_u64()? as usize;
        let mut type_store = RdfTypeStore::new();
        for _ in 0..n_types {
            let s = r.read_u64()?;
            let c = r.read_u64()?;
            type_store.insert(s, c);
        }
        let mut stats_fields = [0u64; 6];
        for f in &mut stats_fields {
            *f = r.read_u64()?;
        }
        let stats = BuildStats {
            n_triples: stats_fields[0] as usize,
            n_type_triples: stats_fields[1] as usize,
            n_object_triples: stats_fields[2] as usize,
            n_datatype_triples: stats_fields[3] as usize,
            n_augmented_classes: stats_fields[4] as usize,
            n_augmented_properties: stats_fields[5] as usize,
        };
        let dicts = Dictionaries {
            concepts,
            properties,
            instances,
        };
        Ok(Self::from_parts(
            dicts,
            object_layer,
            datatype_layer,
            type_store,
            stats,
        ))
    }

    /// Loads from a file.
    pub fn load_from_file(path: &Path) -> io::Result<Self> {
        let mut file = io::BufReader::new(std::fs::File::open(path)?);
        Self::load(&mut file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ontology::Ontology;
    use se_rdf::{Graph, Term, Triple};

    fn sample_store() -> SuccinctEdgeStore {
        let iri = |s: &str| Term::iri(format!("http://x/{s}"));
        let mut o = Ontology::new();
        o.add_class("http://x/C2", "http://x/C1");
        o.add_property("http://x/worksFor", "http://x/memberOf");
        o.add_datatype_property("http://x/age");
        let mut g = Graph::new();
        g.extend([
            Triple::new(iri("a"), Term::iri(se_rdf::vocab::rdf::TYPE), iri("C2")),
            Triple::new(iri("a"), iri("worksFor"), iri("org")),
            Triple::new(iri("b"), iri("memberOf"), iri("org")),
            Triple::new(iri("a"), iri("age"), Term::literal("42")),
            Triple::new(iri("b"), Term::iri(se_rdf::vocab::rdf::TYPE), iri("C1")),
        ]);
        SuccinctEdgeStore::build(&o, &g).unwrap()
    }

    #[test]
    fn roundtrip_preserves_answers() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();
        let back = SuccinctEdgeStore::load(&mut buf.as_slice()).unwrap();

        assert_eq!(back.len(), store.len());
        assert_eq!(back.stats(), store.stats());
        // Queries agree, including reasoning (intervals survive the trip).
        let iv = back.concept_interval("http://x/C1").unwrap();
        assert_eq!(iv, store.concept_interval("http://x/C1").unwrap());
        assert_eq!(
            back.subjects_of_concept_interval(iv),
            store.subjects_of_concept_interval(iv)
        );
        let p_iv = back.property_interval("http://x/memberOf").unwrap();
        let org = back.instance_id(&Term::iri("http://x/org")).unwrap();
        assert_eq!(
            back.subjects_interval(p_iv, &crate::Value::Instance(org)),
            store.subjects_interval(p_iv, &crate::Value::Instance(org))
        );
        // Literals survive.
        let age = back.property_id("http://x/age").unwrap();
        let a = back.instance_id(&Term::iri("http://x/a")).unwrap();
        let objs = back.objects(age, a);
        assert_eq!(objs.len(), 1);
        assert_eq!(back.value_to_term(objs[0]).unwrap(), Term::literal("42"));
    }

    #[test]
    fn file_roundtrip() {
        let store = sample_store();
        let mut path = std::env::temp_dir();
        path.push(format!("se-persist-test-{}.db", std::process::id()));
        store.save_to_file(&path).unwrap();
        let back = SuccinctEdgeStore::load_from_file(&path).unwrap();
        assert_eq!(back.len(), store.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let garbage = b"not a store file at all";
        assert!(SuccinctEdgeStore::load(&mut garbage.as_slice()).is_err());
    }

    #[test]
    fn persisted_size_matches_accounting() {
        // The file must weigh roughly dictionary + triple sizes (plus the
        // small magic/stats overhead).
        let store = sample_store();
        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();
        let accounted = store.dictionary_serialized_size() + store.triple_serialized_size();
        assert!(
            buf.len() >= accounted && buf.len() <= accounted + 256,
            "file {} vs accounted {accounted}",
            buf.len()
        );
    }
}
