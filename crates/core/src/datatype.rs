//! The datatype-triple store (paper §4).
//!
//! Triples whose object is a literal get their own predicate/subject SDS
//! layers, but their objects live in a *flat literal store*: "we prefer to
//! store the values as they have been sent by sensors, possibly with some
//! redundancy, in order to prevent a complex and costly individual
//! dictionary management." A literal is addressed by its position in the
//! store, which — because triples are sorted `(p, s)` and literals appended
//! in triple order — coincides with the triple's position in the layer.

use se_rdf::Literal;
use se_sds::{HeapSize, RsBitVec, Serialize, WaveletTree};
use std::io;

/// SDS predicate/subject layers over literal-object triples plus the flat
/// literal store.
#[derive(Debug, Clone)]
pub struct DatatypeLayer {
    wt_p: WaveletTree,
    bm_ps: RsBitVec,
    wt_s: WaveletTree,
    bm_so: RsBitVec,
    literals: Vec<Literal>,
}

impl DatatypeLayer {
    /// Builds from triples sorted ascending by `(p, s)` (ties in literal
    /// order are fine but not required); `triples[i].2` becomes literal
    /// index `i`.
    pub fn build(triples: &[(u64, u64, Literal)]) -> Self {
        debug_assert!(
            triples
                .windows(2)
                .all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)),
            "DatatypeLayer input must be sorted by (p, s)"
        );
        let mut preds = Vec::new();
        let mut ps_bits = Vec::new();
        let mut subjects = Vec::new();
        let mut so_bits = Vec::with_capacity(triples.len());
        let mut literals = Vec::with_capacity(triples.len());
        let mut last_p: Option<u64> = None;
        let mut last_ps: Option<(u64, u64)> = None;
        for (p, s, lit) in triples {
            let new_pair = last_ps != Some((*p, *s));
            if new_pair {
                let new_pred = last_p != Some(*p);
                if new_pred {
                    preds.push(*p);
                    last_p = Some(*p);
                }
                ps_bits.push(new_pred);
                subjects.push(*s);
                last_ps = Some((*p, *s));
            }
            so_bits.push(new_pair);
            literals.push(lit.clone());
        }
        Self {
            wt_p: WaveletTree::new(&preds),
            bm_ps: RsBitVec::from_bits(ps_bits),
            wt_s: WaveletTree::new(&subjects),
            bm_so: RsBitVec::from_bits(so_bits),
            literals,
        }
    }

    /// Number of datatype triples.
    #[inline]
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// `true` if no datatype triples are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// The literal at store position `idx`.
    #[inline]
    pub fn literal(&self, idx: u64) -> Option<&Literal> {
        self.literals.get(idx as usize)
    }

    /// Position of predicate `p` in this layer's `WT_p`.
    pub fn predicate_index(&self, p: u64) -> Option<usize> {
        self.wt_p.select(1, p)
    }

    /// Contiguous `WT_p` index run of predicates in `[lo, hi)` (LiteMat
    /// reasoning over datatype-property hierarchies).
    pub fn predicate_range(&self, lo: u64, hi: u64) -> std::ops::Range<usize> {
        let n = self.wt_p.len();
        let partition = |pred: &dyn Fn(u64) -> bool| {
            let (mut l, mut h) = (0usize, n);
            while l < h {
                let mid = (l + h) / 2;
                if pred(self.wt_p.access(mid)) {
                    l = mid + 1;
                } else {
                    h = mid;
                }
            }
            l
        };
        let lower = partition(&|v| v < lo);
        let upper = partition(&|v| v < hi);
        lower..upper
    }

    /// The predicate at `WT_p` position `k`.
    pub fn predicate_at(&self, k: usize) -> u64 {
        self.wt_p.access(k)
    }

    fn subject_bounds(&self, index_p: usize) -> (usize, usize) {
        let begin = self
            .bm_ps
            .select1(index_p + 1)
            .expect("predicate index within bounds");
        let end = self
            .bm_ps
            .select1(index_p + 2)
            .unwrap_or_else(|| self.wt_s.len());
        (begin, end)
    }

    fn literal_bounds(&self, index_s: usize) -> (usize, usize) {
        let begin = self
            .bm_so
            .select1(index_s + 1)
            .expect("pair index within bounds");
        let end = self
            .bm_so
            .select1(index_s + 2)
            .unwrap_or(self.literals.len());
        (begin, end)
    }

    /// `(s, p, ?o)`: literal-store indices of the objects of `(p, s)`.
    pub fn literal_indices(&self, p: u64, s: u64) -> Vec<u64> {
        let Some(index_p) = self.predicate_index(p) else {
            return Vec::new();
        };
        let (s_begin, s_end) = self.subject_bounds(index_p);
        let mut res = Vec::new();
        for index_s in self.wt_s.range_search(s_begin, s_end, s) {
            let (begin, end) = self.literal_bounds(index_s);
            res.extend((begin..end).map(|i| i as u64));
        }
        res
    }

    /// `(?s, p, o)` with a literal object: subjects whose `(p, s)` object
    /// run contains a literal equal to `o`. The flat store has no index on
    /// literal values (§4), so the predicate's runs are scanned.
    pub fn subjects_by_literal(&self, p: u64, o: &Literal) -> Vec<u64> {
        let Some(index_p) = self.predicate_index(p) else {
            return Vec::new();
        };
        let (s_begin, s_end) = self.subject_bounds(index_p);
        let mut res = Vec::new();
        for index_s in s_begin..s_end {
            let (begin, end) = self.literal_bounds(index_s);
            if self.literals[begin..end].iter().any(|l| l == o) {
                res.push(self.wt_s.access(index_s));
            }
        }
        res
    }

    /// `(?s, p, ?o)`: every `(subject, literal index)` pair of predicate
    /// `p`, in `(s, store-order)` order.
    pub fn scan_predicate(&self, p: u64) -> Vec<(u64, u64)> {
        let Some(index_p) = self.predicate_index(p) else {
            return Vec::new();
        };
        self.scan_predicate_index(index_p)
    }

    /// Like [`DatatypeLayer::scan_predicate`], addressed by `WT_p` position.
    pub fn scan_predicate_index(&self, index_p: usize) -> Vec<(u64, u64)> {
        let (s_begin, s_end) = self.subject_bounds(index_p);
        let mut res = Vec::new();
        for index_s in s_begin..s_end {
            let s = self.wt_s.access(index_s);
            let (begin, end) = self.literal_bounds(index_s);
            res.extend((begin..end).map(|i| (s, i as u64)));
        }
        res
    }

    /// Number of triples with predicate `p` (Algorithm 2 on this layer).
    pub fn count_predicate(&self, p: u64) -> usize {
        let Some(index_p) = self.predicate_index(p) else {
            return 0;
        };
        let (s_begin, s_end) = self.subject_bounds(index_p);
        let begin = self
            .bm_so
            .select1(s_begin + 1)
            .expect("pair start within bounds");
        let end = self.bm_so.select1(s_end + 1).unwrap_or(self.literals.len());
        end - begin
    }

    /// Iterates `(p, s, literal index)` in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        (0..self.wt_p.len()).flat_map(move |index_p| {
            let p = self.wt_p.access(index_p);
            let (s_begin, s_end) = self.subject_bounds(index_p);
            (s_begin..s_end).flat_map(move |index_s| {
                let s = self.wt_s.access(index_s);
                let (begin, end) = self.literal_bounds(index_s);
                (begin..end).map(move |i| (p, s, i as u64))
            })
        })
    }
}

impl HeapSize for DatatypeLayer {
    fn heap_size(&self) -> usize {
        self.wt_p.heap_size()
            + self.bm_ps.heap_size()
            + self.wt_s.heap_size()
            + self.bm_so.heap_size()
            + self.literals.capacity() * std::mem::size_of::<Literal>()
            + self
                .literals
                .iter()
                .map(|l| {
                    l.value.len()
                        + l.datatype.as_ref().map_or(0, |d| d.len())
                        + l.language.as_ref().map_or(0, |d| d.len())
                })
                .sum::<usize>()
    }
}

impl Serialize for DatatypeLayer {
    fn serialize<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        use se_sds::WriteBin;
        self.wt_p.serialize(w)?;
        self.bm_ps.serialize(w)?;
        self.wt_s.serialize(w)?;
        self.bm_so.serialize(w)?;
        w.write_u64(self.literals.len() as u64)?;
        for lit in &self.literals {
            w.write_str(&lit.value)?;
            match (&lit.datatype, &lit.language) {
                (Some(dt), _) => {
                    w.write_u8(1)?;
                    w.write_str(dt)?;
                }
                (None, Some(lang)) => {
                    w.write_u8(2)?;
                    w.write_str(lang)?;
                }
                (None, None) => w.write_u8(0)?,
            }
        }
        Ok(())
    }

    fn deserialize<R: io::Read>(r: &mut R) -> io::Result<Self> {
        use se_sds::ReadBin;
        let wt_p = WaveletTree::deserialize(r)?;
        let bm_ps = RsBitVec::deserialize(r)?;
        let wt_s = WaveletTree::deserialize(r)?;
        let bm_so = RsBitVec::deserialize(r)?;
        let n = r.read_u64()? as usize;
        let mut literals = Vec::with_capacity(n);
        for _ in 0..n {
            let value = r.read_str()?;
            let lit = match r.read_u8()? {
                1 => Literal::typed(value, r.read_str()?),
                2 => Literal::lang(value, r.read_str()?),
                0 => Literal::string(value),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad literal tag {other}"),
                    ))
                }
            };
            literals.push(lit);
        }
        Ok(Self {
            wt_p,
            bm_ps,
            wt_s,
            bm_so,
            literals,
        })
    }

    fn serialized_size(&self) -> usize {
        let lits: usize = self
            .literals
            .iter()
            .map(|l| {
                8 + l.value.len()
                    + 1
                    + match (&l.datatype, &l.language) {
                        (Some(dt), _) => 8 + dt.len(),
                        (None, Some(lang)) => 8 + lang.len(),
                        (None, None) => 0,
                    }
            })
            .sum();
        self.wt_p.serialized_size()
            + self.bm_ps.serialized_size()
            + self.wt_s.serialized_size()
            + self.bm_so.serialized_size()
            + 8
            + lits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: &str) -> Literal {
        Literal::string(v)
    }

    fn sample() -> Vec<(u64, u64, Literal)> {
        vec![
            (1, 1, lit("a")),
            (1, 1, lit("b")),
            (1, 2, lit("a")),
            (2, 1, lit("x")),
            (2, 3, lit("y")),
        ]
    }

    #[test]
    fn literal_indices_match_positions() {
        let layer = DatatypeLayer::build(&sample());
        assert_eq!(layer.len(), 5);
        assert_eq!(layer.literal_indices(1, 1), vec![0, 1]);
        assert_eq!(layer.literal_indices(1, 2), vec![2]);
        assert_eq!(layer.literal_indices(2, 1), vec![3]);
        assert_eq!(layer.literal_indices(2, 3), vec![4]);
        assert_eq!(layer.literal_indices(1, 9), Vec::<u64>::new());
        assert_eq!(layer.literal_indices(9, 1), Vec::<u64>::new());
        assert_eq!(layer.literal(0), Some(&lit("a")));
        assert_eq!(layer.literal(4), Some(&lit("y")));
        assert_eq!(layer.literal(5), None);
    }

    #[test]
    fn subjects_by_literal() {
        let layer = DatatypeLayer::build(&sample());
        assert_eq!(layer.subjects_by_literal(1, &lit("a")), vec![1, 2]);
        assert_eq!(layer.subjects_by_literal(1, &lit("b")), vec![1]);
        assert_eq!(layer.subjects_by_literal(2, &lit("y")), vec![3]);
        assert_eq!(layer.subjects_by_literal(1, &lit("zzz")), Vec::<u64>::new());
    }

    #[test]
    fn typed_literals_distinguished() {
        let triples = vec![
            (1, 1, Literal::typed("1", "http://x/int")),
            (1, 2, Literal::string("1")),
        ];
        let layer = DatatypeLayer::build(&triples);
        assert_eq!(
            layer.subjects_by_literal(1, &Literal::typed("1", "http://x/int")),
            vec![1]
        );
        assert_eq!(layer.subjects_by_literal(1, &Literal::string("1")), vec![2]);
    }

    #[test]
    fn scan_predicate() {
        let layer = DatatypeLayer::build(&sample());
        assert_eq!(layer.scan_predicate(1), vec![(1, 0), (1, 1), (2, 2)]);
        assert_eq!(layer.scan_predicate(2), vec![(1, 3), (3, 4)]);
    }

    #[test]
    fn count_predicate() {
        let layer = DatatypeLayer::build(&sample());
        assert_eq!(layer.count_predicate(1), 3);
        assert_eq!(layer.count_predicate(2), 2);
        assert_eq!(layer.count_predicate(3), 0);
    }

    #[test]
    fn redundant_literals_are_kept() {
        // The flat store keeps duplicates — that is the design trade-off of §4.
        let triples = vec![
            (1, 1, lit("3.14")),
            (1, 2, lit("3.14")),
            (1, 3, lit("3.14")),
        ];
        let layer = DatatypeLayer::build(&triples);
        assert_eq!(layer.len(), 3);
        assert_eq!(layer.subjects_by_literal(1, &lit("3.14")), vec![1, 2, 3]);
    }

    #[test]
    fn empty_layer() {
        let layer = DatatypeLayer::build(&[]);
        assert!(layer.is_empty());
        assert_eq!(layer.literal_indices(1, 1), Vec::<u64>::new());
        assert_eq!(layer.iter().count(), 0);
    }

    #[test]
    fn iter_roundtrips() {
        let layer = DatatypeLayer::build(&sample());
        let triples: Vec<(u64, u64, u64)> =
            vec![(1, 1, 0), (1, 1, 1), (1, 2, 2), (2, 1, 3), (2, 3, 4)];
        assert_eq!(layer.iter().collect::<Vec<_>>(), triples);
    }

    #[test]
    fn serialization_roundtrip() {
        let triples = vec![
            (1, 1, Literal::string("plain")),
            (
                1,
                2,
                Literal::typed("3.5", "http://www.w3.org/2001/XMLSchema#double"),
            ),
            (2, 1, Literal::lang("bonjour", "fr")),
        ];
        let layer = DatatypeLayer::build(&triples);
        let buf = layer.to_bytes();
        assert_eq!(buf.len(), layer.serialized_size());
        let back = DatatypeLayer::from_bytes(&buf).unwrap();
        assert_eq!(back.literal(0), Some(&Literal::string("plain")));
        assert_eq!(back.literal(2), Some(&Literal::lang("bonjour", "fr")));
        assert_eq!(back.literal_indices(1, 2), vec![1]);
    }
}
