//! Store construction errors.

use se_litemat::EncodingError;
use std::fmt;

/// An error raised while building a [`crate::SuccinctEdgeStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The LiteMat encoding of the (data-augmented) ontology failed.
    Encoding(EncodingError),
    /// A triple uses a literal subject or non-IRI predicate.
    MalformedTriple(String),
    /// An `rdf:type` triple has a literal or blank object.
    MalformedTypeObject(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Encoding(e) => write!(f, "ontology encoding failed: {e}"),
            BuildError::MalformedTriple(t) => write!(f, "malformed triple: {t}"),
            BuildError::MalformedTypeObject(t) => {
                write!(f, "rdf:type object must be an IRI: {t}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<EncodingError> for BuildError {
    fn from(e: EncodingError) -> Self {
        BuildError::Encoding(e)
    }
}
