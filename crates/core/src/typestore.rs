//! The RDFType store (paper §4).
//!
//! "Triples containing a rdf:type property are stored in the RDFType store
//! layout. [...] We simply store them in a red-black tree in order to
//! maintain the search complexity to O(log(n)) while being fast when we
//! insert rdf:type triples during database construction."
//!
//! Two red-black trees provide the two access paths the optimizer relies on
//! (§5.1: "the latter access path (SO/OS on rdf:type) is more efficient
//! than the one based on the SDS structures"):
//!
//! * `(concept, subject)` — subjects of a concept, and, because LiteMat
//!   sub-hierarchies are identifier intervals, subjects of a concept *and
//!   all its sub-concepts* with one range scan;
//! * `(subject, concept)` — concepts of a subject.

use se_litemat::IdInterval;
use se_rbtree::RbTree;
use std::ops::Bound::{Excluded, Included};

/// Red-black-tree storage for `rdf:type` triples.
#[derive(Debug, Clone, Default)]
pub struct RdfTypeStore {
    /// (concept id, subject id) — the CS access path.
    by_concept: RbTree<(u64, u64), ()>,
    /// (subject id, concept id) — the SC access path.
    by_subject: RbTree<(u64, u64), ()>,
}

impl RdfTypeStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an `rdf:type` triple.
    pub fn insert(&mut self, subject: u64, concept: u64) {
        self.by_concept.insert((concept, subject), ());
        self.by_subject.insert((subject, concept), ());
    }

    /// Number of distinct `rdf:type` triples.
    pub fn len(&self) -> usize {
        self.by_concept.len()
    }

    /// `true` if no triples are stored.
    pub fn is_empty(&self) -> bool {
        self.by_concept.is_empty()
    }

    /// Subjects typed exactly `concept` (no reasoning), ascending.
    pub fn subjects_of(&self, concept: u64) -> Vec<u64> {
        self.subjects_of_interval(IdInterval {
            lower: concept,
            upper: concept + 1,
        })
    }

    /// Subjects typed by any concept in the LiteMat `interval` (the
    /// reasoning-enabled variant), ascending and deduplicated.
    pub fn subjects_of_interval(&self, interval: IdInterval) -> Vec<u64> {
        let mut subjects: Vec<u64> = self
            .by_concept
            .range(
                Included(&(interval.lower, 0)),
                Excluded(&(interval.upper, 0)),
            )
            .map(|((_, s), ())| *s)
            .collect();
        subjects.sort_unstable();
        subjects.dedup();
        subjects
    }

    /// Concepts of `subject`, ascending.
    pub fn concepts_of(&self, subject: u64) -> Vec<u64> {
        self.by_subject
            .range(Included(&(subject, 0)), Excluded(&(subject + 1, 0)))
            .map(|((_, c), ())| *c)
            .collect()
    }

    /// `true` if `subject` is typed exactly `concept`.
    pub fn has_type(&self, subject: u64, concept: u64) -> bool {
        self.by_subject.contains_key(&(subject, concept))
    }

    /// `true` if `subject` has any type inside `interval` (reasoning-aware
    /// membership — the check a bound `?x rdf:type C` TP performs).
    pub fn has_type_in_interval(&self, subject: u64, interval: IdInterval) -> bool {
        self.by_subject
            .range(
                Included(&(subject, interval.lower)),
                Excluded(&(subject, interval.upper)),
            )
            .next()
            .is_some()
    }

    /// Number of `rdf:type` triples whose concept lies in `interval` —
    /// the optimizer's selectivity statistic for type patterns.
    pub fn count_interval(&self, interval: IdInterval) -> usize {
        self.by_concept
            .range(
                Included(&(interval.lower, 0)),
                Excluded(&(interval.upper, 0)),
            )
            .count()
    }

    /// `(concept, subject)` pairs whose concept lies in `interval`, in
    /// `(concept, subject)` order — the raw pairs behind
    /// [`RdfTypeStore::subjects_of_interval`], needed by overlay stores
    /// that must tombstone individual pairs before deduplication.
    pub fn pairs_in_interval(&self, interval: IdInterval) -> Vec<(u64, u64)> {
        self.by_concept
            .range(
                Included(&(interval.lower, 0)),
                Excluded(&(interval.upper, 0)),
            )
            .map(|(&(c, s), ())| (c, s))
            .collect()
    }

    /// Iterates over `(subject, concept)` pairs in subject order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.by_subject.iter().map(|(&(s, c), ())| (s, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RdfTypeStore {
        let mut st = RdfTypeStore::new();
        // Concept ids mimic a LiteMat layout: B=24 covers [24,28) with
        // C=25, D=26 as sub-concepts; A=20 is unrelated.
        st.insert(1, 20);
        st.insert(2, 24);
        st.insert(3, 25);
        st.insert(4, 26);
        st.insert(5, 25);
        st
    }

    #[test]
    fn exact_subjects() {
        let st = sample();
        assert_eq!(st.subjects_of(25), vec![3, 5]);
        assert_eq!(st.subjects_of(24), vec![2]);
        assert_eq!(st.subjects_of(99), Vec::<u64>::new());
    }

    #[test]
    fn interval_subjects_cover_sub_concepts() {
        let st = sample();
        let b = IdInterval {
            lower: 24,
            upper: 28,
        };
        assert_eq!(st.subjects_of_interval(b), vec![2, 3, 4, 5]);
        let a = IdInterval {
            lower: 20,
            upper: 24,
        };
        assert_eq!(st.subjects_of_interval(a), vec![1]);
    }

    #[test]
    fn interval_subjects_dedup() {
        let mut st = sample();
        st.insert(3, 26); // subject 3 typed with two concepts in [24,28)
        let b = IdInterval {
            lower: 24,
            upper: 28,
        };
        assert_eq!(st.subjects_of_interval(b), vec![2, 3, 4, 5]);
    }

    #[test]
    fn concepts_of_subject() {
        let mut st = sample();
        st.insert(1, 25);
        assert_eq!(st.concepts_of(1), vec![20, 25]);
        assert_eq!(st.concepts_of(2), vec![24]);
        assert_eq!(st.concepts_of(99), Vec::<u64>::new());
    }

    #[test]
    fn membership_checks() {
        let st = sample();
        assert!(st.has_type(3, 25));
        assert!(!st.has_type(3, 24));
        let b = IdInterval {
            lower: 24,
            upper: 28,
        };
        assert!(st.has_type_in_interval(3, b));
        assert!(st.has_type_in_interval(2, b));
        assert!(!st.has_type_in_interval(1, b));
    }

    #[test]
    fn counting() {
        let st = sample();
        assert_eq!(
            st.count_interval(IdInterval {
                lower: 24,
                upper: 28
            }),
            4
        );
        assert_eq!(
            st.count_interval(IdInterval {
                lower: 0,
                upper: 100
            }),
            5
        );
        assert_eq!(
            st.count_interval(IdInterval {
                lower: 30,
                upper: 40
            }),
            0
        );
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut st = RdfTypeStore::new();
        st.insert(1, 20);
        st.insert(1, 20);
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn iter_in_subject_order() {
        let st = sample();
        let pairs: Vec<(u64, u64)> = st.iter().collect();
        assert_eq!(pairs, vec![(1, 20), (2, 24), (3, 25), (4, 26), (5, 25)]);
    }
}
