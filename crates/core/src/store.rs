//! The assembled SuccinctEdge store: dictionaries + the three storage
//! components, with triple-pattern evaluation in identifier space
//! (Algorithms 2–4 of the paper) and the LiteMat reasoning variants.

use crate::builder::{build_store, instance_key, key_to_term_arc, BuildStats};
use crate::datatype::DatatypeLayer;
use crate::error::BuildError;
use crate::layer::TripleLayer;
use crate::typestore::RdfTypeStore;
use crate::value::Value;
use se_litemat::{Dictionaries, IdInterval};
use se_ontology::Ontology;
use se_rdf::{Graph, Literal, Term};
use se_sds::{HeapSize, Serialize};

/// The SuccinctEdge RDF store (paper §4).
#[derive(Debug, Clone)]
pub struct SuccinctEdgeStore {
    dicts: Dictionaries,
    object_layer: TripleLayer,
    datatype_layer: DatatypeLayer,
    type_store: RdfTypeStore,
    stats: BuildStats,
}

impl SuccinctEdgeStore {
    /// Builds a store from an ontology and a graph — the paper's back-end
    /// construction (§7.3.1).
    pub fn build(ontology: &Ontology, graph: &Graph) -> Result<Self, BuildError> {
        build_store(ontology, graph)
    }

    pub(crate) fn from_parts(
        dicts: Dictionaries,
        object_layer: TripleLayer,
        datatype_layer: DatatypeLayer,
        type_store: RdfTypeStore,
        stats: BuildStats,
    ) -> Self {
        Self {
            dicts,
            object_layer,
            datatype_layer,
            type_store,
            stats,
        }
    }

    /// Construction statistics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Total number of stored triples.
    pub fn len(&self) -> usize {
        self.stats.n_triples
    }

    /// `true` if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dictionaries (concepts, properties, instances).
    pub fn dictionaries(&self) -> &Dictionaries {
        &self.dicts
    }

    // ---------------------------------------------------------------- encode

    /// Instance identifier of a subject/object resource term.
    pub fn instance_id(&self, term: &Term) -> Option<u64> {
        self.dicts.instances.id(&instance_key(term)?)
    }

    /// LiteMat identifier of a property IRI.
    pub fn property_id(&self, iri: &str) -> Option<u64> {
        self.dicts.properties.id(iri)
    }

    /// LiteMat identifier of a concept IRI.
    pub fn concept_id(&self, iri: &str) -> Option<u64> {
        self.dicts.concepts.id(iri)
    }

    /// Subsumption interval of a property (its whole sub-hierarchy).
    pub fn property_interval(&self, iri: &str) -> Option<IdInterval> {
        self.dicts.properties.interval(iri)
    }

    /// Subsumption interval of a concept.
    pub fn concept_interval(&self, iri: &str) -> Option<IdInterval> {
        self.dicts.concepts.interval(iri)
    }

    // ---------------------------------------------------------------- decode

    /// Decodes any [`Value`] back to an RDF term (the `extract` direction
    /// used when presenting an answer set, §4).
    pub fn value_to_term(&self, value: Value) -> Option<Term> {
        match value {
            Value::Instance(id) => self.dicts.instances.term_arc(id).map(key_to_term_arc),
            Value::Concept(id) => self.dicts.concepts.term_arc(id).map(Term::Iri),
            Value::Property(id) => self.dicts.properties.term_arc(id).map(Term::Iri),
            Value::Literal(idx) => self
                .datatype_layer
                .literal(idx)
                .map(|l| Term::Literal(l.clone())),
        }
    }

    /// The literal at flat-store position `idx`.
    pub fn literal(&self, idx: u64) -> Option<&Literal> {
        self.datatype_layer.literal(idx)
    }

    /// Join-aware equality: two values join if they are the same encoded
    /// value, or if both are literals with equal content (the flat store
    /// keeps duplicates, so equal literals may have different indices).
    pub fn values_join(&self, a: Value, b: Value) -> bool {
        if a == b {
            return true;
        }
        match (a, b) {
            (Value::Literal(x), Value::Literal(y)) => match self.datatype_layer.literal(x) {
                Some(lx) => self.datatype_layer.literal(y) == Some(lx),
                None => false,
            },
            _ => false,
        }
    }

    // ----------------------------------------------------- TP eval (no inference)

    /// `(s, p, ?o)` — paper Algorithm 3, routed to the right layer.
    pub fn objects(&self, p: u64, s: u64) -> Vec<Value> {
        let mut out: Vec<Value> = self
            .object_layer
            .objects(p, s)
            .into_iter()
            .map(Value::Instance)
            .collect();
        out.extend(
            self.datatype_layer
                .literal_indices(p, s)
                .into_iter()
                .map(Value::Literal),
        );
        out
    }

    /// `(?s, p, o)` — paper Algorithm 4.
    pub fn subjects(&self, p: u64, o: &Value) -> Vec<u64> {
        match o {
            Value::Instance(oid) => self.object_layer.subjects(p, *oid),
            Value::Literal(idx) => match self.datatype_layer.literal(*idx) {
                Some(lit) => self.datatype_layer.subjects_by_literal(p, lit),
                None => Vec::new(),
            },
            _ => Vec::new(),
        }
    }

    /// `(?s, p, o)` with a literal constant object.
    pub fn subjects_by_literal(&self, p: u64, lit: &Literal) -> Vec<u64> {
        self.datatype_layer.subjects_by_literal(p, lit)
    }

    /// `(?s, p, ?o)` — full predicate scan, `(subject, object)` pairs
    /// **sorted by subject** (ties: instances before literals).
    ///
    /// Each layer yields subject-sorted pairs; for the rare predicate that
    /// carries both resource and literal objects the two runs are merged,
    /// keeping the global subject order the merge join (§5.2) relies on.
    pub fn scan_predicate(&self, p: u64) -> Vec<(u64, Value)> {
        let inst = self.object_layer.scan_predicate(p);
        let lit = self.datatype_layer.scan_predicate(p);
        let mut out = Vec::with_capacity(inst.len() + lit.len());
        let (mut i, mut j) = (0, 0);
        while i < inst.len() || j < lit.len() {
            let take_inst = match (inst.get(i), lit.get(j)) {
                (Some(a), Some(b)) => a.0 <= b.0,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_inst {
                out.push((inst[i].0, Value::Instance(inst[i].1)));
                i += 1;
            } else {
                out.push((lit[j].0, Value::Literal(lit[j].1)));
                j += 1;
            }
        }
        out
    }

    /// `(s, p, o)` membership.
    pub fn contains(&self, p: u64, s: u64, o: &Value) -> bool {
        match o {
            Value::Instance(oid) => self.object_layer.contains(p, s, *oid),
            Value::Literal(idx) => match self.datatype_layer.literal(*idx) {
                Some(lit) => self
                    .datatype_layer
                    .literal_indices(p, s)
                    .iter()
                    .any(|&i| self.datatype_layer.literal(i) == Some(lit)),
                None => false,
            },
            _ => false,
        }
    }

    // ------------------------------------------------ TP eval (LiteMat inference)

    /// Reasoning-enabled `(s, p⊑, ?o)`: the predicate position ranges over
    /// the LiteMat interval of `p` — "we can replace index_p with a
    /// continuous interval corresponding to a LiteMat interval" (§5.2).
    pub fn objects_interval(&self, p_iv: IdInterval, s: u64) -> Vec<Value> {
        let mut out = Vec::new();
        for idx in self.object_layer.predicate_range(p_iv.lower, p_iv.upper) {
            let p = self.object_layer.predicate_at(idx);
            out.extend(
                self.object_layer
                    .objects(p, s)
                    .into_iter()
                    .map(Value::Instance),
            );
        }
        for idx in self.datatype_layer.predicate_range(p_iv.lower, p_iv.upper) {
            let p = self.datatype_layer.predicate_at(idx);
            out.extend(
                self.datatype_layer
                    .literal_indices(p, s)
                    .into_iter()
                    .map(Value::Literal),
            );
        }
        out
    }

    /// Reasoning-enabled `(?s, p⊑, o)`.
    pub fn subjects_interval(&self, p_iv: IdInterval, o: &Value) -> Vec<u64> {
        let mut out = Vec::new();
        match o {
            Value::Instance(oid) => {
                for idx in self.object_layer.predicate_range(p_iv.lower, p_iv.upper) {
                    let p = self.object_layer.predicate_at(idx);
                    out.extend(self.object_layer.subjects(p, *oid));
                }
            }
            Value::Literal(lit_idx) => {
                if let Some(lit) = self.datatype_layer.literal(*lit_idx) {
                    for idx in self.datatype_layer.predicate_range(p_iv.lower, p_iv.upper) {
                        let p = self.datatype_layer.predicate_at(idx);
                        out.extend(self.datatype_layer.subjects_by_literal(p, lit));
                    }
                }
            }
            _ => {}
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Reasoning-enabled `(?s, p⊑, lit)`: subjects carrying the literal
    /// under any property of the interval (each sub-property checked via
    /// the datatype layer).
    pub fn subjects_by_literal_interval(&self, p_iv: IdInterval, lit: &Literal) -> Vec<u64> {
        let mut subs = Vec::new();
        for idx in self.datatype_layer.predicate_range(p_iv.lower, p_iv.upper) {
            subs.extend(
                self.datatype_layer
                    .subjects_by_literal(self.datatype_layer.predicate_at(idx), lit),
            );
        }
        subs.sort_unstable();
        subs.dedup();
        subs
    }

    /// Reasoning-enabled `(?s, p⊑, ?o)`.
    pub fn scan_interval(&self, p_iv: IdInterval) -> Vec<(u64, Value)> {
        let mut out = Vec::new();
        for idx in self.object_layer.predicate_range(p_iv.lower, p_iv.upper) {
            out.extend(
                self.object_layer
                    .scan_predicate_index(idx)
                    .into_iter()
                    .map(|(s, o)| (s, Value::Instance(o))),
            );
        }
        for idx in self.datatype_layer.predicate_range(p_iv.lower, p_iv.upper) {
            out.extend(
                self.datatype_layer
                    .scan_predicate_index(idx)
                    .into_iter()
                    .map(|(s, i)| (s, Value::Literal(i))),
            );
        }
        out
    }

    // ----------------------------------------------------------- rdf:type TPs

    /// `(?s, rdf:type, C)` without reasoning.
    pub fn subjects_of_concept(&self, c: u64) -> Vec<u64> {
        self.type_store.subjects_of(c)
    }

    /// `(?s, rdf:type, C)` with LiteMat reasoning over C's sub-hierarchy.
    pub fn subjects_of_concept_interval(&self, iv: IdInterval) -> Vec<u64> {
        self.type_store.subjects_of_interval(iv)
    }

    /// `(s, rdf:type, ?c)` — concepts of a subject.
    pub fn concepts_of_subject(&self, s: u64) -> Vec<u64> {
        self.type_store.concepts_of(s)
    }

    /// `(s, rdf:type, C)` membership with reasoning.
    pub fn has_type_in_interval(&self, s: u64, iv: IdInterval) -> bool {
        self.type_store.has_type_in_interval(s, iv)
    }

    /// `(s, rdf:type, C)` exact membership.
    pub fn has_type(&self, s: u64, c: u64) -> bool {
        self.type_store.has_type(s, c)
    }

    // ------------------------------------------------------------- statistics

    /// Paper Algorithm 2: triples with predicate `p` (both layers).
    pub fn predicate_count(&self, p: u64) -> usize {
        self.object_layer.count_predicate(p) + self.datatype_layer.count_predicate(p)
    }

    /// Triples whose predicate lies in the LiteMat interval.
    pub fn predicate_interval_count(&self, iv: IdInterval) -> usize {
        let mut n = 0;
        for idx in self.object_layer.predicate_range(iv.lower, iv.upper) {
            n += self
                .object_layer
                .count_predicate(self.object_layer.predicate_at(idx));
        }
        for idx in self.datatype_layer.predicate_range(iv.lower, iv.upper) {
            n += self
                .datatype_layer
                .count_predicate(self.datatype_layer.predicate_at(idx));
        }
        n
    }

    /// `rdf:type` triples whose concept lies in the interval.
    pub fn type_count(&self, iv: IdInterval) -> usize {
        self.type_store.count_interval(iv)
    }

    // ------------------------------------------------------------------ sizes

    /// Bytes of heap memory used by the triple structures and dictionaries
    /// (the paper's Figure 11 RAM-footprint metric).
    pub fn memory_footprint(&self) -> usize {
        self.object_layer.heap_size()
            + self.datatype_layer.heap_size()
            + self.type_store_heap_size()
            + self.dictionary_heap_size()
    }

    fn type_store_heap_size(&self) -> usize {
        // Each RB node: key (u64, u64) + color + two child pointers, twice
        // (two access paths).
        self.type_store.len() * 2 * (16 + 1 + 2 * std::mem::size_of::<usize>())
    }

    fn dictionary_heap_size(&self) -> usize {
        // Conservative estimate: string bytes + map entry overhead.
        let inst: usize = self
            .dicts
            .instances
            .iter()
            .map(|(_, s)| 2 * s.len() + 48)
            .sum();
        let conc: usize = self
            .dicts
            .concepts
            .encoding()
            .iter()
            .map(|(t, _)| 2 * t.len() + 48)
            .sum();
        let prop: usize = self
            .dicts
            .properties
            .encoding()
            .iter()
            .map(|(t, _)| 2 * t.len() + 48)
            .sum();
        inst + conc + prop
    }

    /// On-disk size of the triple structures, dictionary excluded (the
    /// paper's Figure 10 metric).
    pub fn triple_serialized_size(&self) -> usize {
        self.object_layer.serialized_size()
            + self.datatype_layer.serialized_size()
            + 8
            + self.type_store.len() * 16
    }

    /// On-disk size of the dictionaries (the paper's Figure 9 metric).
    pub fn dictionary_serialized_size(&self) -> usize {
        self.dicts.serialized_size()
    }

    /// Direct access to the object layer (benches/ablations).
    pub fn object_layer(&self) -> &TripleLayer {
        &self.object_layer
    }

    /// Direct access to the datatype layer.
    pub fn datatype_layer(&self) -> &DatatypeLayer {
        &self.datatype_layer
    }

    /// Direct access to the RDFType store.
    pub fn type_store(&self) -> &RdfTypeStore {
        &self.type_store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_rdf::vocab::rdf;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        let t = |s: &str, p: &str, o: Term| {
            se_rdf::Triple::new(iri(s), Term::iri(format!("http://x/{p}")), o)
        };
        g.insert(se_rdf::Triple::new(
            iri("s1"),
            Term::iri(rdf::TYPE),
            iri("C1"),
        ));
        g.insert(se_rdf::Triple::new(
            iri("s2"),
            Term::iri(rdf::TYPE),
            iri("C2"),
        ));
        g.insert(t("s1", "knows", iri("s2")));
        g.insert(t("s1", "knows", iri("s3")));
        g.insert(t("s2", "knows", iri("s3")));
        g.insert(t("s1", "age", Term::literal("42")));
        g.insert(t("s2", "age", Term::literal("37")));
        g
    }

    fn sample_ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add_class("http://x/C2", "http://x/C1");
        o.add_object_property("http://x/knows");
        o.add_datatype_property("http://x/age");
        o
    }

    fn store() -> SuccinctEdgeStore {
        SuccinctEdgeStore::build(&sample_ontology(), &sample_graph()).unwrap()
    }

    #[test]
    fn build_routes_triples() {
        let st = store();
        assert_eq!(st.len(), 7);
        assert_eq!(st.stats().n_type_triples, 2);
        assert_eq!(st.stats().n_object_triples, 3);
        assert_eq!(st.stats().n_datatype_triples, 2);
        assert_eq!(st.stats().n_augmented_classes, 0);
        assert_eq!(st.stats().n_augmented_properties, 0);
    }

    #[test]
    fn objects_and_subjects() {
        let st = store();
        let knows = st.property_id("http://x/knows").unwrap();
        let s1 = st.instance_id(&iri("s1")).unwrap();
        let s2 = st.instance_id(&iri("s2")).unwrap();
        let s3 = st.instance_id(&iri("s3")).unwrap();
        let objs = st.objects(knows, s1);
        assert_eq!(objs.len(), 2);
        assert!(objs.contains(&Value::Instance(s2)));
        assert!(objs.contains(&Value::Instance(s3)));
        assert_eq!(st.subjects(knows, &Value::Instance(s3)), {
            let mut v = vec![s1, s2];
            v.sort_unstable();
            v
        });
    }

    #[test]
    fn datatype_objects() {
        let st = store();
        let age = st.property_id("http://x/age").unwrap();
        let s1 = st.instance_id(&iri("s1")).unwrap();
        let objs = st.objects(age, s1);
        assert_eq!(objs.len(), 1);
        let Term::Literal(lit) = st.value_to_term(objs[0]).unwrap() else {
            panic!("expected a literal");
        };
        assert_eq!(&*lit.value, "42");
    }

    #[test]
    fn subjects_by_literal() {
        let st = store();
        let age = st.property_id("http://x/age").unwrap();
        let s2 = st.instance_id(&iri("s2")).unwrap();
        assert_eq!(
            st.subjects_by_literal(age, &Literal::string("37")),
            vec![s2]
        );
        assert!(st
            .subjects_by_literal(age, &Literal::string("99"))
            .is_empty());
    }

    #[test]
    fn type_queries_with_reasoning() {
        let st = store();
        let s1 = st.instance_id(&iri("s1")).unwrap();
        let s2 = st.instance_id(&iri("s2")).unwrap();
        let c1 = st.concept_id("http://x/C1").unwrap();
        // No reasoning: only s1 is directly typed C1.
        assert_eq!(st.subjects_of_concept(c1), vec![s1]);
        // With reasoning: C2 ⊑ C1, so s2 joins.
        let iv = st.concept_interval("http://x/C1").unwrap();
        let mut expected = vec![s1, s2];
        expected.sort_unstable();
        assert_eq!(st.subjects_of_concept_interval(iv), expected);
        assert!(st.has_type_in_interval(s2, iv));
        assert!(!st.has_type(s2, c1));
    }

    #[test]
    fn scan_predicate() {
        let st = store();
        let knows = st.property_id("http://x/knows").unwrap();
        assert_eq!(st.scan_predicate(knows).len(), 3);
        let age = st.property_id("http://x/age").unwrap();
        assert_eq!(st.scan_predicate(age).len(), 2);
    }

    #[test]
    fn scan_predicate_mixed_objects_is_subject_sorted() {
        // A predicate carrying both resource and literal objects: the two
        // layer runs must merge into one subject-sorted list (the merge
        // join's contract), not concatenate.
        let mut g = Graph::new();
        for i in 0..6 {
            g.insert(se_rdf::Triple::new(
                iri(&format!("s{i}")),
                Term::iri("http://x/mixed"),
                if i % 2 == 0 {
                    iri("target")
                } else {
                    Term::literal(format!("v{i}"))
                },
            ));
        }
        let st = SuccinctEdgeStore::build(&Ontology::new(), &g).unwrap();
        let p = st.property_id("http://x/mixed").unwrap();
        let pairs = st.scan_predicate(p);
        assert_eq!(pairs.len(), 6);
        let subjects: Vec<u64> = pairs.iter().map(|(s, _)| *s).collect();
        let mut sorted = subjects.clone();
        sorted.sort_unstable();
        assert_eq!(subjects, sorted, "scan must be globally subject-sorted");
    }

    #[test]
    fn predicate_counts() {
        let st = store();
        let knows = st.property_id("http://x/knows").unwrap();
        let age = st.property_id("http://x/age").unwrap();
        assert_eq!(st.predicate_count(knows), 3);
        assert_eq!(st.predicate_count(age), 2);
        assert_eq!(st.predicate_count(999_999), 0);
    }

    #[test]
    fn augmentation_covers_unknown_terms() {
        // Build with an EMPTY ontology: everything is augmented.
        let st = SuccinctEdgeStore::build(&Ontology::new(), &sample_graph()).unwrap();
        assert_eq!(st.len(), 7);
        assert!(st.stats().n_augmented_classes >= 2);
        assert!(st.stats().n_augmented_properties >= 2);
        let knows = st.property_id("http://x/knows").unwrap();
        assert_eq!(st.predicate_count(knows), 3);
    }

    #[test]
    fn empty_graph() {
        let st = SuccinctEdgeStore::build(&sample_ontology(), &Graph::new()).unwrap();
        assert!(st.is_empty());
        assert!(st.memory_footprint() > 0); // dictionaries remain
    }

    #[test]
    fn duplicate_triples_deduplicated() {
        let mut g = sample_graph();
        for t in sample_graph() {
            g.insert(t);
        }
        let st = SuccinctEdgeStore::build(&sample_ontology(), &g).unwrap();
        assert_eq!(st.len(), 7);
    }

    #[test]
    fn literal_subject_rejected() {
        let mut g = Graph::new();
        // Bypass the debug assertion of Triple::new by constructing directly.
        g.insert(se_rdf::Triple {
            subject: Term::literal("bad"),
            predicate: Term::iri("http://x/p"),
            object: iri("o"),
        });
        let err = SuccinctEdgeStore::build(&Ontology::new(), &g).unwrap_err();
        assert!(matches!(err, BuildError::MalformedTriple(_)));
    }

    #[test]
    fn type_with_literal_object_rejected() {
        let mut g = Graph::new();
        g.insert(se_rdf::Triple {
            subject: iri("s"),
            predicate: Term::iri(rdf::TYPE),
            object: Term::literal("bad"),
        });
        let err = SuccinctEdgeStore::build(&Ontology::new(), &g).unwrap_err();
        assert!(matches!(err, BuildError::MalformedTypeObject(_)));
    }

    #[test]
    fn property_interval_reasoning() {
        // worksFor ⊑ memberOf: scanning memberOf's interval sees both.
        let mut o = Ontology::new();
        o.add_property("http://x/worksFor", "http://x/memberOf");
        let mut g = Graph::new();
        g.insert(se_rdf::Triple::new(
            iri("a"),
            Term::iri("http://x/memberOf"),
            iri("org1"),
        ));
        g.insert(se_rdf::Triple::new(
            iri("b"),
            Term::iri("http://x/worksFor"),
            iri("org1"),
        ));
        let st = SuccinctEdgeStore::build(&o, &g).unwrap();
        let iv = st.property_interval("http://x/memberOf").unwrap();
        let org1 = st.instance_id(&iri("org1")).unwrap();
        let subs = st.subjects_interval(iv, &Value::Instance(org1));
        assert_eq!(subs.len(), 2);
        // Without reasoning only the direct assertion is found.
        let member_of = st.property_id("http://x/memberOf").unwrap();
        assert_eq!(st.subjects(member_of, &Value::Instance(org1)).len(), 1);
        // Counts follow the same logic.
        assert_eq!(st.predicate_interval_count(iv), 2);
        assert_eq!(st.predicate_count(member_of), 1);
    }

    #[test]
    fn values_join_handles_duplicate_literals() {
        let mut g = Graph::new();
        g.insert(se_rdf::Triple::new(
            iri("a"),
            Term::iri("http://x/v"),
            Term::literal("3.14"),
        ));
        g.insert(se_rdf::Triple::new(
            iri("b"),
            Term::iri("http://x/v"),
            Term::literal("3.14"),
        ));
        let st = SuccinctEdgeStore::build(&Ontology::new(), &g).unwrap();
        let v = st.property_id("http://x/v").unwrap();
        let a = st.instance_id(&iri("a")).unwrap();
        let b = st.instance_id(&iri("b")).unwrap();
        let la = st.objects(v, a)[0];
        let lb = st.objects(v, b)[0];
        assert_ne!(la, lb, "flat store keeps duplicates");
        assert!(
            st.values_join(la, lb),
            "join equality sees through duplicates"
        );
    }

    #[test]
    fn sizes_are_positive_and_consistent() {
        let st = store();
        assert!(st.memory_footprint() > 0);
        assert!(st.triple_serialized_size() > 0);
        assert!(st.dictionary_serialized_size() > 0);
    }
}
