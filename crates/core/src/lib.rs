//! # se-core — the SuccinctEdge RDF store
//!
//! The paper's primary contribution (§4–§5): a compact, decompression-free,
//! self-index, in-memory RDF store. One logical PSO index, laid out as three
//! storage components:
//!
//! * the **object-triple store** ([`layer::TripleLayer`]): triples whose
//!   object is a resource, sorted `(P, S, O)` and represented as wavelet
//!   trees (`WT_p`, `WT_s`, `WT_o`) linked by two bitmaps (`BM_ps`,
//!   `BM_so`) — the structure of the paper's Figure 5(b);
//! * the **datatype-triple store** ([`datatype::DatatypeLayer`]): triples
//!   whose object is a literal; same predicate/subject layers, objects in a
//!   flat literal store ("we prefer to store the values as they have been
//!   sent by sensors, possibly with some redundancy" §4);
//! * the **RDFType store** ([`typestore::RdfTypeStore`]): `rdf:type`
//!   triples in red-black trees keyed both `(concept, subject)` and
//!   `(subject, concept)`.
//!
//! Triple patterns are evaluated *without decompressing anything* by
//! translating them into `access` / `rank` / `select` / `range_search`
//! operations (the paper's Algorithms 2, 3 and 4, implemented in
//! [`store::SuccinctEdgeStore`]). RDFS reasoning arrives for free: a LiteMat
//! identifier interval replaces a single identifier and the same SDS
//! navigation answers the inferred pattern.

pub mod builder;
pub mod datatype;
pub mod error;
pub mod layer;
pub mod persist;
pub mod source;
pub mod store;
pub mod typestore;
pub mod value;

pub use builder::{augment_ontology, BuildStats};
pub use error::BuildError;
pub use source::TripleSource;
pub use store::SuccinctEdgeStore;
pub use value::Value;
