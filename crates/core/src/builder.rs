//! Store construction (the paper's "back-end construction", §7.3.1).
//!
//! Building a SuccinctEdge store from an RDF graph proceeds in four steps:
//!
//! 1. **Ontology augmentation** — classes and properties that occur in the
//!    data but not in the ontology are attached under the hierarchy roots,
//!    so every term is LiteMat-encodable (the paper assumes stable, complete
//!    ontologies prepared on the administration server; augmentation makes
//!    the implementation robust to drift without changing the semantics of
//!    declared terms).
//! 2. **Dictionary encoding** — LiteMat runs over both hierarchies;
//!    instances receive dense identifiers in first-seen order.
//! 3. **Triple encoding + statistics** — every triple is translated to
//!    identifier space; dictionaries record occurrence counts (the
//!    creation-time statistics of §5.1).
//! 4. **Layer construction** — object triples are sorted `(p, s, o)` and
//!    frozen into the SDS layers; datatype triples into their layer;
//!    `rdf:type` triples are inserted into the red-black trees.

use crate::datatype::DatatypeLayer;
use crate::error::BuildError;
use crate::layer::TripleLayer;
use crate::store::SuccinctEdgeStore;
use crate::typestore::RdfTypeStore;
use se_litemat::Dictionaries;
use se_ontology::Ontology;
use se_rdf::{Graph, Literal, Term};
use std::collections::BTreeSet;

/// Construction statistics reported by [`SuccinctEdgeStore::build`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Total triples ingested (after deduplication).
    pub n_triples: usize,
    /// `rdf:type` triples routed to the RDFType store.
    pub n_type_triples: usize,
    /// Object-property triples in the SDS layers.
    pub n_object_triples: usize,
    /// Datatype-property triples in the flat-literal layer.
    pub n_datatype_triples: usize,
    /// Classes added to the ontology because they only occur in the data.
    pub n_augmented_classes: usize,
    /// Properties added to the ontology because they only occur in the data.
    pub n_augmented_properties: usize,
}

/// Key under which a subject/object resource is stored in the instance
/// dictionary. Blank nodes are prefixed to avoid colliding with IRIs.
/// Public so overlay stores (`se-stream`) encode terms identically.
pub fn instance_key(term: &Term) -> Option<String> {
    match term {
        Term::Iri(iri) => Some(iri.to_string()),
        Term::Blank(label) => Some(format!("_:{label}")),
        Term::Literal(_) => None,
    }
}

/// Decodes an instance-dictionary key back into a [`Term`]; IRIs reuse the
/// dictionary's shared `Arc` without copying.
pub fn key_to_term_arc(key: std::sync::Arc<str>) -> Term {
    match key.strip_prefix("_:") {
        Some(label) => Term::blank(label.to_string()),
        None => Term::Iri(key),
    }
}

/// Step 1 of store construction, exposed for stores that manage their own
/// layer assembly (the sharded store of `se-stream` encodes one *global*
/// dictionary set and builds per-shard layers against it): returns the
/// ontology augmented with every class/property that occurs in `graph` but
/// not in `ontology`, plus the counts of augmented classes and properties.
pub fn augment_ontology(
    ontology: &Ontology,
    graph: &Graph,
) -> Result<(Ontology, usize, usize), BuildError> {
    let mut onto = ontology.clone();
    let known_classes: BTreeSet<&str> = onto
        .class_edges
        .iter()
        .flat_map(|(a, b)| [a.as_str(), b.as_str()])
        .chain(onto.extra_classes.iter().map(String::as_str))
        .chain([se_rdf::vocab::owl::THING])
        .collect();
    let known_props: BTreeSet<&str> = onto
        .property_edges
        .iter()
        .flat_map(|(a, b)| [a.as_str(), b.as_str()])
        .chain(onto.extra_object_properties.iter().map(String::as_str))
        .chain(onto.extra_datatype_properties.iter().map(String::as_str))
        .collect();
    let mut new_classes = BTreeSet::new();
    let mut new_obj_props = BTreeSet::new();
    let mut new_data_props = BTreeSet::new();
    for t in graph {
        let Some(p) = t.predicate.as_iri() else {
            return Err(BuildError::MalformedTriple(t.to_string()));
        };
        if t.subject.is_literal() {
            return Err(BuildError::MalformedTriple(t.to_string()));
        }
        if t.is_type_triple() {
            let Some(class) = t.object.as_iri() else {
                return Err(BuildError::MalformedTypeObject(t.to_string()));
            };
            if !known_classes.contains(class) {
                new_classes.insert(class.to_string());
            }
        } else if !known_props.contains(p) {
            if t.object.is_literal() {
                new_data_props.insert(p.to_string());
            } else {
                new_obj_props.insert(p.to_string());
            }
        }
    }
    // A predicate seen with both literal and resource objects is registered
    // as an object property (the datatype layer does not need hierarchy
    // placement to store its triples).
    for p in new_obj_props.iter() {
        new_data_props.remove(p);
    }
    let stats_aug_classes = new_classes.len();
    let stats_aug_props = new_obj_props.len() + new_data_props.len();
    onto.extra_classes.extend(new_classes);
    onto.extra_object_properties.extend(new_obj_props);
    onto.extra_datatype_properties.extend(new_data_props);
    Ok((onto, stats_aug_classes, stats_aug_props))
}

pub(crate) fn build_store(
    ontology: &Ontology,
    graph: &Graph,
) -> Result<SuccinctEdgeStore, BuildError> {
    // ---- step 1: augment the ontology with data-only terms ---------------
    let (onto, stats_aug_classes, stats_aug_props) = augment_ontology(ontology, graph)?;

    // ---- step 2: LiteMat encoding -----------------------------------------
    let mut dicts: Dictionaries = onto.encode()?;

    // ---- step 3: triple encoding + statistics -----------------------------
    let mut type_pairs: Vec<(u64, u64)> = Vec::new(); // (subject, concept)
    let mut object_triples: Vec<(u64, u64, u64)> = Vec::new();
    let mut datatype_triples: Vec<(u64, u64, Literal)> = Vec::new();
    for t in graph {
        let p = t.predicate.as_iri().expect("validated above");
        let s_key = instance_key(&t.subject).expect("validated above");
        let s_id = dicts.instances.get_or_insert(&s_key);
        dicts.instances.record_occurrence(s_id);
        if t.is_type_triple() {
            let class = t.object.as_iri().expect("validated above");
            let c_id = dicts
                .concepts
                .id(class)
                .expect("augmentation covers all data classes");
            dicts.concepts.record_occurrence(c_id);
            type_pairs.push((s_id, c_id));
        } else {
            let p_id = dicts
                .properties
                .id(p)
                .expect("augmentation covers all data properties");
            dicts.properties.record_occurrence(p_id);
            match &t.object {
                Term::Literal(lit) => {
                    datatype_triples.push((p_id, s_id, lit.clone()));
                }
                other => {
                    let o_key = instance_key(other).expect("resource object");
                    let o_id = dicts.instances.get_or_insert(&o_key);
                    dicts.instances.record_occurrence(o_id);
                    object_triples.push((p_id, s_id, o_id));
                }
            }
        }
    }

    // ---- step 4: freeze the layers -----------------------------------------
    object_triples.sort_unstable();
    object_triples.dedup();
    datatype_triples.sort_unstable_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
    datatype_triples.dedup();
    type_pairs.sort_unstable();
    type_pairs.dedup();

    let object_layer = TripleLayer::build(&object_triples);
    let datatype_layer = DatatypeLayer::build(&datatype_triples);
    let mut type_store = RdfTypeStore::new();
    for &(s, c) in &type_pairs {
        type_store.insert(s, c);
    }

    let stats = BuildStats {
        n_triples: object_triples.len() + datatype_triples.len() + type_pairs.len(),
        n_type_triples: type_pairs.len(),
        n_object_triples: object_triples.len(),
        n_datatype_triples: datatype_triples.len(),
        n_augmented_classes: stats_aug_classes,
        n_augmented_properties: stats_aug_props,
    };
    Ok(SuccinctEdgeStore::from_parts(
        dicts,
        object_layer,
        datatype_layer,
        type_store,
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_key_distinguishes_blank_from_iri() {
        assert_eq!(
            instance_key(&Term::iri("http://x/a")).as_deref(),
            Some("http://x/a")
        );
        assert_eq!(instance_key(&Term::blank("b0")).as_deref(), Some("_:b0"));
        assert_eq!(instance_key(&Term::literal("v")), None);
    }

    #[test]
    fn key_roundtrip() {
        assert_eq!(
            key_to_term_arc("http://x/a".into()),
            Term::iri("http://x/a")
        );
        assert_eq!(key_to_term_arc("_:b0".into()), Term::blank("b0"));
    }
}
