//! The object-triple SDS layer — the paper's Figure 5(b).
//!
//! Triples `(p, s, o)` with resource objects, sorted ascending by
//! `(p, s, o)`, are decomposed into five succinct structures:
//!
//! ```text
//! WT_p : the distinct predicates, ascending           (one entry per predicate)
//! BM_ps: one bit per distinct (p,s) pair; '1' marks the first pair of a predicate
//! WT_s : the subject of each distinct (p,s) pair
//! BM_so: one bit per triple; '1' marks the first triple of a (p,s) pair
//! WT_o : the object of each triple
//! ```
//!
//! Navigation is pure rank/select arithmetic. The subject run of the `k`-th
//! predicate is `[BM_ps.select1(k+1), BM_ps.select1(k+2))` (paper Algorithm
//! 2 lines 3–4), and the object run of the `i`-th `(p,s)` pair is
//! `[BM_so.select1(i+1), BM_so.select1(i+2))`. Because both `WT_s` runs and
//! `WT_o` runs are sorted, `range_search` prunes lookups and merge joins
//! become possible downstream (§5.2).

use se_sds::{HeapSize, RsBitVec, Serialize, WaveletTree};
use std::io;

/// The five-structure SDS layer over one sorted `(p, s, o)` triple set.
#[derive(Debug, Clone)]
pub struct TripleLayer {
    wt_p: WaveletTree,
    bm_ps: RsBitVec,
    wt_s: WaveletTree,
    bm_so: RsBitVec,
    wt_o: WaveletTree,
    n_triples: usize,
}

impl TripleLayer {
    /// Builds the layer from triples that MUST be sorted ascending by
    /// `(p, s, o)` and deduplicated.
    ///
    /// # Panics
    /// Panics (debug builds) if the input is not sorted/deduplicated.
    pub fn build(triples: &[(u64, u64, u64)]) -> Self {
        debug_assert!(
            triples.windows(2).all(|w| w[0] < w[1]),
            "TripleLayer input must be sorted and deduplicated"
        );
        let mut preds = Vec::new();
        let mut ps_bits = Vec::new();
        let mut subjects = Vec::new();
        let mut so_bits = Vec::with_capacity(triples.len());
        let mut objects = Vec::with_capacity(triples.len());
        let mut last_p: Option<u64> = None;
        let mut last_ps: Option<(u64, u64)> = None;
        for &(p, s, o) in triples {
            let new_pair = last_ps != Some((p, s));
            if new_pair {
                let new_pred = last_p != Some(p);
                if new_pred {
                    preds.push(p);
                    last_p = Some(p);
                }
                ps_bits.push(new_pred);
                subjects.push(s);
                last_ps = Some((p, s));
            }
            so_bits.push(new_pair);
            objects.push(o);
        }
        Self {
            wt_p: WaveletTree::new(&preds),
            bm_ps: RsBitVec::from_bits(ps_bits),
            wt_s: WaveletTree::new(&subjects),
            bm_so: RsBitVec::from_bits(so_bits),
            wt_o: WaveletTree::new(&objects),
            n_triples: triples.len(),
        }
    }

    /// Number of triples stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_triples
    }

    /// `true` if the layer holds no triples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_triples == 0
    }

    /// Number of distinct predicates.
    #[inline]
    pub fn predicate_count(&self) -> usize {
        self.wt_p.len()
    }

    /// Position of predicate `p` in `WT_p`, i.e. the paper's
    /// `index_p ← wt_p.select(1, id_p)`.
    pub fn predicate_index(&self, p: u64) -> Option<usize> {
        self.wt_p.select(1, p)
    }

    /// The `k`-th distinct predicate (ascending order).
    pub fn predicate_at(&self, k: usize) -> u64 {
        self.wt_p.access(k)
    }

    /// Positions in `WT_p` of all predicates with identifier in
    /// `[lo, hi)`. Because `WT_p` is ascending, the result is a contiguous
    /// index run — this is the "continuous interval corresponding to a
    /// LiteMat interval" of §5.2. Found by binary search over `WT_p`.
    pub fn predicate_range(&self, lo: u64, hi: u64) -> std::ops::Range<usize> {
        let n = self.wt_p.len();
        let lower = self.partition_point(n, |v| v < lo);
        let upper = self.partition_point(n, |v| v < hi);
        lower..upper
    }

    /// First index in `[0, n)` where `!pred(wt_p[idx])`, binary search.
    fn partition_point(&self, n: usize, pred: impl Fn(u64) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if pred(self.wt_p.access(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The subject-run bounds (positions in `WT_s`) of the predicate at
    /// `index_p` — paper Algorithm 2 lines 3–4, with the end-of-structure
    /// case (`select` past the last one) resolved to the layer length.
    pub fn subject_bounds(&self, index_p: usize) -> (usize, usize) {
        let begin = self
            .bm_ps
            .select1(index_p + 1)
            .expect("predicate index within bounds");
        let end = self
            .bm_ps
            .select1(index_p + 2)
            .unwrap_or_else(|| self.wt_s.len());
        (begin, end)
    }

    /// The object-run bounds (positions in `WT_o`) of the `(p, s)` pair at
    /// `index_s`.
    pub fn object_bounds(&self, index_s: usize) -> (usize, usize) {
        let begin = self
            .bm_so
            .select1(index_s + 1)
            .expect("pair index within bounds");
        let end = self
            .bm_so
            .select1(index_s + 2)
            .unwrap_or_else(|| self.wt_o.len());
        (begin, end)
    }

    /// Paper Algorithm 2: number of triples whose predicate is `p`,
    /// computed purely with select operations on the bitmaps.
    pub fn count_predicate(&self, p: u64) -> usize {
        let Some(index_p) = self.predicate_index(p) else {
            return 0;
        };
        let (s_begin, s_end) = self.subject_bounds(index_p);
        let o_begin = self
            .bm_so
            .select1(s_begin + 1)
            .expect("pair start within bounds");
        let o_end = self
            .bm_so
            .select1(s_end + 1)
            .unwrap_or_else(|| self.wt_o.len());
        o_end - o_begin
    }

    /// Paper Algorithm 3: `(s, p, ?o)` — objects of a subject/predicate
    /// pair. `WT_s.range_search` locates the subject inside the
    /// predicate's (sorted) subject run; the `BM_so` bounds then delimit
    /// its object run.
    pub fn objects(&self, p: u64, s: u64) -> Vec<u64> {
        let Some(index_p) = self.predicate_index(p) else {
            return Vec::new();
        };
        let (s_begin, s_end) = self.subject_bounds(index_p);
        let mut res = Vec::new();
        for index_s in self.wt_s.range_search(s_begin, s_end, s) {
            let (o_begin, o_end) = self.object_bounds(index_s);
            for index_o in o_begin..o_end {
                res.push(self.wt_o.access(index_o));
            }
        }
        res
    }

    /// Paper Algorithm 4: `(?s, p, o)` — subjects connecting to `o` through
    /// `p`. The object run of the whole predicate is scanned with
    /// `WT_o.range_search`; `BM_so.rank` maps each hit back to its `(p,s)`
    /// pair, whose subject `WT_s.access` yields.
    pub fn subjects(&self, p: u64, o: u64) -> Vec<u64> {
        let Some(index_p) = self.predicate_index(p) else {
            return Vec::new();
        };
        let (s_begin, s_end) = self.subject_bounds(index_p);
        let o_begin = self
            .bm_so
            .select1(s_begin + 1)
            .expect("pair start within bounds");
        let o_end = self
            .bm_so
            .select1(s_end + 1)
            .unwrap_or_else(|| self.wt_o.len());
        let mut res = Vec::new();
        for index_o in self.wt_o.range_search(o_begin, o_end, o) {
            let index_s = self.bm_so.rank1(index_o + 1) - 1;
            res.push(self.wt_s.access(index_s));
        }
        res
    }

    /// `(?s, p, ?o)`: every `(subject, object)` pair of predicate `p`, in
    /// `(s, o)` order.
    pub fn scan_predicate(&self, p: u64) -> Vec<(u64, u64)> {
        let Some(index_p) = self.predicate_index(p) else {
            return Vec::new();
        };
        self.scan_predicate_index(index_p)
    }

    /// Like [`TripleLayer::scan_predicate`] but addressed by `WT_p`
    /// position (used for LiteMat predicate intervals).
    pub fn scan_predicate_index(&self, index_p: usize) -> Vec<(u64, u64)> {
        let (s_begin, s_end) = self.subject_bounds(index_p);
        let mut res = Vec::new();
        for index_s in s_begin..s_end {
            let s = self.wt_s.access(index_s);
            let (o_begin, o_end) = self.object_bounds(index_s);
            for index_o in o_begin..o_end {
                res.push((s, self.wt_o.access(index_o)));
            }
        }
        res
    }

    /// `(s, p, o)` membership test.
    pub fn contains(&self, p: u64, s: u64, o: u64) -> bool {
        let Some(index_p) = self.predicate_index(p) else {
            return false;
        };
        let (s_begin, s_end) = self.subject_bounds(index_p);
        for index_s in self.wt_s.range_search(s_begin, s_end, s) {
            let (o_begin, o_end) = self.object_bounds(index_s);
            if self.wt_o.count_range(o_begin, o_end, o) > 0 {
                return true;
            }
        }
        false
    }

    /// Iterates over all `(p, s, o)` triples in sorted order (test/debug
    /// helper; decodes through the wavelet trees).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        (0..self.wt_p.len()).flat_map(move |index_p| {
            let p = self.wt_p.access(index_p);
            let (s_begin, s_end) = self.subject_bounds(index_p);
            (s_begin..s_end).flat_map(move |index_s| {
                let s = self.wt_s.access(index_s);
                let (o_begin, o_end) = self.object_bounds(index_s);
                (o_begin..o_end).map(move |index_o| (p, s, self.wt_o.access(index_o)))
            })
        })
    }
}

impl HeapSize for TripleLayer {
    fn heap_size(&self) -> usize {
        self.wt_p.heap_size()
            + self.bm_ps.heap_size()
            + self.wt_s.heap_size()
            + self.bm_so.heap_size()
            + self.wt_o.heap_size()
    }
}

impl Serialize for TripleLayer {
    fn serialize<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        use se_sds::WriteBin;
        w.write_u64(self.n_triples as u64)?;
        self.wt_p.serialize(w)?;
        self.bm_ps.serialize(w)?;
        self.wt_s.serialize(w)?;
        self.bm_so.serialize(w)?;
        self.wt_o.serialize(w)
    }

    fn deserialize<R: io::Read>(r: &mut R) -> io::Result<Self> {
        use se_sds::ReadBin;
        let n_triples = r.read_u64()? as usize;
        Ok(Self {
            n_triples,
            wt_p: WaveletTree::deserialize(r)?,
            bm_ps: RsBitVec::deserialize(r)?,
            wt_s: WaveletTree::deserialize(r)?,
            bm_so: RsBitVec::deserialize(r)?,
            wt_o: WaveletTree::deserialize(r)?,
        })
    }

    fn serialized_size(&self) -> usize {
        8 + self.wt_p.serialized_size()
            + self.bm_ps.serialized_size()
            + self.wt_s.serialized_size()
            + self.bm_so.serialized_size()
            + self.wt_o.serialized_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The triple set of the paper's Figure 5(a):
    /// p1 → {s1:{o1,o2}, s2:{o1}, s4:{o3}}, p2 → {s3:{o2}}.
    /// Ids: p1=1, p2=2, s1=1, s2=2, s3=3, s4=4, o1=1, o2=2, o3=3.
    fn figure5() -> Vec<(u64, u64, u64)> {
        vec![(1, 1, 1), (1, 1, 2), (1, 2, 1), (1, 4, 3), (2, 3, 2)]
    }

    #[test]
    fn figure5_structure() {
        let layer = TripleLayer::build(&figure5());
        assert_eq!(layer.len(), 5);
        assert_eq!(layer.predicate_count(), 2);
        // The PS bitmap of the paper starts with 100 (p1 has 3 subjects)
        // followed by 1 (p2's first subject).
        assert_eq!(layer.subject_bounds(0), (0, 3));
        assert_eq!(layer.subject_bounds(1), (3, 4));
    }

    #[test]
    fn figure5_objects() {
        let layer = TripleLayer::build(&figure5());
        assert_eq!(layer.objects(1, 1), vec![1, 2]);
        assert_eq!(layer.objects(1, 2), vec![1]);
        assert_eq!(layer.objects(1, 4), vec![3]);
        assert_eq!(layer.objects(2, 3), vec![2]);
        assert_eq!(layer.objects(1, 3), Vec::<u64>::new());
        assert_eq!(layer.objects(9, 1), Vec::<u64>::new());
    }

    #[test]
    fn figure5_subjects() {
        let layer = TripleLayer::build(&figure5());
        // The paper's §5.2 example: (?s, p1, o1) yields {s1, s2}.
        assert_eq!(layer.subjects(1, 1), vec![1, 2]);
        assert_eq!(layer.subjects(1, 2), vec![1]);
        assert_eq!(layer.subjects(1, 3), vec![4]);
        assert_eq!(layer.subjects(2, 2), vec![3]);
        assert_eq!(layer.subjects(2, 1), Vec::<u64>::new());
    }

    #[test]
    fn figure5_count_predicate() {
        let layer = TripleLayer::build(&figure5());
        assert_eq!(layer.count_predicate(1), 4);
        assert_eq!(layer.count_predicate(2), 1);
        assert_eq!(layer.count_predicate(3), 0);
    }

    #[test]
    fn scan_predicate_in_order() {
        let layer = TripleLayer::build(&figure5());
        assert_eq!(
            layer.scan_predicate(1),
            vec![(1, 1), (1, 2), (2, 1), (4, 3)]
        );
        assert_eq!(layer.scan_predicate(2), vec![(3, 2)]);
    }

    #[test]
    fn contains_membership() {
        let layer = TripleLayer::build(&figure5());
        assert!(layer.contains(1, 1, 2));
        assert!(!layer.contains(1, 1, 3));
        assert!(!layer.contains(2, 1, 1));
    }

    #[test]
    fn iter_roundtrips() {
        let triples = figure5();
        let layer = TripleLayer::build(&triples);
        assert_eq!(layer.iter().collect::<Vec<_>>(), triples);
    }

    #[test]
    fn empty_layer() {
        let layer = TripleLayer::build(&[]);
        assert!(layer.is_empty());
        assert_eq!(layer.objects(1, 1), Vec::<u64>::new());
        assert_eq!(layer.subjects(1, 1), Vec::<u64>::new());
        assert_eq!(layer.count_predicate(1), 0);
        assert_eq!(layer.iter().count(), 0);
    }

    #[test]
    fn single_triple() {
        let layer = TripleLayer::build(&[(7, 3, 9)]);
        assert_eq!(layer.objects(7, 3), vec![9]);
        assert_eq!(layer.subjects(7, 9), vec![3]);
        assert_eq!(layer.count_predicate(7), 1);
    }

    #[test]
    fn predicate_range_is_contiguous() {
        let triples: Vec<(u64, u64, u64)> = vec![(10, 1, 1), (12, 1, 1), (14, 1, 1), (20, 1, 1)];
        let layer = TripleLayer::build(&triples);
        assert_eq!(layer.predicate_range(10, 15), 0..3);
        assert_eq!(layer.predicate_range(11, 15), 1..3);
        assert_eq!(layer.predicate_range(0, 100), 0..4);
        assert_eq!(layer.predicate_range(15, 20), 3..3);
        assert_eq!(layer.predicate_range(21, 99), 4..4);
    }

    #[test]
    fn serialization_roundtrip() {
        let layer = TripleLayer::build(&figure5());
        let buf = layer.to_bytes();
        assert_eq!(buf.len(), layer.serialized_size());
        let back = TripleLayer::from_bytes(&buf).unwrap();
        assert_eq!(back.iter().collect::<Vec<_>>(), figure5());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        fn arb_triples() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
            proptest::collection::btree_set((0u64..20, 0u64..30, 0u64..30), 0..200)
                .prop_map(|set: BTreeSet<_>| set.into_iter().collect())
        }

        proptest! {
            #[test]
            fn matches_naive_scan(triples in arb_triples()) {
                let layer = TripleLayer::build(&triples);
                prop_assert_eq!(layer.len(), triples.len());
                // objects / subjects / counts agree with a scan.
                for p in 0..20u64 {
                    let expected: usize = triples.iter().filter(|t| t.0 == p).count();
                    prop_assert_eq!(layer.count_predicate(p), expected);
                    for s in 0..30u64 {
                        let want: Vec<u64> = triples
                            .iter()
                            .filter(|t| t.0 == p && t.1 == s)
                            .map(|t| t.2)
                            .collect();
                        prop_assert_eq!(layer.objects(p, s), want);
                    }
                    for o in 0..30u64 {
                        let want: Vec<u64> = triples
                            .iter()
                            .filter(|t| t.0 == p && t.2 == o)
                            .map(|t| t.1)
                            .collect();
                        prop_assert_eq!(layer.subjects(p, o), want);
                    }
                }
                prop_assert_eq!(layer.iter().collect::<Vec<_>>(), triples);
            }
        }
    }
}
