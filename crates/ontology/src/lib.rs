//! # se-ontology — ρdf ontologies for SuccinctEdge
//!
//! The paper reasons over the ρdf subset of RDFS (§3.2): `rdfs:subClassOf`,
//! `rdfs:subPropertyOf`, `rdfs:domain` and `rdfs:range`. This crate models
//! such ontologies, extracts them from RDF graphs, and drives the LiteMat
//! encoding that turns the two hierarchies into identifier intervals.
//!
//! It also ships the two concrete ontologies of the evaluation:
//!
//! * [`lubm_ontology`] — the univ-bench (LUBM) class/property hierarchy used
//!   by the synthetic datasets and the S/M/R query workload (§7.2,
//!   Appendix A);
//! * [`water_ontology`] — the SOSA + QUDT fragment of the motivating
//!   example (§2), with the unit hierarchies
//!   `AmountOfSubstanceUnit ⊑ Chemistry ⊑ ScienceUnit` and
//!   `PressureOrStressUnit ⊑ PressureUnit ⊑ MechanicsUnit`.

use se_litemat::{Dictionaries, EncodingError, LiteMatEncoding};
use se_rdf::vocab::{lubm, owl, qudt, rdfs, sosa};
use se_rdf::{Graph, Term};
use std::collections::BTreeSet;

/// Virtual root uniting the object- and datatype-property hierarchies in a
/// single LiteMat identifier space.
pub const TOP_PROPERTY: &str = "urn:se:topProperty";

/// A ρdf ontology: two hierarchies plus domain/range assertions.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    /// `(sub, sup)` class axioms.
    pub class_edges: Vec<(String, String)>,
    /// `(sub, sup)` property axioms.
    pub property_edges: Vec<(String, String)>,
    /// `(property, class)` domain assertions.
    pub domains: Vec<(String, String)>,
    /// `(property, class)` range assertions.
    pub ranges: Vec<(String, String)>,
    /// Classes without explicit super-class (still anchored at `owl:Thing`).
    pub extra_classes: Vec<String>,
    /// Object properties without explicit super-property.
    pub extra_object_properties: Vec<String>,
    /// Datatype properties without explicit super-property.
    pub extra_datatype_properties: Vec<String>,
}

impl Ontology {
    /// An empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the ρdf axioms from an RDF graph (an ontology document).
    ///
    /// `rdfs:subClassOf` / `rdfs:subPropertyOf` triples become hierarchy
    /// edges; `rdfs:domain` / `rdfs:range` are collected; terms typed
    /// `owl:Class`, `owl:ObjectProperty` or `owl:DatatypeProperty` without
    /// a parent axiom are registered as roots of their hierarchies.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut onto = Self::new();
        let mut declared_classes = BTreeSet::new();
        let mut declared_obj_props = BTreeSet::new();
        let mut declared_data_props = BTreeSet::new();
        for t in graph {
            let (Some(s), Some(p)) = (t.subject.as_iri(), t.predicate.as_iri()) else {
                continue;
            };
            match p {
                rdfs::SUB_CLASS_OF => {
                    if let Some(o) = t.object.as_iri() {
                        onto.class_edges.push((s.to_string(), o.to_string()));
                    }
                }
                rdfs::SUB_PROPERTY_OF => {
                    if let Some(o) = t.object.as_iri() {
                        onto.property_edges.push((s.to_string(), o.to_string()));
                    }
                }
                rdfs::DOMAIN => {
                    if let Some(o) = t.object.as_iri() {
                        onto.domains.push((s.to_string(), o.to_string()));
                        declared_classes.insert(o.to_string());
                    }
                }
                rdfs::RANGE => {
                    if let Some(o) = t.object.as_iri() {
                        onto.ranges.push((s.to_string(), o.to_string()));
                    }
                }
                se_rdf::vocab::rdf::TYPE => match t.object.as_iri() {
                    Some(owl::CLASS) => {
                        declared_classes.insert(s.to_string());
                    }
                    Some(owl::OBJECT_PROPERTY) => {
                        declared_obj_props.insert(s.to_string());
                    }
                    Some(owl::DATATYPE_PROPERTY) => {
                        declared_data_props.insert(s.to_string());
                    }
                    _ => {}
                },
                _ => {}
            }
        }
        onto.extra_classes = declared_classes.into_iter().collect();
        onto.extra_object_properties = declared_obj_props.into_iter().collect();
        onto.extra_datatype_properties = declared_data_props.into_iter().collect();
        onto
    }

    /// Adds a `sub ⊑ sup` class axiom.
    pub fn add_class(&mut self, sub: &str, sup: &str) -> &mut Self {
        self.class_edges.push((sub.to_string(), sup.to_string()));
        self
    }

    /// Adds a `sub ⊑ sup` property axiom.
    pub fn add_property(&mut self, sub: &str, sup: &str) -> &mut Self {
        self.property_edges.push((sub.to_string(), sup.to_string()));
        self
    }

    /// Registers an object property without a super-property.
    pub fn add_object_property(&mut self, p: &str) -> &mut Self {
        self.extra_object_properties.push(p.to_string());
        self
    }

    /// Registers a datatype property without a super-property.
    pub fn add_datatype_property(&mut self, p: &str) -> &mut Self {
        self.extra_datatype_properties.push(p.to_string());
        self
    }

    /// Adds a domain assertion.
    pub fn add_domain(&mut self, property: &str, class: &str) -> &mut Self {
        self.domains.push((property.to_string(), class.to_string()));
        self
    }

    /// Adds a range assertion.
    pub fn add_range(&mut self, property: &str, class: &str) -> &mut Self {
        self.ranges.push((property.to_string(), class.to_string()));
        self
    }

    /// Runs the LiteMat pre-processing of §4 ("this server also performs
    /// the pre-processing task consisting of encoding ontologies using the
    /// LiteMat scheme") and returns the dictionaries broadcast to the edge
    /// instances.
    pub fn encode(&self) -> Result<Dictionaries, EncodingError> {
        let concepts = LiteMatEncoding::encode(owl::THING, &self.class_edges, &self.extra_classes)?;
        // Single property space: topProperty ⊒ {topObjectProperty ⊒ object
        // props, topDataProperty ⊒ datatype props}.
        let mut property_edges = self.property_edges.clone();
        property_edges.push((
            owl::TOP_OBJECT_PROPERTY.to_string(),
            TOP_PROPERTY.to_string(),
        ));
        property_edges.push((owl::TOP_DATA_PROPERTY.to_string(), TOP_PROPERTY.to_string()));
        for p in &self.extra_object_properties {
            property_edges.push((p.clone(), owl::TOP_OBJECT_PROPERTY.to_string()));
        }
        for p in &self.extra_datatype_properties {
            property_edges.push((p.clone(), owl::TOP_DATA_PROPERTY.to_string()));
        }
        let properties = LiteMatEncoding::encode(TOP_PROPERTY, &property_edges, &[])?;
        Ok(Dictionaries::new(concepts, properties))
    }

    /// Domain class of `property`, if asserted.
    pub fn domain_of(&self, property: &str) -> Option<&str> {
        self.domains
            .iter()
            .find(|(p, _)| p == property)
            .map(|(_, c)| c.as_str())
    }

    /// Range class of `property`, if asserted.
    pub fn range_of(&self, property: &str) -> Option<&str> {
        self.ranges
            .iter()
            .find(|(p, _)| p == property)
            .map(|(_, c)| c.as_str())
    }

    /// ρdf saturation of domain/range: given the explicit triples of
    /// `graph`, derives the `rdf:type` triples entailed by `rdfs:domain`
    /// and `rdfs:range` (the two ρdf rules LiteMat's interval encoding does
    /// not cover). `subClassOf`/`subPropertyOf` entailments stay virtual —
    /// that is the whole point of LiteMat.
    pub fn derive_domain_range_types(&self, graph: &Graph) -> Vec<se_rdf::Triple> {
        let mut derived = Vec::new();
        for t in graph {
            let Some(p) = t.predicate.as_iri() else {
                continue;
            };
            if let Some(domain) = self.domain_of(p) {
                derived.push(se_rdf::Triple::new(
                    t.subject.clone(),
                    Term::iri(se_rdf::vocab::rdf::TYPE),
                    Term::iri(domain.to_string()),
                ));
            }
            if t.object.is_resource() {
                if let Some(range) = self.range_of(p) {
                    derived.push(se_rdf::Triple::new(
                        t.object.clone(),
                        Term::iri(se_rdf::vocab::rdf::TYPE),
                        Term::iri(range.to_string()),
                    ));
                }
            }
        }
        derived
    }
}

/// The univ-bench (LUBM) ontology fragment covering the paper's S/M/R
/// queries (Appendix A).
pub fn lubm_ontology() -> Ontology {
    let mut o = Ontology::new();
    let c = |n: &str| lubm::iri(n);
    // ---- class hierarchy -------------------------------------------------
    for (sub, sup) in [
        ("Person", "Thing"),
        ("Organization", "Thing"),
        ("Work", "Thing"),
        ("Publication", "Thing"),
        // People
        ("Employee", "Person"),
        ("Student", "Person"),
        ("TeachingAssistant", "Person"),
        ("ResearchAssistant", "Person"),
        ("Faculty", "Employee"),
        ("Professor", "Faculty"),
        ("FullProfessor", "Professor"),
        ("AssociateProfessor", "Professor"),
        ("AssistantProfessor", "Professor"),
        ("VisitingProfessor", "Professor"),
        ("Chair", "Professor"),
        ("Lecturer", "Faculty"),
        ("PostDoc", "Faculty"),
        ("UndergraduateStudent", "Student"),
        ("GraduateStudent", "Student"),
        // Organizations
        ("University", "Organization"),
        ("Department", "Organization"),
        ("College", "Organization"),
        ("ResearchGroup", "Organization"),
        ("Program", "Organization"),
        ("Institute", "Organization"),
        // Work
        ("Course", "Work"),
        ("GraduateCourse", "Course"),
        ("Research", "Work"),
        // Publications
        ("Article", "Publication"),
        ("Book", "Publication"),
        ("TechnicalReport", "Publication"),
    ] {
        let sup_iri = if sup == "Thing" {
            owl::THING.to_string()
        } else {
            c(sup)
        };
        o.add_class(&c(sub), &sup_iri);
    }
    // ---- object property hierarchy ---------------------------------------
    for (sub, sup) in [
        ("worksFor", "memberOf"),
        ("headOf", "worksFor"),
        ("undergraduateDegreeFrom", "degreeFrom"),
        ("mastersDegreeFrom", "degreeFrom"),
        ("doctoralDegreeFrom", "degreeFrom"),
    ] {
        o.add_property(&c(sub), &c(sup));
    }
    for p in [
        "memberOf",
        "degreeFrom",
        "subOrganizationOf",
        "takesCourse",
        "teacherOf",
        "advisor",
        "publicationAuthor",
        "affiliatedOrganizationOf",
    ] {
        o.add_object_property(&c(p));
    }
    // ---- datatype properties ----------------------------------------------
    for p in [
        "name",
        "emailAddress",
        "telephone",
        "researchInterest",
        "officeNumber",
    ] {
        o.add_datatype_property(&c(p));
    }
    // ---- domains / ranges --------------------------------------------------
    o.add_domain(&c("memberOf"), &c("Person"));
    o.add_range(&c("memberOf"), &c("Organization"));
    o.add_domain(&c("teacherOf"), &c("Faculty"));
    o.add_range(&c("teacherOf"), &c("Course"));
    o.add_domain(&c("subOrganizationOf"), &c("Organization"));
    o.add_range(&c("subOrganizationOf"), &c("Organization"));
    o.add_range(&c("publicationAuthor"), &c("Person"));
    o
}

/// The SOSA + QUDT ontology fragment of the motivating example (§2).
pub fn water_ontology() -> Ontology {
    let mut o = Ontology::new();
    // SOSA classes (flat, under owl:Thing).
    for cl in [
        sosa::PLATFORM,
        sosa::SENSOR,
        sosa::OBSERVATION,
        sosa::RESULT,
    ] {
        o.extra_classes.push(cl.to_string());
    }
    // QUDT unit hierarchy of §2.
    o.extra_classes
        .push("http://qudt.org/schema/qudt/Unit".to_string());
    for (sub, sup) in [
        (qudt::SCIENCE_UNIT, "http://qudt.org/schema/qudt/Unit"),
        (qudt::CHEMISTRY, qudt::SCIENCE_UNIT),
        (qudt::AMOUNT_OF_SUBSTANCE_UNIT, qudt::CHEMISTRY),
        (qudt::MECHANICS_UNIT, "http://qudt.org/schema/qudt/Unit"),
        (qudt::PRESSURE_UNIT, qudt::MECHANICS_UNIT),
        (qudt::PRESSURE_OR_STRESS_UNIT, qudt::PRESSURE_UNIT),
    ] {
        o.add_class(sub, sup);
    }
    // Object properties.
    for p in [
        sosa::HOSTS,
        sosa::OBSERVES,
        sosa::HAS_RESULT,
        sosa::MADE_BY_SENSOR,
        qudt::UNIT,
    ] {
        o.add_object_property(p);
    }
    // Datatype properties.
    for p in [sosa::RESULT_TIME, qudt::NUMERIC_VALUE] {
        o.add_datatype_property(p);
    }
    o.add_domain(sosa::OBSERVES, sosa::SENSOR);
    o.add_domain(sosa::HAS_RESULT, sosa::OBSERVATION);
    o.add_range(sosa::HAS_RESULT, sosa::RESULT);
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_rdf::vocab::rdf;
    use se_rdf::Triple;

    #[test]
    fn lubm_subsumptions() {
        let dicts = lubm_ontology().encode().unwrap();
        let enc = dicts.concepts.encoding();
        assert!(enc.is_subsumed_by(&lubm::iri("GraduateStudent"), &lubm::iri("Student")));
        assert!(enc.is_subsumed_by(&lubm::iri("GraduateStudent"), &lubm::iri("Person")));
        assert!(enc.is_subsumed_by(&lubm::iri("FullProfessor"), &lubm::iri("Faculty")));
        assert!(enc.is_subsumed_by(&lubm::iri("FullProfessor"), owl::THING));
        assert!(!enc.is_subsumed_by(&lubm::iri("University"), &lubm::iri("Person")));
        assert!(!enc.is_subsumed_by(&lubm::iri("Person"), &lubm::iri("Student")));
    }

    #[test]
    fn lubm_property_subsumptions() {
        let dicts = lubm_ontology().encode().unwrap();
        let enc = dicts.properties.encoding();
        assert!(enc.is_subsumed_by(&lubm::iri("worksFor"), &lubm::iri("memberOf")));
        assert!(enc.is_subsumed_by(&lubm::iri("headOf"), &lubm::iri("memberOf")));
        assert!(enc.is_subsumed_by(&lubm::iri("headOf"), &lubm::iri("worksFor")));
        assert!(!enc.is_subsumed_by(&lubm::iri("memberOf"), &lubm::iri("worksFor")));
        assert!(enc.is_subsumed_by(
            &lubm::iri("undergraduateDegreeFrom"),
            &lubm::iri("degreeFrom")
        ));
    }

    #[test]
    fn object_and_datatype_properties_are_separated() {
        let dicts = lubm_ontology().encode().unwrap();
        let enc = dicts.properties.encoding();
        assert!(enc.is_subsumed_by(&lubm::iri("memberOf"), owl::TOP_OBJECT_PROPERTY));
        assert!(enc.is_subsumed_by(&lubm::iri("name"), owl::TOP_DATA_PROPERTY));
        assert!(!enc.is_subsumed_by(&lubm::iri("name"), owl::TOP_OBJECT_PROPERTY));
        assert!(enc.is_subsumed_by(&lubm::iri("name"), TOP_PROPERTY));
    }

    #[test]
    fn water_unit_hierarchy_matches_paper() {
        let dicts = water_ontology().encode().unwrap();
        let enc = dicts.concepts.encoding();
        // §2: a query over PressureUnit must match PressureOrStressUnit
        // (Station1) — and AmountOfSubstanceUnit ⊑ Chemistry.
        assert!(enc.is_subsumed_by(qudt::PRESSURE_OR_STRESS_UNIT, qudt::PRESSURE_UNIT));
        assert!(enc.is_subsumed_by(qudt::PRESSURE_OR_STRESS_UNIT, qudt::MECHANICS_UNIT));
        assert!(enc.is_subsumed_by(qudt::AMOUNT_OF_SUBSTANCE_UNIT, qudt::CHEMISTRY));
        assert!(!enc.is_subsumed_by(qudt::AMOUNT_OF_SUBSTANCE_UNIT, qudt::PRESSURE_UNIT));
    }

    #[test]
    fn from_graph_extracts_axioms() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://x/Sub"),
            Term::iri(rdfs::SUB_CLASS_OF),
            Term::iri("http://x/Sup"),
        ));
        g.insert(Triple::new(
            Term::iri("http://x/p"),
            Term::iri(rdfs::SUB_PROPERTY_OF),
            Term::iri("http://x/q"),
        ));
        g.insert(Triple::new(
            Term::iri("http://x/p"),
            Term::iri(rdfs::DOMAIN),
            Term::iri("http://x/Sub"),
        ));
        g.insert(Triple::new(
            Term::iri("http://x/q"),
            Term::iri(rdf::TYPE),
            Term::iri(owl::OBJECT_PROPERTY),
        ));
        let onto = Ontology::from_graph(&g);
        assert_eq!(
            onto.class_edges,
            vec![("http://x/Sub".into(), "http://x/Sup".into())]
        );
        assert_eq!(
            onto.property_edges,
            vec![("http://x/p".into(), "http://x/q".into())]
        );
        assert_eq!(onto.domain_of("http://x/p"), Some("http://x/Sub"));
        assert_eq!(onto.range_of("http://x/p"), None);
        assert!(onto
            .extra_object_properties
            .contains(&"http://x/q".to_string()));
        let dicts = onto.encode().unwrap();
        assert!(dicts
            .concepts
            .encoding()
            .is_subsumed_by("http://x/Sub", "http://x/Sup"));
    }

    #[test]
    fn derive_domain_range_types() {
        let mut onto = Ontology::new();
        onto.add_object_property("http://x/p");
        onto.add_domain("http://x/p", "http://x/D");
        onto.add_range("http://x/p", "http://x/R");
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://x/a"),
            Term::iri("http://x/p"),
            Term::iri("http://x/b"),
        ));
        let derived = onto.derive_domain_range_types(&g);
        assert_eq!(derived.len(), 2);
        assert!(derived.iter().any(|t| {
            t.subject == Term::iri("http://x/a") && t.object == Term::iri("http://x/D")
        }));
        assert!(derived.iter().any(|t| {
            t.subject == Term::iri("http://x/b") && t.object == Term::iri("http://x/R")
        }));
    }

    #[test]
    fn empty_ontology_encodes() {
        let dicts = Ontology::new().encode().unwrap();
        assert_eq!(dicts.concepts.len(), 1); // just owl:Thing
        assert!(dicts.properties.id(TOP_PROPERTY).is_some());
    }
}
