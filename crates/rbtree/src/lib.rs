//! # se-rbtree — a red-black tree
//!
//! The paper stores `rdf:type` triples "in a red-black tree in order to
//! maintain the search complexity to O(log(n)) while being fast when we
//! insert rdf:type triples during database construction" (§4). This crate
//! implements that substrate from scratch: an ordered map with guaranteed
//! *O(log n)* insertion and lookup, in-order iteration and range queries.
//!
//! Insertion uses Okasaki-style rebalancing (the four red-red violation
//! cases collapse into one `balance` transformation applied on the way back
//! up from a recursive insert). Deletion is intentionally *not* provided:
//! the SuccinctEdge store is immutable once constructed — graphs arriving
//! from sensors are built, queried, and dropped whole — so the store never
//! removes individual keys. [`RbTree::clear`] drops all content at once.
//!
//! The tree maintains the two red-black invariants, checked exhaustively in
//! tests via [`RbTree::check_invariants`]:
//!
//! 1. no red node has a red child;
//! 2. every root-leaf path contains the same number of black nodes.

use std::cmp::Ordering;
use std::fmt::Debug;
use std::ops::Bound;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node<K, V> {
    color: Color,
    key: K,
    value: V,
    left: Link<K, V>,
    right: Link<K, V>,
}

type Link<K, V> = Option<Box<Node<K, V>>>;

/// An ordered map backed by a red-black tree.
#[derive(Debug, Clone)]
pub struct RbTree<K, V> {
    root: Link<K, V>,
    len: usize,
}

impl<K, V> Default for RbTree<K, V> {
    fn default() -> Self {
        Self { root: None, len: 0 }
    }
}

impl<K: Ord, V> RbTree<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        // Iterative teardown: a deep tree dropped recursively can blow the
        // stack for adversarial (sorted) insertion orders.
        let mut stack = Vec::new();
        if let Some(root) = self.root.take() {
            stack.push(root);
        }
        while let Some(mut node) = stack.pop() {
            if let Some(l) = node.left.take() {
                stack.push(l);
            }
            if let Some(r) = node.right.take() {
                stack.push(r);
            }
        }
        self.len = 0;
    }

    /// Inserts `key → value`. Returns the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let root = self.root.take();
        let (mut new_root, old) = Self::insert_rec(root, key, value);
        new_root.as_mut().expect("insert produces a node").color = Color::Black;
        self.root = new_root;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(link: Link<K, V>, key: K, value: V) -> (Link<K, V>, Option<V>) {
        match link {
            None => (
                Some(Box::new(Node {
                    color: Color::Red,
                    key,
                    value,
                    left: None,
                    right: None,
                })),
                None,
            ),
            Some(mut node) => match key.cmp(&node.key) {
                Ordering::Less => {
                    let (new_left, old) = Self::insert_rec(node.left.take(), key, value);
                    node.left = new_left;
                    (Some(Self::balance(node)), old)
                }
                Ordering::Greater => {
                    let (new_right, old) = Self::insert_rec(node.right.take(), key, value);
                    node.right = new_right;
                    (Some(Self::balance(node)), old)
                }
                Ordering::Equal => {
                    let old = std::mem::replace(&mut node.value, value);
                    (Some(node), Some(old))
                }
            },
        }
    }

    /// Okasaki's balance: a black node with a red child that itself has a
    /// red child (four symmetric shapes) is rewritten into a red node with
    /// two black children.
    fn balance(mut node: Box<Node<K, V>>) -> Box<Node<K, V>> {
        if node.color != Color::Black {
            return node;
        }
        if is_red(&node.left) {
            if is_red(&node.left.as_ref().expect("checked").left) {
                // left-left: single right rotation.
                let mut l = node.left.take().expect("checked");
                node.left = l.right.take();
                l.right = Some(node);
                return recolor(l);
            }
            if is_red(&node.left.as_ref().expect("checked").right) {
                // left-right: double rotation.
                let mut l = node.left.take().expect("checked");
                let mut lr = l.right.take().expect("checked");
                l.right = lr.left.take();
                node.left = lr.right.take();
                lr.left = Some(l);
                lr.right = Some(node);
                return recolor(lr);
            }
        }
        if is_red(&node.right) {
            if is_red(&node.right.as_ref().expect("checked").right) {
                // right-right: single left rotation.
                let mut r = node.right.take().expect("checked");
                node.right = r.left.take();
                r.left = Some(node);
                return recolor(r);
            }
            if is_red(&node.right.as_ref().expect("checked").left) {
                // right-left: double rotation.
                let mut r = node.right.take().expect("checked");
                let mut rl = r.left.take().expect("checked");
                r.left = rl.right.take();
                node.right = rl.left.take();
                rl.right = Some(r);
                rl.left = Some(node);
                return recolor(rl);
            }
        }
        node
    }

    /// Looks a key up.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root.as_deref();
        while let Some(node) = cur {
            match key.cmp(&node.key) {
                Ordering::Less => cur = node.left.as_deref(),
                Ordering::Greater => cur = node.right.as_deref(),
                Ordering::Equal => return Some(&node.value),
            }
        }
        None
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut cur = self.root.as_deref_mut();
        while let Some(node) = cur {
            match key.cmp(&node.key) {
                Ordering::Less => cur = node.left.as_deref_mut(),
                Ordering::Greater => cur = node.right.as_deref_mut(),
                Ordering::Equal => return Some(&mut node.value),
            }
        }
        None
    }

    /// `true` if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// In-order iteration over all entries.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut iter = Iter { stack: Vec::new() };
        iter.push_left(self.root.as_deref());
        iter
    }

    /// Iterates over entries whose key lies between `lo` and `hi`.
    pub fn range<'a>(&'a self, lo: Bound<&K>, hi: Bound<&'a K>) -> RangeIter<'a, K, V> {
        let mut r = RangeIter {
            stack: Vec::new(),
            hi_key: match hi {
                Bound::Included(k) => HiBound::Included(k),
                Bound::Excluded(k) => HiBound::Excluded(k),
                Bound::Unbounded => HiBound::Unbounded,
            },
        };
        r.push_left_from(self.root.as_deref(), &lo);
        r
    }

    /// Verifies the red-black invariants, returning the black height.
    ///
    /// # Panics
    /// Panics with a description if an invariant is violated. Intended for
    /// tests.
    pub fn check_invariants(&self) -> usize
    where
        K: Debug,
    {
        assert!(!is_red(&self.root), "root must be black");
        Self::check_rec(self.root.as_deref(), None, None)
    }

    fn check_rec(link: Option<&Node<K, V>>, min: Option<&K>, max: Option<&K>) -> usize
    where
        K: Debug,
    {
        let Some(node) = link else {
            return 1; // nil leaves count as black
        };
        if let Some(min) = min {
            assert!(node.key > *min, "BST order violated at {:?}", node.key);
        }
        if let Some(max) = max {
            assert!(node.key < *max, "BST order violated at {:?}", node.key);
        }
        if node.color == Color::Red {
            assert!(
                !is_red(&node.left) && !is_red(&node.right),
                "red node {:?} has a red child",
                node.key
            );
        }
        let lh = Self::check_rec(node.left.as_deref(), min, Some(&node.key));
        let rh = Self::check_rec(node.right.as_deref(), Some(&node.key), max);
        assert_eq!(lh, rh, "black-height mismatch at {:?}", node.key);
        lh + usize::from(node.color == Color::Black)
    }
}

/// Colors `node` red and both of its (guaranteed present) children black —
/// the common epilogue of all four balance rotations.
fn recolor<K, V>(mut node: Box<Node<K, V>>) -> Box<Node<K, V>> {
    node.color = Color::Red;
    node.left.as_mut().expect("balance invariant").color = Color::Black;
    node.right.as_mut().expect("balance invariant").color = Color::Black;
    node
}

#[inline]
fn is_red<K, V>(link: &Link<K, V>) -> bool {
    matches!(link, Some(node) if node.color == Color::Red)
}

/// In-order iterator.
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iter<'a, K, V> {
    fn push_left(&mut self, mut link: Option<&'a Node<K, V>>) {
        while let Some(node) = link {
            self.stack.push(node);
            link = node.left.as_deref();
        }
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        self.push_left(node.right.as_deref());
        Some((&node.key, &node.value))
    }
}

enum HiBound<'a, K> {
    Included(&'a K),
    Excluded(&'a K),
    Unbounded,
}

/// Bounded in-order iterator.
pub struct RangeIter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
    hi_key: HiBound<'a, K>,
}

impl<'a, K: Ord, V> RangeIter<'a, K, V> {
    fn push_left_from(&mut self, mut link: Option<&'a Node<K, V>>, lo: &Bound<&K>) {
        while let Some(node) = link {
            let in_range = match lo {
                Bound::Included(k) => node.key >= **k,
                Bound::Excluded(k) => node.key > **k,
                Bound::Unbounded => true,
            };
            if in_range {
                self.stack.push(node);
                link = node.left.as_deref();
            } else {
                link = node.right.as_deref();
            }
        }
    }
}

impl<'a, K: Ord, V> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        let within = match self.hi_key {
            HiBound::Included(k) => node.key <= *k,
            HiBound::Excluded(k) => node.key < *k,
            HiBound::Unbounded => true,
        };
        if !within {
            self.stack.clear();
            return None;
        }
        // Everything right of `node` satisfies the lower bound already.
        let mut link = node.right.as_deref();
        while let Some(n) = link {
            self.stack.push(n);
            link = n.left.as_deref();
        }
        Some((&node.key, &node.value))
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for RbTree<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut tree = Self::new();
        for (k, v) in iter {
            tree.insert(k, v);
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::Bound::{Excluded, Included, Unbounded};

    #[test]
    fn insert_and_get() {
        let mut t = RbTree::new();
        assert_eq!(t.insert(5, "five"), None);
        assert_eq!(t.insert(3, "three"), None);
        assert_eq!(t.insert(8, "eight"), None);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&5), Some(&"five"));
        assert_eq!(t.get(&3), Some(&"three"));
        assert_eq!(t.get(&8), Some(&"eight"));
        assert_eq!(t.get(&1), None);
        t.check_invariants();
    }

    #[test]
    fn insert_overwrites() {
        let mut t = RbTree::new();
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"b"));
    }

    #[test]
    fn get_mut_updates() {
        let mut t = RbTree::new();
        t.insert(1, 10);
        *t.get_mut(&1).unwrap() += 5;
        assert_eq!(t.get(&1), Some(&15));
        assert_eq!(t.get_mut(&2), None);
    }

    #[test]
    fn sorted_insertion_stays_balanced() {
        let mut t = RbTree::new();
        for i in 0..10_000 {
            t.insert(i, i * 2);
        }
        let black_height = t.check_invariants();
        assert!(black_height <= 16, "black height {black_height} too large");
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.get(&9_999), Some(&19_998));
    }

    #[test]
    fn reverse_sorted_insertion() {
        let mut t = RbTree::new();
        for i in (0..5_000).rev() {
            t.insert(i, ());
        }
        t.check_invariants();
        assert_eq!(t.len(), 5_000);
    }

    #[test]
    fn iter_is_sorted() {
        let mut t = RbTree::new();
        for i in [5, 2, 9, 1, 7, 3, 8, 4, 6, 0] {
            t.insert(i, i * 10);
        }
        let keys: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
        let values: Vec<i32> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, (0..10).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn range_half_open() {
        let t: RbTree<i32, ()> = (0..100).map(|i| (i, ())).collect();
        let keys: Vec<i32> = t
            .range(Included(&10), Excluded(&20))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(keys, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn range_bounds_variants() {
        let t: RbTree<i32, ()> = [1, 3, 5, 7, 9].into_iter().map(|i| (i, ())).collect();
        let collect = |lo, hi| -> Vec<i32> { t.range(lo, hi).map(|(k, _)| *k).collect() };
        assert_eq!(collect(Unbounded, Unbounded), vec![1, 3, 5, 7, 9]);
        assert_eq!(collect(Included(&3), Included(&7)), vec![3, 5, 7]);
        assert_eq!(collect(Excluded(&3), Excluded(&7)), vec![5]);
        assert_eq!(collect(Included(&4), Included(&4)), Vec::<i32>::new());
        assert_eq!(collect(Included(&100), Unbounded), Vec::<i32>::new());
        assert_eq!(collect(Unbounded, Excluded(&1)), Vec::<i32>::new());
    }

    #[test]
    fn range_on_empty_tree() {
        let t: RbTree<i32, ()> = RbTree::new();
        assert_eq!(t.range(Unbounded, Unbounded).count(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut t: RbTree<i32, ()> = (0..1000).map(|i| (i, ())).collect();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        t.insert(1, ());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_deep_tree_no_stack_overflow() {
        let mut t: RbTree<i32, ()> = (0..200_000).map(|i| (i, ())).collect();
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn tuple_keys_like_rdftype_store() {
        // The RDFType store keys on (concept, subject) pairs.
        let mut t = RbTree::new();
        t.insert((10u64, 1u64), ());
        t.insert((10, 5), ());
        t.insert((10, 3), ());
        t.insert((20, 2), ());
        let subjects: Vec<u64> = t
            .range(Included(&(10, 0)), Excluded(&(11, 0)))
            .map(|((_, s), _)| *s)
            .collect();
        assert_eq!(subjects, vec![1, 3, 5]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeMap;

        proptest! {
            #[test]
            fn behaves_like_btreemap(ops in proptest::collection::vec((any::<u16>(), any::<u32>()), 0..500)) {
                let mut rb = RbTree::new();
                let mut model = BTreeMap::new();
                for (k, v) in ops {
                    prop_assert_eq!(rb.insert(k, v), model.insert(k, v));
                    rb.check_invariants();
                }
                prop_assert_eq!(rb.len(), model.len());
                let rb_entries: Vec<(u16, u32)> = rb.iter().map(|(k, v)| (*k, *v)).collect();
                let model_entries: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
                prop_assert_eq!(rb_entries, model_entries);
            }

            #[test]
            fn range_matches_btreemap(
                keys in proptest::collection::btree_set(any::<u16>(), 0..300),
                lo in any::<u16>(),
                hi in any::<u16>(),
            ) {
                let rb: RbTree<u16, ()> = keys.iter().map(|&k| (k, ())).collect();
                let model: BTreeMap<u16, ()> = keys.iter().map(|&k| (k, ())).collect();
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                let got: Vec<u16> = rb
                    .range(Bound::Included(&lo), Bound::Excluded(&hi))
                    .map(|(k, _)| *k)
                    .collect();
                let expected: Vec<u16> = model.range(lo..hi).map(|(k, _)| *k).collect();
                prop_assert_eq!(got, expected);
            }
        }
    }
}
