//! A LUBM (univ-bench) data generator.
//!
//! Follows the published LUBM profile closely enough that the paper's
//! queries retrieve structurally similar answer sets: universities contain
//! 15–25 departments; each department hosts full/associate/assistant
//! professors, lecturers, undergraduate and graduate students, courses,
//! research groups and publications, wired with the univ-bench object and
//! datatype properties. One university yields on the order of 100.000
//! triples (the paper's "LUBM1 / 100K" dataset).
//!
//! Generation is deterministic for a given seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use se_rdf::vocab::{lubm, rdf};
use se_rdf::{Graph, Literal, Term, Triple};

/// Deterministically generates `universities` LUBM universities.
pub fn generate(universities: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    for u in 0..universities {
        generate_university(&mut g, u, &mut rng);
    }
    g
}

fn class(name: &str) -> Term {
    Term::iri(lubm::iri(name))
}

fn prop(name: &str) -> Term {
    Term::iri(lubm::iri(name))
}

fn a(g: &mut Graph, s: &Term, c: &str) {
    g.insert(Triple::new(s.clone(), Term::iri(rdf::TYPE), class(c)));
}

fn rel(g: &mut Graph, s: &Term, p: &str, o: &Term) {
    g.insert(Triple::new(s.clone(), prop(p), o.clone()));
}

fn lit(g: &mut Graph, s: &Term, p: &str, v: impl Into<std::sync::Arc<str>>) {
    g.insert(Triple::new(
        s.clone(),
        prop(p),
        Term::Literal(Literal::string(v)),
    ));
}

fn generate_university(g: &mut Graph, u: usize, rng: &mut StdRng) {
    let univ = Term::iri(format!("http://www.University{u}.edu"));
    a(g, &univ, "University");
    lit(g, &univ, "name", format!("University{u}"));
    let n_depts = rng.random_range(15..=20);
    for d in 0..n_depts {
        generate_department(g, &univ, u, d, rng);
    }
}

struct DeptContext {
    dept: Term,
    ns: String,
    courses: Vec<Term>,
    grad_courses: Vec<Term>,
    faculty: Vec<Term>,
}

fn generate_department(g: &mut Graph, univ: &Term, u: usize, d: usize, rng: &mut StdRng) {
    let ns = format!("http://www.Department{d}.University{u}.edu");
    let dept = Term::iri(ns.clone());
    a(g, &dept, "Department");
    lit(g, &dept, "name", format!("Department{d}"));
    rel(g, &dept, "subOrganizationOf", univ);

    let mut ctx = DeptContext {
        dept: dept.clone(),
        ns,
        courses: Vec::new(),
        grad_courses: Vec::new(),
        faculty: Vec::new(),
    };

    // Research groups.
    for r in 0..rng.random_range(10..=20) {
        let group = Term::iri(format!("{}/ResearchGroup{r}", ctx.ns));
        a(g, &group, "ResearchGroup");
        rel(g, &group, "subOrganizationOf", &dept);
    }

    // Courses (created on demand by faculty, pre-seeded here).
    for c in 0..rng.random_range(25..=35) {
        let course = Term::iri(format!("{}/Course{c}", ctx.ns));
        a(g, &course, "Course");
        lit(g, &course, "name", format!("Course{c}"));
        ctx.courses.push(course);
    }
    for c in 0..rng.random_range(15..=25) {
        let course = Term::iri(format!("{}/GraduateCourse{c}", ctx.ns));
        a(g, &course, "GraduateCourse");
        lit(g, &course, "name", format!("GraduateCourse{c}"));
        ctx.grad_courses.push(course);
    }

    // Faculty.
    let n_full = rng.random_range(7..=10);
    let n_assoc = rng.random_range(10..=14);
    let n_assist = rng.random_range(8..=11);
    let n_lect = rng.random_range(5..=7);
    for i in 0..n_full {
        generate_faculty(g, &mut ctx, "FullProfessor", i, u, rng);
    }
    for i in 0..n_assoc {
        generate_faculty(g, &mut ctx, "AssociateProfessor", i, u, rng);
    }
    for i in 0..n_assist {
        generate_faculty(g, &mut ctx, "AssistantProfessor", i, u, rng);
    }
    for i in 0..n_lect {
        generate_faculty(g, &mut ctx, "Lecturer", i, u, rng);
    }
    // The department head is a full professor.
    let head = Term::iri(format!("{}/FullProfessor0", ctx.ns));
    rel(g, &head, "headOf", &dept);

    // Students.
    let n_faculty = ctx.faculty.len();
    let n_undergrad = n_faculty * rng.random_range(8..=14);
    let n_grad = n_faculty * rng.random_range(3..=4);
    for i in 0..n_undergrad {
        let s = Term::iri(format!("{}/UndergraduateStudent{i}", ctx.ns));
        a(g, &s, "UndergraduateStudent");
        lit(g, &s, "name", format!("UndergraduateStudent{i}"));
        rel(g, &s, "memberOf", &dept);
        for _ in 0..rng.random_range(2..=4) {
            let c = &ctx.courses[rng.random_range(0..ctx.courses.len())];
            rel(g, &s, "takesCourse", c);
        }
        if rng.random_range(0..5) == 0 {
            let adv = &ctx.faculty[rng.random_range(0..n_faculty)];
            rel(g, &s, "advisor", adv);
        }
    }
    for i in 0..n_grad {
        let s = Term::iri(format!("{}/GraduateStudent{i}", ctx.ns));
        a(g, &s, "GraduateStudent");
        lit(g, &s, "name", format!("GraduateStudent{i}"));
        lit(
            g,
            &s,
            "emailAddress",
            format!("GraduateStudent{i}@Department{d}.University{u}.edu"),
        );
        rel(g, &s, "memberOf", &dept);
        let ug_univ = Term::iri(format!(
            "http://www.University{}.edu",
            rng.random_range(0..=u.max(4))
        ));
        rel(g, &s, "undergraduateDegreeFrom", &ug_univ);
        for _ in 0..rng.random_range(1..=3) {
            let c = &ctx.grad_courses[rng.random_range(0..ctx.grad_courses.len())];
            rel(g, &s, "takesCourse", c);
        }
        let adv = &ctx.faculty[rng.random_range(0..n_faculty)];
        rel(g, &s, "advisor", adv);
        if rng.random_range(0..4) == 0 {
            a(g, &s, "TeachingAssistant");
        }
    }

    // Collaborative publications (departmental reports): publications with
    // many authors. These provide the high-fanout (s, publicationAuthor, ?o)
    // pairs behind the paper's Table 1 selectivity series (answer sets up
    // to ~513 objects for a single subject/predicate pair).
    let mut population: Vec<Term> = ctx.faculty.clone();
    for i in 0..n_grad {
        population.push(Term::iri(format!("{}/GraduateStudent{i}", ctx.ns)));
    }
    for i in 0..n_undergrad {
        population.push(Term::iri(format!("{}/UndergraduateStudent{i}", ctx.ns)));
    }
    for (r, target_authors) in [4usize, 66, 129, 257, 513].into_iter().enumerate() {
        let report = Term::iri(format!("{}/CollaborativeReport{r}", ctx.ns));
        a(g, &report, "Publication");
        lit(g, &report, "name", format!("CollaborativeReport{r}"));
        let n_authors = target_authors.min(population.len());
        for author in population.iter().take(n_authors) {
            rel(g, &report, "publicationAuthor", author);
        }
    }
}

fn generate_faculty(
    g: &mut Graph,
    ctx: &mut DeptContext,
    kind: &str,
    i: usize,
    u: usize,
    rng: &mut StdRng,
) {
    let f = Term::iri(format!("{}/{kind}{i}", ctx.ns));
    a(g, &f, kind);
    lit(g, &f, "name", format!("{kind}{i}"));
    lit(
        g,
        &f,
        "emailAddress",
        format!("{kind}{i}@{}", ctx.ns.trim_start_matches("http://www.")),
    );
    lit(
        g,
        &f,
        "telephone",
        format!("xxx-xxx-{:04}", rng.random_range(0..10_000)),
    );
    rel(g, &f, "worksFor", &ctx.dept);
    // Degrees from random universities (a small closed world keeps the
    // ?s,P,O selectivities realistic).
    let deg = |rng: &mut StdRng| {
        Term::iri(format!(
            "http://www.University{}.edu",
            rng.random_range(0..=u.max(4))
        ))
    };
    let d0 = deg(rng);
    rel(g, &f, "undergraduateDegreeFrom", &d0);
    let d1 = deg(rng);
    rel(g, &f, "mastersDegreeFrom", &d1);
    let d2 = deg(rng);
    rel(g, &f, "doctoralDegreeFrom", &d2);
    // Teaching.
    if kind == "Lecturer" {
        for _ in 0..rng.random_range(1..=2) {
            let c = ctx.courses[rng.random_range(0..ctx.courses.len())].clone();
            rel(g, &f, "teacherOf", &c);
        }
    } else {
        let c = ctx.courses[rng.random_range(0..ctx.courses.len())].clone();
        rel(g, &f, "teacherOf", &c);
        let gc = ctx.grad_courses[rng.random_range(0..ctx.grad_courses.len())].clone();
        rel(g, &f, "teacherOf", &gc);
    }
    // Publications authored by this faculty member.
    let n_pubs = match kind {
        "FullProfessor" => rng.random_range(15..=20),
        "AssociateProfessor" => rng.random_range(10..=18),
        "AssistantProfessor" => rng.random_range(5..=10),
        _ => rng.random_range(0..=5),
    };
    for p in 0..n_pubs {
        let pb = Term::iri(format!("{}/{kind}{i}/Publication{p}", ctx.ns));
        a(g, &pb, "Publication");
        lit(g, &pb, "name", format!("Publication{p}"));
        rel(g, &pb, "publicationAuthor", &f);
    }
    ctx.faculty.push(f);
}

/// The dataset sizes of the paper's experiments (§7.2): 250 and 500 come
/// from the water generator; the rest are LUBM subsets.
pub const PAPER_SIZES: [usize; 8] = [250, 500, 1_000, 5_000, 10_000, 25_000, 50_000, 100_000];

/// Carves the paper's `1K..50K` subsets out of a generated graph, plus the
/// full graph itself (denoted `100K`).
pub fn subsets(full: &Graph, sizes: &[usize]) -> Vec<(usize, Graph)> {
    sizes
        .iter()
        .map(|&n| {
            let mut g = full.clone();
            g.truncate(n.min(full.len()));
            (n, g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_university_is_about_100k_triples() {
        let g = generate(1, 42);
        assert!(
            g.len() > 90_000 && g.len() < 220_000,
            "unexpected size {}",
            g.len()
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(1, 7);
        let b = generate(1, 7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.triples()[..100], b.triples()[..100]);
        let c = generate(1, 8);
        assert_ne!(a.triples()[..100], c.triples()[..100]);
    }

    #[test]
    fn contains_expected_entity_types() {
        let g = generate(1, 42);
        let has_type = |c: &str| {
            let cls = lubm::iri(c);
            g.iter()
                .any(|t| t.is_type_triple() && t.object.as_iri() == Some(cls.as_str()))
        };
        for c in [
            "University",
            "Department",
            "FullProfessor",
            "AssociateProfessor",
            "AssistantProfessor",
            "Lecturer",
            "UndergraduateStudent",
            "GraduateStudent",
            "Course",
            "GraduateCourse",
            "ResearchGroup",
            "Publication",
            "TeachingAssistant",
        ] {
            assert!(has_type(c), "missing type {c}");
        }
    }

    #[test]
    fn contains_expected_properties() {
        let g = generate(1, 42);
        let has_prop = |p: &str| {
            let iri = lubm::iri(p);
            g.iter().any(|t| t.predicate.as_iri() == Some(iri.as_str()))
        };
        for p in [
            "worksFor",
            "headOf",
            "memberOf",
            "subOrganizationOf",
            "takesCourse",
            "teacherOf",
            "advisor",
            "publicationAuthor",
            "undergraduateDegreeFrom",
            "mastersDegreeFrom",
            "doctoralDegreeFrom",
            "name",
            "emailAddress",
            "telephone",
        ] {
            assert!(has_prop(p), "missing property {p}");
        }
    }

    #[test]
    fn subsets_have_requested_sizes() {
        let g = generate(1, 42);
        let subs = subsets(&g, &[1_000, 5_000, 10_000]);
        assert_eq!(subs[0].1.len(), 1_000);
        assert_eq!(subs[1].1.len(), 5_000);
        assert_eq!(subs[2].1.len(), 10_000);
    }

    #[test]
    fn head_of_exists_per_department() {
        let g = generate(1, 42);
        let head_of = lubm::iri("headOf");
        let n_depts = g
            .iter()
            .filter(|t| {
                t.is_type_triple() && t.object.as_iri() == Some(lubm::iri("Department").as_str())
            })
            .count();
        let n_heads = g
            .iter()
            .filter(|t| t.predicate.as_iri() == Some(head_of.as_str()))
            .count();
        assert_eq!(n_depts, n_heads);
    }
}
