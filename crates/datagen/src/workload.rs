//! The paper's 26-query workload (Appendix A) plus the motivating anomaly
//! query (§2).
//!
//! * **S1–S5** — single `S,P,?o` patterns at increasing answer sizes
//!   (Table 1 targets 4, 66, 129, 257, 513);
//! * **S6–S10** — single `?s,P,O` patterns (Table 2 targets 5, 17, 135,
//!   283, 521);
//! * **S11–S15** — single `?s,P,?o` patterns over fixed predicates
//!   (Figure 12);
//! * **M1–M5** — multi-TP BGPs without inference (Figure 13);
//! * **R1–R6** — BGPs whose exhaustive answers need `subClassOf` /
//!   `subPropertyOf` reasoning (Figure 14). R5/R6 share M4/M5's text — the
//!   difference is whether reasoning is enabled at execution time.
//!
//! Constants for S1–S10 are chosen *from the generated data* so each query
//! hits the answer-set size closest to the paper's: the generator cannot
//! reproduce the authors' exact instance names, but it can reproduce the
//! selectivity series, which is what the experiment measures.

use se_rdf::vocab::lubm;
use se_rdf::{Graph, Term};
use std::collections::HashMap;

const PREFIXES: &str = "PREFIX lubm: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

/// A workload query: identifier, SPARQL text, and whether an exhaustive
/// answer requires RDFS reasoning.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Paper identifier (S1..S15, M1..M5, R1..R6).
    pub id: String,
    /// SPARQL text.
    pub text: String,
    /// `true` for the R-group.
    pub reasoning: bool,
    /// The answer-set size the paper reports for this slot (if any).
    pub paper_cardinality: Option<usize>,
}

fn q(id: &str, text: String, reasoning: bool, paper_cardinality: Option<usize>) -> WorkloadQuery {
    WorkloadQuery {
        id: id.to_string(),
        text,
        reasoning,
        paper_cardinality,
    }
}

/// Table 1 targets for S1–S5.
pub const SPO_TARGETS: [usize; 5] = [4, 66, 129, 257, 513];
/// Table 2 targets for S6–S10.
pub const PO_TARGETS: [usize; 5] = [5, 17, 135, 283, 521];

/// S1–S5: `SELECT ?X WHERE { <X1> <P1> ?X }` with constants picked so the
/// answer sizes approximate the Table 1 series.
pub fn spo_queries(graph: &Graph) -> Vec<WorkloadQuery> {
    // Object count per (subject, predicate) pair.
    let mut counts: HashMap<(&Term, &Term), usize> = HashMap::new();
    for t in graph {
        if !t.is_type_triple() {
            *counts.entry((&t.subject, &t.predicate)).or_insert(0) += 1;
        }
    }
    SPO_TARGETS
        .iter()
        .enumerate()
        .map(|(i, &target)| {
            let ((s, p), actual) = counts
                .iter()
                .min_by_key(|(_, &c)| c.abs_diff(target))
                .map(|((s, p), c)| ((*s, *p), *c))
                .expect("graph has non-type triples");
            let text = format!("{PREFIXES}SELECT ?X WHERE {{ {s} {p} ?X }}");
            let mut wq = q(&format!("S{}", i + 1), text, false, Some(target));
            wq.paper_cardinality = Some(target);
            let _ = actual;
            wq
        })
        .collect()
}

/// S6–S10: `SELECT ?X WHERE { ?X <P1> <O1> }` approximating Table 2.
pub fn po_queries(graph: &Graph) -> Vec<WorkloadQuery> {
    let mut counts: HashMap<(&Term, &Term), usize> = HashMap::new();
    for t in graph {
        if !t.is_type_triple() && t.object.is_resource() {
            *counts.entry((&t.predicate, &t.object)).or_insert(0) += 1;
        }
    }
    PO_TARGETS
        .iter()
        .enumerate()
        .map(|(i, &target)| {
            let ((p, o), _actual) = counts
                .iter()
                .min_by_key(|(_, &c)| c.abs_diff(target))
                .map(|((p, o), c)| ((*p, *o), *c))
                .expect("graph has object triples");
            let text = format!("{PREFIXES}SELECT ?X WHERE {{ ?X {p} {o} }}");
            q(&format!("S{}", i + 6), text, false, Some(target))
        })
        .collect()
}

/// S11–S15: `?s,P,?o` over the paper's fixed predicates.
pub fn p_queries() -> Vec<WorkloadQuery> {
    let preds = [
        ("S11", "worksFor"),
        ("S12", "teacherOf"),
        ("S13", "undergraduateDegreeFrom"),
        ("S14", "emailAddress"),
        ("S15", "name"),
    ];
    preds
        .iter()
        .map(|(id, p)| {
            let text = format!("{PREFIXES}SELECT ?X ?Y WHERE {{ ?X lubm:{p} ?Y }}");
            q(id, text, false, None)
        })
        .collect()
}

/// M1–M4 (Appendix A.2.1), verbatim modulo prefixes.
pub fn m_queries(graph: &Graph) -> Vec<WorkloadQuery> {
    let mut out = vec![
        q(
            "M1",
            format!(
                "{PREFIXES}SELECT ?X ?Y ?Z WHERE {{ ?X lubm:worksFor ?Z . ?X lubm:name ?Y . }}"
            ),
            false,
            Some(540),
        ),
        q(
            "M2",
            format!(
                "{PREFIXES}SELECT ?X ?Y ?Z WHERE {{ ?X lubm:memberOf ?Z . \
                 ?X rdf:type lubm:GraduateStudent . ?X lubm:undergraduateDegreeFrom ?Y . }}"
            ),
            false,
            Some(1874),
        ),
        q(
            "M3",
            format!(
                "{PREFIXES}SELECT ?X ?Y ?Z WHERE {{ ?X lubm:memberOf ?Z . \
                 ?X rdf:type lubm:GraduateStudent . ?Z rdf:type lubm:Department . \
                 ?Z lubm:subOrganizationOf ?Y . ?Y rdf:type lubm:University . }}"
            ),
            false,
            Some(1874),
        ),
        q(
            "M4",
            format!(
                "{PREFIXES}SELECT ?X ?Y ?Z WHERE {{ ?X lubm:memberOf ?Z . \
                 ?Z lubm:subOrganizationOf ?Y . ?Y rdf:type lubm:University }}"
            ),
            false,
            Some(7790),
        ),
    ];
    if let Some(m5) = m5_query(graph) {
        out.push(q("M5", m5, false, Some(33)));
    }
    out
}

/// M5 needs a publication constant whose author is an AssociateProfessor
/// (Appendix A.2.1); this finds one in the generated data.
pub fn m5_query(graph: &Graph) -> Option<String> {
    // Map: subject -> is AssociateProfessor.
    let assoc = lubm::iri("AssociateProfessor");
    let is_assoc: std::collections::HashSet<&Term> = graph
        .iter()
        .filter(|t| t.is_type_triple() && t.object.as_iri() == Some(assoc.as_str()))
        .map(|t| &t.subject)
        .collect();
    let pub_author = lubm::iri("publicationAuthor");
    let publication = graph.iter().find_map(|t| {
        (t.predicate.as_iri() == Some(pub_author.as_str()) && is_assoc.contains(&t.object))
            .then_some(&t.subject)
    })?;
    Some(format!(
        "{PREFIXES}SELECT * WHERE {{ {publication} lubm:publicationAuthor ?p . \
         ?st lubm:memberOf ?o2 . ?p rdf:type lubm:AssociateProfessor . \
         ?p lubm:worksFor ?o . ?o rdf:type lubm:Department . \
         ?o lubm:subOrganizationOf ?u . ?u rdf:type lubm:University . \
         ?p lubm:teacherOf ?te . ?te rdf:type lubm:Course . \
         ?st lubm:takesCourse ?te . ?st rdf:type lubm:UndergraduateStudent . }}"
    ))
}

/// R1–R6 (Appendix A.2.2). R5/R6 reuse M4/M5's text; reasoning happens at
/// execution time (LiteMat for SuccinctEdge, UNION rewriting for the
/// baselines).
pub fn r_queries(graph: &Graph) -> Vec<WorkloadQuery> {
    let mut out = vec![
        q(
            "R1",
            format!(
                "{PREFIXES}SELECT ?X ?Y ?Z WHERE {{ ?X rdf:type lubm:Person . \
                 ?Z rdf:type lubm:Department . ?X lubm:headOf ?Z . \
                 ?Z lubm:subOrganizationOf ?Y . ?Y rdf:type lubm:University . }}"
            ),
            true,
            Some(15),
        ),
        q(
            "R2",
            format!(
                "{PREFIXES}SELECT ?X ?Y ?Z WHERE {{ ?X rdf:type lubm:Person . \
                 ?Z rdf:type lubm:Department . ?X lubm:worksFor ?Z . \
                 ?Z lubm:subOrganizationOf ?Y . ?Y rdf:type lubm:University . }}"
            ),
            true,
            Some(555),
        ),
        q(
            "R3",
            format!(
                "{PREFIXES}SELECT ?X ?Y ?Z WHERE {{ ?X lubm:memberOf ?Z . \
                 ?X rdf:type lubm:Student . ?X lubm:undergraduateDegreeFrom ?Y . }}"
            ),
            true,
            Some(1874),
        ),
        q(
            "R4",
            format!(
                "{PREFIXES}SELECT ?X ?Y ?Z ?N WHERE {{ ?X rdf:type lubm:Person . \
                 ?Z rdf:type lubm:Department . ?X lubm:memberOf ?Z . \
                 ?Z lubm:subOrganizationOf ?Y . ?Y lubm:name ?N . \
                 ?Y rdf:type lubm:University . }}"
            ),
            true,
            Some(1874),
        ),
        q(
            "R5",
            format!(
                "{PREFIXES}SELECT ?X ?Y ?Z WHERE {{ ?X lubm:memberOf ?Z . \
                 ?Z lubm:subOrganizationOf ?Y . ?Y rdf:type lubm:University }}"
            ),
            true,
            Some(8345),
        ),
    ];
    if let Some(m5) = m5_query(graph) {
        out.push(q("R6", m5, true, Some(34)));
    }
    out
}

/// The full S/M/R workload in paper order.
pub fn full_workload(graph: &Graph) -> Vec<WorkloadQuery> {
    let mut out = spo_queries(graph);
    out.extend(po_queries(graph));
    out.extend(p_queries());
    out.extend(m_queries(graph));
    out.extend(r_queries(graph));
    out
}

/// The §2 anomaly-detection query over the water datasets (pressure out of
/// the `[3.0, 4.5]` Bar band, units normalized through BIND/regex).
pub fn water_anomaly_query() -> String {
    r#"
PREFIX sosa: <http://www.w3.org/ns/sosa/>
PREFIX qudt: <http://qudt.org/schema/qudt/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?x ?s ?ts ?v1 WHERE {
    ?x rdf:type sosa:Platform ; sosa:hosts ?s .
    ?s sosa:observes ?o .
    ?o sosa:hasResult ?y ; rdf:type sosa:Observation ; sosa:resultTime ?ts .
    ?y rdf:type sosa:Result ; qudt:numericValue ?v1 ; qudt:unit ?u1 .
    ?u1 rdf:type qudt:PressureUnit .
    FILTER (?newV < 3.00 || ?newV > 4.50)
    BIND(if(regex(str(?u1),"http://qudt.org/vocab/unit/BAR"),?v1,
         if(regex(str(?u1),"http://qudt.org/vocab/unit/HectoPA"),?v1/1000,0)) as ?newV)
}"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lubm;

    fn small_graph() -> Graph {
        let mut g = lubm::generate(1, 42);
        g.truncate(20_000);
        g
    }

    #[test]
    fn workload_has_26_queries_on_full_graph() {
        let g = lubm::generate(1, 42);
        let w = full_workload(&g);
        assert_eq!(w.len(), 26);
        assert_eq!(w[0].id, "S1");
        assert_eq!(w[25].id, "R6");
        assert_eq!(w.iter().filter(|q| q.reasoning).count(), 6);
    }

    #[test]
    fn queries_parse() {
        let g = small_graph();
        for wq in full_workload(&g) {
            se_sparql_parse_check(&wq.text, &wq.id);
        }
        se_sparql_parse_check(&water_anomaly_query(), "water");
    }

    // The datagen crate does not depend on se-sparql; checking the query
    // strings are well-formed happens in integration tests. Here we only
    // sanity-check shape.
    fn se_sparql_parse_check(text: &str, id: &str) {
        assert!(text.contains("SELECT"), "{id} missing SELECT");
        assert!(text.contains("WHERE"), "{id} missing WHERE");
        assert!(text.trim_end().ends_with('}'), "{id} not brace-terminated");
    }

    #[test]
    fn spo_constants_have_increasing_fanout() {
        let g = lubm::generate(1, 42);
        let queries = spo_queries(&g);
        assert_eq!(queries.len(), 5);
        // The collaborative reports guarantee the large targets exist.
        for wq in &queries {
            assert!(wq.text.contains("SELECT ?X WHERE"));
        }
    }

    #[test]
    fn m5_finds_a_publication() {
        let g = lubm::generate(1, 42);
        let m5 = m5_query(&g).expect("generated data has associate-professor publications");
        assert!(m5.contains("lubm:publicationAuthor"));
        assert!(m5.contains("lubm:AssociateProfessor"));
    }
}
