//! Synthetic water-distribution measurement graphs (the paper's real-world
//! ENGIE datasets, §2 and §7.2).
//!
//! Each graph is a snapshot of a building's potable-water IoT network:
//! stations (SOSA platforms) host pressure and chemistry sensors whose
//! observations carry QUDT-annotated results. Faithfully to §2, the two
//! station profiles annotate similar measures with *different* concepts
//! and units:
//!
//! * **Station profile 1** — pressure results typed
//!   `qudt:PressureOrStressUnit`, value in Bar (`unit:BAR`); chemistry
//!   results typed `qudt:Chemistry`;
//! * **Station profile 2** — pressure results typed `qudt:PressureUnit`,
//!   value in hectopascal (`unit:HectoPA`); chemistry results typed
//!   `qudt:AmountOfSubstanceUnit`.
//!
//! A single query over `qudt:PressureUnit` with LiteMat reasoning catches
//! both profiles — that is the §2 scenario. Normal pressure lies in
//! `[3.0, 4.5]` Bar; with probability `anomaly_rate` a measurement falls
//! outside (the anomaly the continuous query must detect).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use se_rdf::vocab::{qudt, rdf, sosa, xsd};
use se_rdf::{Graph, Literal, Term, Triple};

/// Tunable generator configuration.
#[derive(Debug, Clone)]
pub struct WaterConfig {
    /// Number of stations (alternating between the two §2 profiles).
    pub stations: usize,
    /// Measurement rounds per sensor.
    pub rounds: usize,
    /// Probability that a pressure measurement is anomalous.
    pub anomaly_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WaterConfig {
    fn default() -> Self {
        Self {
            stations: 2,
            rounds: 8,
            anomaly_rate: 0.1,
            seed: 42,
        }
    }
}

/// Generates a measurement graph of roughly `target_triples` triples
/// (250 or 500 in the paper). Rounds are added until the target is met.
pub fn generate(target_triples: usize, seed: u64) -> Graph {
    // Each round on each station produces ~22 triples (two sensors).
    let mut cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.15,
        seed,
    };
    loop {
        // Unit IRIs are shared across observations, so their rdf:type
        // triples repeat; size on *distinct* triples like the paper's
        // datasets.
        let mut g = generate_with(&cfg);
        g.dedup();
        if g.len() >= target_triples || cfg.rounds > 10_000 {
            g.truncate(target_triples);
            return g;
        }
        cfg.rounds += 1;
    }
}

/// Generates with explicit configuration.
pub fn generate_with(cfg: &WaterConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Graph::new();
    let mut blank = 0usize;
    for st in 0..cfg.stations {
        let profile1 = st % 2 == 0;
        let station = Term::iri(format!("http://engie.example/station/{}", st + 1));
        g.insert(Triple::new(
            station.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(sosa::PLATFORM),
        ));
        let pressure_sensor = Term::iri(format!("http://engie.example/sensor/pressure{}", st + 1));
        let chem_sensor = Term::iri(format!("http://engie.example/sensor/chem{}", st + 1));
        for sensor in [&pressure_sensor, &chem_sensor] {
            g.insert(Triple::new(
                station.clone(),
                Term::iri(sosa::HOSTS),
                sensor.clone(),
            ));
            g.insert(Triple::new(
                sensor.clone(),
                Term::iri(rdf::TYPE),
                Term::iri(sosa::SENSOR),
            ));
        }
        for round in 0..cfg.rounds {
            // -------- pressure observation --------
            let anomalous = rng.random_bool(cfg.anomaly_rate);
            let bar = if anomalous {
                if rng.random_bool(0.5) {
                    rng.random_range(0.5..2.9)
                } else {
                    rng.random_range(4.6..7.0)
                }
            } else {
                rng.random_range(3.0..4.5)
            };
            let (value, unit_iri, unit_class) = if profile1 {
                (bar, qudt::BAR, qudt::PRESSURE_OR_STRESS_UNIT)
            } else {
                (bar * 1000.0, qudt::HECTO_PA, qudt::PRESSURE_UNIT)
            };
            emit_observation(
                &mut g,
                &mut blank,
                &pressure_sensor,
                round,
                value,
                unit_iri,
                unit_class,
            );
            // -------- chemistry observation --------
            let chem_value = rng.random_range(0.1..2.0);
            let chem_class = if profile1 {
                qudt::CHEMISTRY
            } else {
                qudt::AMOUNT_OF_SUBSTANCE_UNIT
            };
            emit_observation(
                &mut g,
                &mut blank,
                &chem_sensor,
                round,
                chem_value,
                "http://qudt.org/vocab/unit/MOL-PER-L",
                chem_class,
            );
        }
    }
    g
}

fn emit_observation(
    g: &mut Graph,
    blank: &mut usize,
    sensor: &Term,
    round: usize,
    value: f64,
    unit_iri: &str,
    unit_class: &str,
) {
    let (own, shared) = observation_triples(blank, sensor, round, value, unit_iri, unit_class);
    for t in own {
        g.insert(t);
    }
    g.insert(shared);
}

/// The triples of one observation, split into the observation-specific
/// part (blank-node subgraph + sensor edge — safe to retire later) and the
/// shared unit-typing triple (referenced by every observation using the
/// unit, so never retired with an individual observation).
fn observation_triples(
    blank: &mut usize,
    sensor: &Term,
    round: usize,
    value: f64,
    unit_iri: &str,
    unit_class: &str,
) -> (Vec<Triple>, Triple) {
    // Blank nodes for observation and result, as in the paper's Figure 1
    // ("green nodes are blank nodes").
    let obs = Term::blank(format!("obs{}", *blank));
    let res = Term::blank(format!("res{}", *blank));
    // One distinct unit node per observation, typed with the profile's
    // unit concept and linked to the concrete unit IRI via its own
    // annotation — the unit node is what `?u1 a qudt:PressureUnit` binds.
    let unit = Term::iri(unit_iri.to_string());
    *blank += 1;
    let own = vec![
        Triple::new(sensor.clone(), Term::iri(sosa::OBSERVES), obs.clone()),
        Triple::new(
            obs.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(sosa::OBSERVATION),
        ),
        Triple::new(obs.clone(), Term::iri(sosa::HAS_RESULT), res.clone()),
        Triple::new(
            obs.clone(),
            Term::iri(sosa::RESULT_TIME),
            Term::Literal(Literal::typed(
                format!("2020-11-01T{:02}:00:00Z", round % 24),
                xsd::DATE_TIME,
            )),
        ),
        Triple::new(res.clone(), Term::iri(rdf::TYPE), Term::iri(sosa::RESULT)),
        Triple::new(
            res.clone(),
            Term::iri(qudt::NUMERIC_VALUE),
            Term::Literal(Literal::double((value * 1000.0).round() / 1000.0)),
        ),
        Triple::new(res, Term::iri(qudt::UNIT), unit.clone()),
    ];
    let shared = Triple::new(
        unit,
        Term::iri(rdf::TYPE),
        Term::iri(unit_class.to_string()),
    );
    (own, shared)
}

/// Workload-aware shard routing for the water scenario — the
/// per-station-group policy hook for `se-stream`'s sharded store (wrap it
/// as `ShardPolicy::ByIri(Arc::new(water::water_shard_group))`).
///
/// The measurement pipeline writes three groups at very different rates,
/// so they are pinned to different shards instead of being spread blindly:
///
/// * **group 0 — topology**: `sosa:hosts` and the station/sensor classes;
///   written once per station, queried by membership patterns;
/// * **group 1 — observation graph**: `sosa:observes`/`sosa:hasResult`/
///   `sosa:resultTime` and the observation/result classes; one write per
///   observation;
/// * **group 2 — measurement payload**: `qudt:numericValue`/`qudt:unit`
///   and the QUDT unit classes; the hot path the anomaly query scans.
///
/// Remaining terms hash across all shards. Groups fold modulo the shard
/// count, so the policy is valid for any `n >= 1`.
pub fn water_shard_group(iri: &str, n_shards: usize) -> usize {
    let group = match iri {
        sosa::HOSTS | sosa::PLATFORM | sosa::SENSOR => 0,
        sosa::OBSERVES
        | sosa::HAS_RESULT
        | sosa::RESULT_TIME
        | sosa::MADE_BY_SENSOR
        | sosa::OBSERVATION
        | sosa::RESULT => 1,
        qudt::NUMERIC_VALUE | qudt::UNIT => 2,
        _ if iri.starts_with("http://qudt.org/") => 2,
        _ => iri
            .bytes()
            .fold(0usize, |h, b| h.wrapping_mul(31).wrapping_add(b as usize)),
    };
    group % n_shards.max(1)
}

/// One streamed batch of sensor data: fresh measurement rounds to insert
/// and expired observations to delete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamBatch {
    /// Newly arrived triples (topology on the first batch, then one
    /// measurement round per sensor).
    pub inserts: Graph,
    /// Retired triples (observation subgraphs older than the retention
    /// window; shared unit-typing triples are never retired).
    pub deletes: Graph,
}

/// Generates a deterministic stream of measurement batches over the §2
/// two-profile station topology.
///
/// Batch 0 carries the static topology plus the first measurement round;
/// every later batch carries one round per sensor. Once a round falls out
/// of the `retain_rounds` window, its observation subgraphs (blank-node
/// observations/results and the `sosa:observes` edges) are emitted as
/// deletions — the sliding-window ingestion pattern of an edge deployment.
pub fn generate_stream(
    cfg: &WaterConfig,
    batches: usize,
    retain_rounds: usize,
) -> Vec<StreamBatch> {
    assert!(retain_rounds >= 1, "retention window must keep >= 1 round");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut blank = 0usize;
    let mut out = Vec::with_capacity(batches);
    // Per-round observation-specific triples, for later retirement.
    let mut round_own: Vec<Vec<Triple>> = Vec::with_capacity(batches);

    // Static topology (batch 0).
    let mut topology = Graph::new();
    let mut sensors: Vec<(Term, Term, bool)> = Vec::new(); // (pressure, chem, profile1)
    for st in 0..cfg.stations {
        let profile1 = st % 2 == 0;
        let station = Term::iri(format!("http://engie.example/station/{}", st + 1));
        topology.insert(Triple::new(
            station.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(sosa::PLATFORM),
        ));
        let pressure = Term::iri(format!("http://engie.example/sensor/pressure{}", st + 1));
        let chem = Term::iri(format!("http://engie.example/sensor/chem{}", st + 1));
        for sensor in [&pressure, &chem] {
            topology.insert(Triple::new(
                station.clone(),
                Term::iri(sosa::HOSTS),
                sensor.clone(),
            ));
            topology.insert(Triple::new(
                sensor.clone(),
                Term::iri(rdf::TYPE),
                Term::iri(sosa::SENSOR),
            ));
        }
        sensors.push((pressure, chem, profile1));
    }

    for round in 0..batches {
        let mut inserts = if round == 0 {
            topology.clone()
        } else {
            Graph::new()
        };
        let mut own_this_round = Vec::new();
        for (pressure_sensor, chem_sensor, profile1) in &sensors {
            // -------- pressure observation --------
            let anomalous = rng.random_bool(cfg.anomaly_rate);
            let bar = if anomalous {
                if rng.random_bool(0.5) {
                    rng.random_range(0.5..2.9)
                } else {
                    rng.random_range(4.6..7.0)
                }
            } else {
                rng.random_range(3.0..4.5)
            };
            let (value, unit_iri, unit_class) = if *profile1 {
                (bar, qudt::BAR, qudt::PRESSURE_OR_STRESS_UNIT)
            } else {
                (bar * 1000.0, qudt::HECTO_PA, qudt::PRESSURE_UNIT)
            };
            let (own, shared) = observation_triples(
                &mut blank,
                pressure_sensor,
                round,
                value,
                unit_iri,
                unit_class,
            );
            for t in &own {
                inserts.insert(t.clone());
            }
            inserts.insert(shared);
            own_this_round.extend(own);
            // -------- chemistry observation --------
            let chem_value = rng.random_range(0.1..2.0);
            let chem_class = if *profile1 {
                qudt::CHEMISTRY
            } else {
                qudt::AMOUNT_OF_SUBSTANCE_UNIT
            };
            let (own, shared) = observation_triples(
                &mut blank,
                chem_sensor,
                round,
                chem_value,
                "http://qudt.org/vocab/unit/MOL-PER-L",
                chem_class,
            );
            for t in &own {
                inserts.insert(t.clone());
            }
            inserts.insert(shared);
            own_this_round.extend(own);
        }
        round_own.push(own_this_round);

        let mut deletes = Graph::new();
        if round >= retain_rounds {
            for t in &round_own[round - retain_rounds] {
                deletes.insert(t.clone());
            }
        }
        out.push(StreamBatch { inserts, deletes });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        let g250 = generate(250, 1);
        assert_eq!(g250.len(), 250);
        let g500 = generate(500, 1);
        assert_eq!(g500.len(), 500);
    }

    #[test]
    fn deterministic() {
        let a = generate(250, 5);
        let b = generate(250, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn two_profiles_use_different_annotations() {
        let g = generate(500, 1);
        let has = |c: &str| {
            g.iter()
                .any(|t| t.is_type_triple() && t.object.as_iri() == Some(c))
        };
        assert!(has(qudt::PRESSURE_OR_STRESS_UNIT), "profile 1 annotation");
        assert!(has(qudt::PRESSURE_UNIT), "profile 2 annotation");
        assert!(has(qudt::CHEMISTRY) || has(qudt::AMOUNT_OF_SUBSTANCE_UNIT));
    }

    #[test]
    fn units_differ_between_profiles() {
        let g = generate(500, 1);
        let unit_used = |u: &str| {
            g.iter()
                .any(|t| t.predicate.as_iri() == Some(qudt::UNIT) && t.object.as_iri() == Some(u))
        };
        assert!(unit_used(qudt::BAR));
        assert!(unit_used(qudt::HECTO_PA));
    }

    #[test]
    fn observation_shape_matches_figure_1() {
        let g = generate_with(&WaterConfig {
            stations: 1,
            rounds: 1,
            anomaly_rate: 0.0,
            seed: 1,
        });
        let has_pred = |p: &str| g.iter().any(|t| t.predicate.as_iri() == Some(p));
        for p in [
            sosa::HOSTS,
            sosa::OBSERVES,
            sosa::HAS_RESULT,
            sosa::RESULT_TIME,
            qudt::NUMERIC_VALUE,
            qudt::UNIT,
        ] {
            assert!(has_pred(p), "missing predicate {p}");
        }
        // Observations and results are blank nodes.
        assert!(g.iter().any(|t| matches!(&t.subject, Term::Blank(_))));
    }

    #[test]
    fn stream_batches_are_deterministic_and_windowed() {
        let cfg = WaterConfig {
            stations: 2,
            rounds: 1,
            anomaly_rate: 0.2,
            seed: 11,
        };
        let a = generate_stream(&cfg, 8, 3);
        let b = generate_stream(&cfg, 8, 3);
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 8);
        // Batch 0 carries topology; all batches carry observations.
        assert!(a[0].inserts.len() > a[1].inserts.len());
        // No deletions until the window fills.
        for batch in &a[..3] {
            assert!(batch.deletes.is_empty());
        }
        // Afterwards every batch retires one round.
        for batch in &a[3..] {
            assert!(!batch.deletes.is_empty());
            // Shared unit-typing triples are never retired.
            for t in &batch.deletes {
                let retires_unit_typing = t.is_type_triple()
                    && t.subject
                        .as_iri()
                        .is_some_and(|s| s.contains("/vocab/unit/"));
                assert!(!retires_unit_typing, "retired shared unit typing: {t}");
            }
        }
        // Deleted triples were inserted in an earlier batch.
        let all_inserted: std::collections::HashSet<_> =
            a.iter().flat_map(|b| b.inserts.iter().cloned()).collect();
        for batch in &a {
            for t in &batch.deletes {
                assert!(all_inserted.contains(t), "deletion of never-inserted {t}");
            }
        }
    }

    #[test]
    fn stream_covers_both_profiles() {
        let cfg = WaterConfig {
            stations: 2,
            rounds: 1,
            anomaly_rate: 0.0,
            seed: 5,
        };
        let batches = generate_stream(&cfg, 4, 2);
        let has_class = |c: &str| {
            batches.iter().any(|b| {
                b.inserts
                    .iter()
                    .any(|t| t.is_type_triple() && t.object.as_iri() == Some(c))
            })
        };
        assert!(has_class(qudt::PRESSURE_OR_STRESS_UNIT));
        assert!(has_class(qudt::PRESSURE_UNIT));
    }

    #[test]
    fn shard_groups_are_stable_and_in_range() {
        for n in [1, 2, 3, 4, 8] {
            for iri in [
                sosa::HOSTS,
                sosa::OBSERVES,
                qudt::NUMERIC_VALUE,
                qudt::PRESSURE_UNIT,
                "http://example.org/other",
            ] {
                let s = water_shard_group(iri, n);
                assert!(s < n, "{iri} routed to {s} of {n}");
                assert_eq!(s, water_shard_group(iri, n), "deterministic");
            }
        }
        // The three pipeline groups land on distinct shards when there is
        // room for them.
        let groups = [
            water_shard_group(sosa::HOSTS, 3),
            water_shard_group(sosa::OBSERVES, 3),
            water_shard_group(qudt::NUMERIC_VALUE, 3),
        ];
        assert_eq!(groups, [0, 1, 2]);
    }

    #[test]
    fn anomaly_rate_zero_keeps_values_in_band() {
        let g = generate_with(&WaterConfig {
            stations: 2,
            rounds: 50,
            anomaly_rate: 0.0,
            seed: 3,
        });
        for t in &g {
            if t.predicate.as_iri() == Some(qudt::NUMERIC_VALUE) {
                let v: f64 = t.object.as_literal().unwrap().as_f64().unwrap();
                // Bar values in [3,4.5]; hPa values in [3000,4500]; chem < 2.
                assert!(
                    (0.0..=4.5).contains(&v) || (3000.0..=4500.0).contains(&v),
                    "out-of-band value {v}"
                );
            }
        }
    }
}
