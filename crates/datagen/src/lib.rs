//! # se-datagen — synthetic datasets and the paper's query workload
//!
//! The evaluation (§7.2) uses two dataset families:
//!
//! * **LUBM** — the Lehigh University Benchmark. The paper generates one
//!   university (>100.000 triples) and carves 1K/5K/10K/25K/50K subsets out
//!   of it. [`lubm::generate`] reimplements the univ-bench generator with
//!   the same entity types, property shapes and rough cardinalities.
//! * **ENGIE water distribution** — proprietary 250- and 500-triple graphs
//!   from a building's potable-water management system. [`water::generate`]
//!   synthesizes graphs of the same shape (SOSA observations, QUDT units,
//!   two station profiles with *different* annotations, §2), which
//!   preserves the code paths the real data exercises: rdf:type-heavy
//!   graphs, datatype literals, and hierarchy-spanning unit annotations.
//!
//! [`workload`] reconstructs the 26-query workload of Appendix A
//! (S1–S15 single-TP, M1–M5 multi-TP, R1–R6 reasoning) plus the motivating
//! anomaly query of §2.

pub mod lubm;
pub mod water;
pub mod workload;

pub use lubm::generate as generate_lubm;
pub use water::generate as generate_water;
pub use water::{generate_stream, StreamBatch};
