//! The hybrid query view: an immutable [`SuccinctEdgeStore`] baseline plus
//! the mutable [`DeltaStore`] overlay, merged at **pattern-access
//! granularity** behind the [`TripleSource`] trait.
//!
//! Every access first consults the overlay: baseline answers are filtered
//! through tombstones ([`DeltaState::Deleted`]) and overlay insertions
//! ([`DeltaState::Added`]) are merged in, preserving the ordering
//! contracts of the trait (subject-sorted scans for the merge join,
//! ascending deduplicated subject lists).
//!
//! # Dictionary overflow
//!
//! Terms unseen at build time cannot be encoded by the frozen baseline
//! dictionaries. The hybrid store therefore keeps three *overflow*
//! dictionaries:
//!
//! * **instances** continue the baseline's dense id space (`base_len..`);
//! * **properties** and **concepts** receive ids above [`OVERFLOW_BASE`].
//!   They carry no LiteMat prefix code, so their subsumption interval is
//!   the singleton `[id, id+1)` — reasoning over a *new* term sees only
//!   its own assertions until the next compaction folds the term into the
//!   ontology (via the builder's augmentation step) and re-encodes it;
//! * **literals** of overlay triples live in the delta's content-interned
//!   table and surface as `Value::Literal(OVERFLOW_BASE + local)`.
//!
//! # Compaction
//!
//! When the overlay grows past [`CompactionPolicy::max_overlay`] entries,
//! [`HybridStore::compact`] materializes baseline + delta into a term
//! graph and rebuilds the succinct layers from scratch, clearing the
//! overlay. The rebuilt store persists through the unchanged
//! `SuccinctEdgeStore` format, so `save`/`load` round-trips keep working.

use crate::delta::{DeltaObj, DeltaState, DeltaStore};
use crate::error::StreamError;
use crate::persist::SaveReport;
use se_core::builder::{instance_key, key_to_term_arc};
use se_core::{SuccinctEdgeStore, TripleSource, Value};
use se_litemat::IdInterval;
use se_ontology::Ontology;
use se_rdf::{Graph, Literal, Term, Triple};
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// First identifier of the overflow id space for properties, concepts and
/// overlay literals. LiteMat codes and flat-literal indices stay far below
/// this in any realistic store.
pub const OVERFLOW_BASE: u64 = 1 << 62;

/// Locks a store's WAL slot, surviving a poisoned mutex (the WAL's own
/// state is fail-stop: a panicked appender leaves it no worse than a
/// crash, which recovery is built for).
pub(crate) fn lock_wal(
    m: &std::sync::Mutex<Option<crate::wal::Wal>>,
) -> std::sync::MutexGuard<'_, Option<crate::wal::Wal>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// When to fold the overlay into the succinct baseline.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Rebuild once the overlay holds at least this many entries
    /// (inserted or tombstoned triples).
    pub max_overlay: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self { max_overlay: 4096 }
    }
}

/// The net visibility changes of one batch, in term space: what the
/// incremental continuous-query evaluator feeds through the delta rules.
///
/// "Net" means intra-batch churn cancels out — a triple deleted and
/// re-inserted by riders of the same batch (`Restored` in overlay terms)
/// appears in neither list, and a triple that was already present (or
/// already absent) contributes nothing. `added` and `removed` are
/// therefore disjoint, and replaying them against the pre-batch state
/// reproduces the post-batch state exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchDelta {
    /// Triples that became visible in this batch.
    pub added: Vec<Triple>,
    /// Triples that stopped being visible in this batch.
    pub removed: Vec<Triple>,
}

impl BatchDelta {
    /// `true` when the batch changed nothing visible.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total net changes (insertions plus removals).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Folds raw per-operation events (`+1` became visible, `-1` stopped
    /// being visible) into net lists. Per-triple nets stay in `{-1, 0, +1}`
    /// because effective operations strictly alternate visibility.
    pub(crate) fn from_events(events: Vec<(Triple, i64)>) -> Self {
        let mut net: HashMap<Triple, i64> = HashMap::with_capacity(events.len());
        for (t, w) in events {
            *net.entry(t).or_insert(0) += w;
        }
        let mut delta = BatchDelta::default();
        for (t, w) in net {
            match w.cmp(&0) {
                std::cmp::Ordering::Greater => delta.added.push(t),
                std::cmp::Ordering::Less => delta.removed.push(t),
                std::cmp::Ordering::Equal => {}
            }
        }
        delta
    }
}

/// Outcome of one [`HybridStore::apply`] batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Triples that became visible.
    pub inserted: usize,
    /// Triples that became invisible.
    pub deleted: usize,
    /// Operations with no effect (duplicate inserts, deletes of absent
    /// triples).
    pub noops: usize,
    /// `true` if this batch triggered a compaction.
    pub compacted: bool,
    /// Time spent routing + applying the overlay mutations of this batch
    /// (compaction excluded).
    pub ingest: Duration,
    /// Time this batch's `apply` call spent blocked on compaction work
    /// (inline rebuild, or the atomic swap of a finished background
    /// rebuild). Zero while a background rebuild is still running.
    pub compaction: Duration,
    /// The batch's net term-space changes, captured only when the store's
    /// delta capture is enabled (see `StreamStore::set_delta_capture`) —
    /// `None` otherwise, so plain ingest paths pay nothing for it.
    pub delta: Option<BatchDelta>,
}

/// Counters over the store's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Number of compactions performed.
    pub compactions: usize,
    /// Total triples inserted (effective, not no-ops).
    pub total_inserted: usize,
    /// Total triples deleted (effective).
    pub total_deleted: usize,
    /// Total time spent applying overlay mutations.
    pub total_ingest: Duration,
    /// Total time spent compacting (rebuild + swap; for background
    /// compaction this is worker wall time, off the ingest hot path).
    pub total_compaction: Duration,
    /// Logical write epoch: successful `apply` batches over the store's
    /// lifetime (restored across v02 save/load). Compactions do not
    /// advance it — they preserve content.
    pub epoch: u64,
    /// Snapshots taken over the store's lifetime.
    pub snapshots: usize,
    /// Snapshots currently alive, pinning resources (swapped-out
    /// baselines, overlay literals). A monotonically growing value here
    /// under a steady workload is a snapshot leak.
    pub live_pins: usize,
}

/// Overflow dictionary for properties or concepts: ids above
/// [`OVERFLOW_BASE`], no hierarchy. Shared with the sharded store, which
/// keeps one global overflow space across all shards.
#[derive(Debug, Clone, Default)]
pub(crate) struct OverflowDict {
    ids: HashMap<Arc<str>, u64>,
    terms: Vec<Arc<str>>,
}

impl OverflowDict {
    pub(crate) fn get_or_insert(&mut self, iri: &str) -> u64 {
        if let Some(&id) = self.ids.get(iri) {
            return id;
        }
        let id = OVERFLOW_BASE + self.terms.len() as u64;
        let arc: Arc<str> = Arc::from(iri);
        self.ids.insert(arc.clone(), id);
        self.terms.push(arc);
        id
    }

    pub(crate) fn id(&self, iri: &str) -> Option<u64> {
        self.ids.get(iri).copied()
    }

    pub(crate) fn term(&self, id: u64) -> Option<Arc<str>> {
        self.terms
            .get(id.checked_sub(OVERFLOW_BASE)? as usize)
            .cloned()
    }

    pub(crate) fn clear(&mut self) {
        self.ids.clear();
        self.terms.clear();
    }

    /// The overflow IRIs in id order (`OVERFLOW_BASE + position`).
    pub(crate) fn terms(&self) -> &[Arc<str>] {
        &self.terms
    }
}

/// Overflow instance dictionary: continues the baseline's dense id space.
#[derive(Debug, Clone, Default)]
pub(crate) struct OverflowInstances {
    ids: HashMap<Arc<str>, u64>,
    terms: Vec<Arc<str>>,
    base_len: u64,
}

impl OverflowInstances {
    pub(crate) fn get_or_insert(&mut self, key: &str) -> u64 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.base_len + self.terms.len() as u64;
        let arc: Arc<str> = Arc::from(key);
        self.ids.insert(arc.clone(), id);
        self.terms.push(arc);
        id
    }

    fn id(&self, key: &str) -> Option<u64> {
        self.ids.get(key).copied()
    }

    fn term(&self, id: u64) -> Option<Arc<str>> {
        self.terms
            .get(id.checked_sub(self.base_len)? as usize)
            .cloned()
    }

    fn reset(&mut self, base_len: u64) {
        self.ids.clear();
        self.terms.clear();
        self.base_len = base_len;
    }

    /// First overflow id (= baseline instance count at freeze time).
    pub(crate) fn base_len(&self) -> u64 {
        self.base_len
    }

    /// Rebuilds the dictionary from persisted keys, in id order.
    pub(crate) fn from_keys(base_len: u64, keys: impl Iterator<Item = String>) -> Self {
        let mut d = Self {
            base_len,
            ..Default::default()
        };
        for key in keys {
            d.get_or_insert(&key);
        }
        d
    }

    /// The overflow keys in id order (`base_len + position`).
    pub(crate) fn terms(&self) -> &[Arc<str>] {
        &self.terms
    }
}

/// A SuccinctEdge baseline with a mutable delta overlay: ingests triple
/// batches, answers every [`TripleSource`] access over the merged view,
/// and periodically compacts the overlay back into the succinct layers.
#[derive(Debug)]
pub struct HybridStore {
    /// The immutable succinct baseline, `Arc`-shared with every
    /// [`StoreSnapshot`](crate::snapshot::StoreSnapshot) pinned at the
    /// current generation: a compaction installs a fresh `Arc` and the
    /// swapped-out layers are reclaimed when the last pin drops.
    pub(crate) base: Arc<SuccinctEdgeStore>,
    ontology: Ontology,
    pub(crate) delta: DeltaStore,
    pub(crate) ovf_instances: OverflowInstances,
    pub(crate) ovf_properties: OverflowDict,
    pub(crate) ovf_concepts: OverflowDict,
    policy: CompactionPolicy,
    stats: HybridStats,
    /// Identity of the current baseline, process-unique: every build and
    /// every [`swap_baseline`](HybridStore::swap_baseline) takes a fresh
    /// number, so the persistence layer can tell "this exact baseline is
    /// already the one on disk" apart from any rebuilt sibling.
    pub(crate) generation: u64,
    /// Where (if anywhere) this baseline generation is already persisted
    /// — lets `save` skip the O(baseline) rewrite. Interior mutability
    /// because `save` takes `&self` (it is observationally side-effect
    /// free: the cache only records what `save` wrote).
    pub(crate) persist_mark: std::sync::Mutex<Option<crate::persist::BaselineMark>>,
    /// Logical write epoch: the number of successful [`apply`] batches
    /// over this store's lifetime (single-triple `insert_triple` /
    /// `delete_triple` calls outside a batch do not advance it).
    /// Persisted in the v02 manifest so epochs stay monotone across
    /// restarts. [`apply`]: HybridStore::apply
    pub(crate) epoch: u64,
    /// Live snapshot pins: shared with every [`StoreSnapshot`] taken from
    /// this store; each snapshot decrements it on drop.
    /// [`StoreSnapshot`]: crate::snapshot::StoreSnapshot
    pub(crate) pins: Arc<AtomicUsize>,
    /// Snapshots taken over the store's lifetime (observability).
    pub(crate) snapshots_taken: AtomicUsize,
    /// When `true`, [`apply`](HybridStore::apply) records the batch's net
    /// term-space changes on its report (for incremental continuous-query
    /// evaluation). Off by default: plain ingest pays nothing.
    capture_delta: bool,
    /// Write-ahead log, when attached ([`attach_wal`]): every `apply`
    /// appends its net delta before returning, making durability
    /// per-batch. Interior mutability because `save` takes `&self` and
    /// must truncate covered segments after its manifest rename.
    /// [`attach_wal`]: HybridStore::attach_wal
    pub(crate) wal: std::sync::Mutex<Option<crate::wal::Wal>>,
    /// Shared compiled-plan cache, when installed
    /// ([`set_plan_cache`](HybridStore::set_plan_cache)): every
    /// successful [`apply`](HybridStore::apply) publishes the post-batch
    /// epoch so cached plans re-cost as the store ages — embedded
    /// callers applying directly (no `StreamSession`) included.
    plan_cache: Option<Arc<se_sparql::PlanCache>>,
}

impl Clone for HybridStore {
    fn clone(&self) -> Self {
        Self {
            base: self.base.clone(),
            ontology: self.ontology.clone(),
            delta: self.delta.clone(),
            ovf_instances: self.ovf_instances.clone(),
            ovf_properties: self.ovf_properties.clone(),
            ovf_concepts: self.ovf_concepts.clone(),
            policy: self.policy,
            stats: self.stats.clone(),
            // The clone shares the baseline content, so the persisted
            // copy (if any) is just as valid for it; a later compaction
            // of either clone takes a fresh generation and diverges.
            generation: self.generation,
            persist_mark: std::sync::Mutex::new(
                self.persist_mark
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone(),
            ),
            epoch: self.epoch,
            // The clone is an independent store: snapshots of the
            // original must not pin (or be leaked into) the clone.
            pins: Arc::new(AtomicUsize::new(0)),
            snapshots_taken: AtomicUsize::new(self.snapshots_taken.load(Ordering::Relaxed)),
            capture_delta: self.capture_delta,
            // A log is an exclusive append stream over one directory: the
            // clone starts without one and attaches its own if needed.
            wal: std::sync::Mutex::new(None),
            plan_cache: self.plan_cache.clone(),
        }
    }
}

impl HybridStore {
    /// Wraps a built baseline. `ontology` is retained for compactions.
    pub fn new(base: SuccinctEdgeStore, ontology: Ontology) -> Self {
        let base_len = base.dictionaries().instances.len() as u64;
        Self {
            base: Arc::new(base),
            ontology,
            delta: DeltaStore::new(),
            ovf_instances: OverflowInstances {
                base_len,
                ..Default::default()
            },
            ovf_properties: OverflowDict::default(),
            ovf_concepts: OverflowDict::default(),
            policy: CompactionPolicy::default(),
            stats: HybridStats::default(),
            generation: crate::persist::next_generation(),
            persist_mark: std::sync::Mutex::new(None),
            epoch: 0,
            pins: Arc::new(AtomicUsize::new(0)),
            snapshots_taken: AtomicUsize::new(0),
            capture_delta: false,
            wal: std::sync::Mutex::new(None),
            plan_cache: None,
        }
    }

    /// Reassembles a store from persisted v02 parts (see
    /// [`crate::persist`]); `mark` records where this baseline generation
    /// already lives on disk so the next `save` skips rewriting it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_loaded(
        base: SuccinctEdgeStore,
        ontology: Ontology,
        delta: DeltaStore,
        ovf_instances: OverflowInstances,
        ovf_properties: OverflowDict,
        ovf_concepts: OverflowDict,
        policy: CompactionPolicy,
        generation: u64,
        epoch: u64,
        mark: Option<crate::persist::BaselineMark>,
    ) -> Self {
        Self {
            base: Arc::new(base),
            ontology,
            delta,
            ovf_instances,
            ovf_properties,
            ovf_concepts,
            policy,
            stats: HybridStats::default(),
            generation,
            persist_mark: std::sync::Mutex::new(mark),
            epoch,
            pins: Arc::new(AtomicUsize::new(0)),
            snapshots_taken: AtomicUsize::new(0),
            capture_delta: false,
            wal: std::sync::Mutex::new(None),
            plan_cache: None,
        }
    }

    /// Builds the baseline from `graph` and wraps it.
    pub fn build(ontology: &Ontology, graph: &Graph) -> Result<Self, StreamError> {
        let base = SuccinctEdgeStore::build(ontology, graph)?;
        Ok(Self::new(base, ontology.clone()))
    }

    /// Replaces the compaction policy.
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The current immutable baseline.
    pub fn baseline(&self) -> &SuccinctEdgeStore {
        &self.base
    }

    /// The mutable overlay.
    pub fn delta(&self) -> &DeltaStore {
        &self.delta
    }

    /// The ontology used for (re)builds.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Lifetime counters, with the live epoch/pin gauges filled in.
    pub fn stats(&self) -> HybridStats {
        let mut s = self.stats.clone();
        s.epoch = self.epoch;
        s.snapshots = self.snapshots_taken.load(Ordering::Relaxed);
        s.live_pins = self.pins.load(Ordering::Acquire);
        s
    }

    /// The logical write epoch: successful [`apply`](HybridStore::apply)
    /// batches so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Forces the epoch to `epoch` without applying anything — the
    /// replication bootstrap (see [`crate::replay_record`]): a follower
    /// that rebuilt its state from a leader snapshot aligns to the
    /// leader's epoch before replaying shipped records. Must not be used
    /// on a store with an attached WAL (it would corrupt the log's epoch
    /// sequence).
    pub fn align_epoch(&mut self, epoch: u64) {
        debug_assert!(
            !self.wal_attached(),
            "align_epoch on a WAL-attached store corrupts the log"
        );
        self.epoch = epoch;
    }

    /// Installs a shared compiled-plan cache: every successful
    /// [`apply`](HybridStore::apply) publishes the post-batch epoch to
    /// it, so cached join orders re-cost as the store ages even when the
    /// caller applies batches directly rather than through a
    /// [`StreamSession`](crate::StreamSession).
    pub fn set_plan_cache(&mut self, cache: Arc<se_sparql::PlanCache>) {
        cache.set_epoch(self.epoch);
        self.plan_cache = Some(cache);
    }

    /// Operator-visible WAL durability state (see
    /// [`crate::wal::WalHealth`]).
    pub fn wal_health(&self) -> crate::wal::WalHealth {
        lock_wal(&self.wal)
            .as_ref()
            .map(|w| w.health())
            .unwrap_or_default()
    }

    /// The directory the attached WAL appends into, if any — replication
    /// catch-up reads the tail from here.
    pub fn wal_dir(&self) -> Option<std::path::PathBuf> {
        lock_wal(&self.wal).as_ref().map(|w| w.dir().to_path_buf())
    }

    /// Snapshots currently pinning this store's resources.
    pub fn live_pins(&self) -> usize {
        self.pins.load(Ordering::Acquire)
    }

    /// An immutable view of the store at the current epoch.
    ///
    /// The snapshot shares the succinct baseline by `Arc` (O(1)) and
    /// freezes the overlay and overflow dictionaries by value
    /// (O(overlay)), so readers on other threads answer every
    /// [`TripleSource`] access against a consistent epoch while `apply`
    /// and compaction proceed on the live store. The pin is released when
    /// the last clone of the snapshot drops; until then the swapped-out
    /// baseline generation stays alive (via the `Arc`) and the pin is
    /// visible in [`HybridStats::live_pins`].
    pub fn snapshot(&self) -> crate::snapshot::StoreSnapshot {
        self.snapshots_taken.fetch_add(1, Ordering::Relaxed);
        crate::snapshot::StoreSnapshot::from_hybrid(
            self.clone(),
            self.epoch,
            Arc::clone(&self.pins),
        )
    }

    /// The compaction policy in force.
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }

    // ------------------------------------------------------------ id routing

    fn base_instance_count(&self) -> u64 {
        self.ovf_instances.base_len
    }

    fn is_base_instance(&self, id: u64) -> bool {
        id < self.base_instance_count()
    }

    fn term_of_instance(&self, id: u64) -> Option<Term> {
        if self.is_base_instance(id) {
            self.base
                .dictionaries()
                .instances
                .term_arc(id)
                .map(key_to_term_arc)
        } else {
            self.ovf_instances.term(id).map(key_to_term_arc)
        }
    }

    /// Resolves or allocates the hybrid instance id of a resource term.
    fn encode_instance(&mut self, term: &Term) -> Result<u64, StreamError> {
        let key = instance_key(term).ok_or_else(|| {
            StreamError::Malformed(format!("literal in resource position: {term}"))
        })?;
        if let Some(id) = self.base.dictionaries().instances.id(&key) {
            return Ok(id);
        }
        Ok(self.ovf_instances.get_or_insert(&key))
    }

    fn encode_property(&mut self, iri: &str) -> u64 {
        self.base
            .property_id(iri)
            .unwrap_or_else(|| self.ovf_properties.get_or_insert(iri))
    }

    fn encode_concept(&mut self, iri: &str) -> u64 {
        self.base
            .concept_id(iri)
            .unwrap_or_else(|| self.ovf_concepts.get_or_insert(iri))
    }

    /// The literal content behind a hybrid literal id (baseline flat-store
    /// index or overflow delta id).
    fn literal_content(&self, idx: u64) -> Option<&Literal> {
        if idx >= OVERFLOW_BASE {
            self.delta.literal(idx - OVERFLOW_BASE)
        } else {
            self.base.literal(idx)
        }
    }

    /// Delta key of a query `Value` object, if expressible (a literal
    /// unknown to the overlay has no key — and no overlay entries).
    fn delta_key_of(&self, o: &Value) -> Option<DeltaObj> {
        match o {
            Value::Instance(id) => Some(DeltaObj::Inst(*id)),
            Value::Literal(idx) => {
                let lit = self.literal_content(*idx)?;
                self.delta.literal_id(lit).map(DeltaObj::Lit)
            }
            _ => None,
        }
    }

    fn obj_to_value(&self, o: DeltaObj) -> Value {
        match o {
            DeltaObj::Inst(id) => Value::Instance(id),
            DeltaObj::Lit(local) => Value::Literal(OVERFLOW_BASE + local),
        }
    }

    /// `true` if the baseline value at `(p, s, v)` is tombstoned.
    fn tombstoned(&self, p: u64, s: u64, v: &Value) -> bool {
        match self.delta_key_of(v) {
            Some(key) => self.delta.state(p, s, key) == Some(DeltaState::Deleted),
            None => false,
        }
    }

    // -------------------------------------------------------------- ingestion

    /// Turns net-delta capture on or off: when on, every
    /// [`apply`](HybridStore::apply) report carries a [`BatchDelta`] with
    /// the batch's net term-space changes.
    pub fn set_delta_capture(&mut self, on: bool) {
        self.capture_delta = on;
    }

    /// Whether `apply` reports carry a [`BatchDelta`].
    pub fn delta_capture(&self) -> bool {
        self.capture_delta
    }

    /// Attaches a write-ahead log over `dir`: first checkpoints the
    /// store there (so the directory always holds a manifest the log's
    /// records chain onto), then every successful [`apply`] appends the
    /// batch's net delta per `config` before returning. [`load`] replays
    /// the tail past the manifest automatically; the recovered store has
    /// no log attached — call `attach_wal` again to keep appending.
    ///
    /// [`apply`]: HybridStore::apply
    /// [`load`]: HybridStore::load
    pub fn attach_wal(
        &mut self,
        dir: &Path,
        config: crate::wal::WalConfig,
    ) -> Result<SaveReport, StreamError> {
        let report = self.save(dir)?;
        let wal = crate::wal::Wal::open(dir, config)?;
        *lock_wal(&self.wal) = Some(wal);
        Ok(report)
    }

    /// Whether a write-ahead log is attached.
    pub fn wal_attached(&self) -> bool {
        lock_wal(&self.wal).is_some()
    }

    /// Fsyncs any buffered log records (a no-op without an attached log
    /// or under [`SyncPolicy::EveryBatch`](crate::wal::SyncPolicy), where
    /// every record is already durable) — the graceful-shutdown drain.
    pub fn wal_flush(&self) -> Result<(), StreamError> {
        match lock_wal(&self.wal).as_mut() {
            Some(wal) => wal.flush(),
            None => Ok(()),
        }
    }

    /// Applies one batch: deletions first, then insertions (an insert of a
    /// triple deleted in the same batch wins). Compacts afterwards if the
    /// overlay crossed the policy threshold. With a WAL attached the
    /// record is appended (and synced per policy) before `Ok` returns:
    /// an error means the batch must not be acknowledged — it is applied
    /// in memory but its durability is unknown.
    pub fn apply(&mut self, inserts: &Graph, deletes: &Graph) -> Result<IngestReport, StreamError> {
        let t0 = Instant::now();
        let wal_on = self.wal_attached();
        let mut report = IngestReport::default();
        let mut events: Option<Vec<(Triple, i64)>> = (self.capture_delta || wal_on).then(Vec::new);
        for t in deletes {
            if self.delete_triple(t)? {
                report.deleted += 1;
                if let Some(ev) = events.as_mut() {
                    ev.push((t.clone(), -1));
                }
            } else {
                report.noops += 1;
            }
        }
        for t in inserts {
            if self.insert_triple(t)? {
                report.inserted += 1;
                if let Some(ev) = events.as_mut() {
                    ev.push((t.clone(), 1));
                }
            } else {
                report.noops += 1;
            }
        }
        let delta = events.map(BatchDelta::from_events);
        report.ingest = t0.elapsed();
        self.stats.total_inserted += report.inserted;
        self.stats.total_deleted += report.deleted;
        self.stats.total_ingest += report.ingest;
        if self.delta.overlay_len() >= self.policy.max_overlay {
            let t1 = Instant::now();
            self.compact()?;
            report.compacted = true;
            report.compaction = t1.elapsed();
        }
        self.epoch += 1;
        if let Some(cache) = &self.plan_cache {
            cache.set_epoch(self.epoch);
        }
        if wal_on {
            let d = delta.as_ref().expect("wal_on forces event capture");
            if let Some(wal) = lock_wal(&self.wal).as_mut() {
                wal.append(self.epoch, d)?;
            }
        }
        // The report only carries the delta when the caller asked for
        // capture — the WAL forcing events internally stays invisible.
        report.delta = if self.capture_delta { delta } else { None };
        Ok(report)
    }

    /// Inserts one triple. Returns `true` if it became visible (`false`
    /// for duplicates).
    pub fn insert_triple(&mut self, t: &Triple) -> Result<bool, StreamError> {
        self.mutate_triple(t, true)
    }

    /// Deletes one triple. Returns `true` if it stopped being visible
    /// (`false` if it was not present).
    pub fn delete_triple(&mut self, t: &Triple) -> Result<bool, StreamError> {
        self.mutate_triple(t, false)
    }

    /// Applies one insert/delete. Ids are resolved read-only first so
    /// no-op operations (duplicate inserts, deletes of absent triples)
    /// allocate nothing in the overflow dictionaries or the literal table
    /// — otherwise a stream of no-ops referencing fresh terms would grow
    /// memory that no compaction bounds.
    fn mutate_triple(&mut self, t: &Triple, insert: bool) -> Result<bool, StreamError> {
        let Some(p_iri) = t.predicate.as_iri() else {
            return Err(StreamError::Malformed(format!("non-IRI predicate: {t}")));
        };
        if t.subject.is_literal() {
            return Err(StreamError::Malformed(format!("literal subject: {t}")));
        }
        let p_iri = p_iri.to_string();
        let s_key = instance_key(&t.subject).expect("subject validated as resource");
        let s_resolved = self
            .base
            .dictionaries()
            .instances
            .id(&s_key)
            .or_else(|| self.ovf_instances.id(&s_key));

        if t.is_type_triple() {
            let Some(c_iri) = t.object.as_iri() else {
                return Err(StreamError::Malformed(format!(
                    "rdf:type with non-IRI object: {t}"
                )));
            };
            let c_resolved = self
                .base
                .concept_id(c_iri)
                .or_else(|| self.ovf_concepts.id(c_iri));
            let (Some(s), Some(c)) = (s_resolved, c_resolved) else {
                // A term is entirely unknown: the triple cannot be present.
                if !insert {
                    return Ok(false);
                }
                let s = self.encode_instance(&t.subject)?;
                let c = self.encode_concept(c_iri);
                self.delta.set_type(s, c, DeltaState::Added);
                return Ok(true);
            };
            let base_has =
                c < OVERFLOW_BASE && self.is_base_instance(s) && self.base.has_type(s, c);
            let old = self.delta.type_state(s, c);
            return Ok(match transition(old, base_has, insert) {
                Some(new) => {
                    self.delta.set_type(s, c, new);
                    true
                }
                None => false,
            });
        }

        let p_resolved = self
            .base
            .property_id(&p_iri)
            .or_else(|| self.ovf_properties.id(&p_iri));
        match &t.object {
            Term::Literal(lit) => {
                let (Some(s), Some(p)) = (s_resolved, p_resolved) else {
                    if !insert {
                        return Ok(false);
                    }
                    let s = self.encode_instance(&t.subject)?;
                    let p = self.encode_property(&p_iri);
                    let local = self.delta.intern_literal(lit);
                    self.delta
                        .set(p, s, DeltaObj::Lit(local), DeltaState::Added);
                    return Ok(true);
                };
                let base_has = p < OVERFLOW_BASE
                    && self.is_base_instance(s)
                    && self.base.subjects_by_literal(p, lit).contains(&s);
                let old = self
                    .delta
                    .literal_id(lit)
                    .and_then(|l| self.delta.state(p, s, DeltaObj::Lit(l)));
                Ok(match transition(old, base_has, insert) {
                    Some(new) => {
                        let local = self.delta.intern_literal(lit);
                        self.delta.set(p, s, DeltaObj::Lit(local), new);
                        true
                    }
                    None => false,
                })
            }
            other => {
                let o_key = instance_key(other).expect("non-literal object is a resource");
                let o_resolved = self
                    .base
                    .dictionaries()
                    .instances
                    .id(&o_key)
                    .or_else(|| self.ovf_instances.id(&o_key));
                let (Some(s), Some(p), Some(o)) = (s_resolved, p_resolved, o_resolved) else {
                    if !insert {
                        return Ok(false);
                    }
                    let s = self.encode_instance(&t.subject)?;
                    let p = self.encode_property(&p_iri);
                    let o = self.encode_instance(other)?;
                    self.delta.set(p, s, DeltaObj::Inst(o), DeltaState::Added);
                    return Ok(true);
                };
                let base_has = p < OVERFLOW_BASE
                    && self.is_base_instance(s)
                    && self.is_base_instance(o)
                    && self.base.contains(p, s, &Value::Instance(o));
                let old = self.delta.state(p, s, DeltaObj::Inst(o));
                Ok(match transition(old, base_has, insert) {
                    Some(new) => {
                        self.delta.set(p, s, DeltaObj::Inst(o), new);
                        true
                    }
                    None => false,
                })
            }
        }
    }

    // -------------------------------------------------------------- compaction

    /// Decodes a property id (baseline or overflow) to its IRI term.
    fn property_term(&self, id: u64) -> Term {
        let iri = if id >= OVERFLOW_BASE {
            self.ovf_properties.term(id)
        } else {
            self.base.dictionaries().properties.term_arc(id)
        };
        Term::Iri(iri.expect("dictionary-complete property id"))
    }

    /// Decodes a concept id (baseline or overflow) to its IRI term.
    fn concept_term(&self, id: u64) -> Term {
        let iri = if id >= OVERFLOW_BASE {
            self.ovf_concepts.term(id)
        } else {
            self.base.dictionaries().concepts.term_arc(id)
        };
        Term::Iri(iri.expect("dictionary-complete concept id"))
    }

    /// Materializes the current hybrid view as a term-space graph
    /// (baseline minus tombstones plus overlay insertions).
    pub fn materialize(&self) -> Graph {
        let mut g = Graph::new();
        let decode_inst = |id: u64| self.term_of_instance(id).expect("dictionary-complete id");
        let prop_term = |id: u64| self.property_term(id);
        let concept_term = |id: u64| self.concept_term(id);
        let rdf_type = Term::iri(se_rdf::vocab::rdf::TYPE);

        // Baseline, minus tombstones.
        for (p, s, o) in self.base.object_layer().iter() {
            if self.delta.state(p, s, DeltaObj::Inst(o)) != Some(DeltaState::Deleted) {
                g.insert(Triple::new(decode_inst(s), prop_term(p), decode_inst(o)));
            }
        }
        for (p, s, li) in self.base.datatype_layer().iter() {
            let lit = self.base.literal(li).expect("in-range literal index");
            let dead = self
                .delta
                .literal_id(lit)
                .map(|local| self.delta.state(p, s, DeltaObj::Lit(local)))
                == Some(Some(DeltaState::Deleted));
            if !dead {
                g.insert(Triple::new(
                    decode_inst(s),
                    prop_term(p),
                    Term::Literal(lit.clone()),
                ));
            }
        }
        for (s, c) in self.base.type_store().iter() {
            if self.delta.type_state(s, c) != Some(DeltaState::Deleted) {
                g.insert(Triple::new(
                    decode_inst(s),
                    rdf_type.clone(),
                    concept_term(c),
                ));
            }
        }

        // Overlay insertions.
        for (p, s, o, st) in self.delta.iter() {
            if st == DeltaState::Added {
                let object = match o {
                    DeltaObj::Inst(id) => decode_inst(id),
                    DeltaObj::Lit(local) => {
                        Term::Literal(self.delta.literal(local).expect("interned literal").clone())
                    }
                };
                g.insert(Triple::new(decode_inst(s), prop_term(p), object));
            }
        }
        for (s, c, st) in self.delta.type_iter() {
            if st == DeltaState::Added {
                g.insert(Triple::new(
                    decode_inst(s),
                    rdf_type.clone(),
                    concept_term(c),
                ));
            }
        }
        g
    }

    /// Snapshots the hybrid view as a pure, `Send` rebuild plan. The
    /// expensive part — [`CompactionPlan::build`] — borrows nothing from
    /// the store, so a caller can run it on a worker thread while `apply`
    /// keeps ingesting, then fold the result back with
    /// [`HybridStore::swap_baseline`].
    pub fn plan_compaction(&self) -> CompactionPlan {
        CompactionPlan {
            graph: self.materialize(),
            ontology: self.ontology.clone(),
        }
    }

    /// Installs a rebuilt baseline (normally the output of
    /// [`CompactionPlan::build`]) and rebases the live overlay onto it.
    ///
    /// Every overlay entry present at plan time is covered by the rebuilt
    /// baseline and collapses to a no-op; entries recorded *after* the
    /// plan was taken (writes that raced a background rebuild) are
    /// replayed in term space, so the swap is atomic from the query
    /// perspective: the merged view before and after describes the same
    /// graph plus the raced writes.
    pub fn swap_baseline(&mut self, rebuilt: SuccinctEdgeStore) -> Result<(), StreamError> {
        let replay = self.overlay_term_ops();
        self.base = Arc::new(rebuilt);
        self.generation = crate::persist::next_generation();
        self.delta.clear();
        self.ovf_instances
            .reset(self.base.dictionaries().instances.len() as u64);
        self.ovf_properties.clear();
        self.ovf_concepts.clear();
        self.stats.compactions += 1;
        for (t, visible) in replay {
            if visible {
                self.insert_triple(&t)?;
            } else {
                self.delete_triple(&t)?;
            }
        }
        Ok(())
    }

    /// The live overlay decoded to term space, with the visibility each
    /// entry asserts (`true` = the triple must be visible).
    fn overlay_term_ops(&self) -> Vec<(Triple, bool)> {
        let decode_inst = |id: u64| self.term_of_instance(id).expect("dictionary-complete id");
        let rdf_type = Term::iri(se_rdf::vocab::rdf::TYPE);
        let mut ops = Vec::with_capacity(self.delta.overlay_len());
        for (p, s, o, st) in self.delta.iter() {
            let object = match o {
                DeltaObj::Inst(id) => decode_inst(id),
                DeltaObj::Lit(local) => {
                    Term::Literal(self.delta.literal(local).expect("interned literal").clone())
                }
            };
            ops.push((
                Triple::new(decode_inst(s), self.property_term(p), object),
                st.present(),
            ));
        }
        for (s, c, st) in self.delta.type_iter() {
            ops.push((
                Triple::new(decode_inst(s), rdf_type.clone(), self.concept_term(c)),
                st.present(),
            ));
        }
        ops
    }

    /// Rebuilds the succinct baseline from baseline + overlay and clears
    /// the overlay, inline ([`HybridStore::plan_compaction`] +
    /// [`CompactionPlan::build`] + [`HybridStore::swap_baseline`] in one
    /// blocking call). Overflow terms are folded into the dictionaries by
    /// the builder's augmentation step and become reasoning-capable.
    pub fn compact(&mut self) -> Result<(), StreamError> {
        let t0 = Instant::now();
        let rebuilt = self.plan_compaction().build()?;
        self.swap_baseline(rebuilt)?;
        self.stats.total_compaction += t0.elapsed();
        Ok(())
    }

    // -------------------------------------------------------------- persistence
    //
    // The v02 directory format — `save` is `&self`, O(delta) and never
    // compacts — lives in [`crate::persist`]. The two methods below are
    // the legacy v01 single-file path, kept so stores written by older
    // builds stay loadable.

    /// Compacts, then writes the baseline in the standard
    /// `SuccinctEdgeStore` v01 format — the legacy shutdown path, O(rebuild).
    #[deprecated(
        since = "0.2.0",
        note = "use `HybridStore::save` (v02): `&self`, O(delta), never compacts"
    )]
    pub fn save_to_file(&mut self, path: &Path) -> Result<(), StreamError> {
        if !self.delta.is_empty() {
            self.compact()?;
        }
        self.base.save_to_file(path)?;
        Ok(())
    }

    /// Loads a persisted v01 baseline file and wraps it with an empty
    /// overlay. [`HybridStore::load`](crate::persist) accepts both this
    /// format and the v02 directory layout.
    pub fn load_from_file(path: &Path, ontology: Ontology) -> Result<Self, StreamError> {
        let base = SuccinctEdgeStore::load_from_file(path)?;
        Ok(Self::new(base, ontology))
    }

    // ----------------------------------------------------- merged access parts

    /// Base + delta predicates intersecting `[lo, hi)`, ascending.
    fn merged_predicates(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut preds = BTreeSet::new();
        for idx in self.base.object_layer().predicate_range(lo, hi) {
            preds.insert(self.base.object_layer().predicate_at(idx));
        }
        for idx in self.base.datatype_layer().predicate_range(lo, hi) {
            preds.insert(self.base.datatype_layer().predicate_at(idx));
        }
        preds.extend(self.delta.predicates_in(lo, hi));
        preds.into_iter().collect()
    }

    /// Subject-sorted merge of a filtered baseline pair list with overlay
    /// additions (both inputs subject-sorted).
    fn merge_pairs(
        &self,
        base: Vec<(u64, Value)>,
        added: Vec<(u64, Value)>,
        p: u64,
    ) -> Vec<(u64, Value)> {
        let mut out = Vec::with_capacity(base.len() + added.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() || j < added.len() {
            let take_base = match (base.get(i), added.get(j)) {
                (Some(b), Some(a)) => b.0 <= a.0,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_base {
                let (s, v) = base[i];
                i += 1;
                if !self.tombstoned(p, s, &v) {
                    out.push((s, v));
                }
            } else {
                out.push(added[j]);
                j += 1;
            }
        }
        out
    }
}

/// A pure compaction snapshot: the materialized hybrid view plus the
/// ontology, detached from the store. `build` is the expensive rebuild
/// step and can run on a worker thread (the plan is `Send`); the result
/// is folded back with [`HybridStore::swap_baseline`].
#[derive(Debug, Clone)]
pub struct CompactionPlan {
    graph: Graph,
    ontology: Ontology,
}

impl CompactionPlan {
    /// Rebuilds the succinct layers from the snapshot. Pure: no access to
    /// the live store, safe to run concurrently with ingestion.
    pub fn build(&self) -> Result<SuccinctEdgeStore, StreamError> {
        Ok(SuccinctEdgeStore::build(&self.ontology, &self.graph)?)
    }

    /// Number of triples in the snapshot.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` if the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }
}

/// State transition of one triple given its overlay state, baseline
/// membership and the requested operation. `None` means no-op. Shared
/// with the sharded store's ingest workers.
pub(crate) fn transition(
    old: Option<DeltaState>,
    base_has: bool,
    insert: bool,
) -> Option<DeltaState> {
    use DeltaState::*;
    if insert {
        match old {
            None if base_has => None,
            None => Some(Added),
            Some(Added) | Some(Restored) => None,
            Some(Deleted) => Some(Restored),
            Some(Cancelled) => Some(Added),
        }
    } else {
        match old {
            None if base_has => Some(Deleted),
            None => None,
            Some(Added) => Some(Cancelled),
            Some(Restored) => Some(Deleted),
            Some(Deleted) | Some(Cancelled) => None,
        }
    }
}

impl TripleSource for HybridStore {
    fn instance_id(&self, term: &Term) -> Option<u64> {
        self.base.instance_id(term).or_else(|| {
            let key = instance_key(term)?;
            self.ovf_instances.id(&key)
        })
    }

    fn property_id(&self, iri: &str) -> Option<u64> {
        self.base
            .property_id(iri)
            .or_else(|| self.ovf_properties.id(iri))
    }

    fn concept_id(&self, iri: &str) -> Option<u64> {
        self.base
            .concept_id(iri)
            .or_else(|| self.ovf_concepts.id(iri))
    }

    fn property_interval(&self, iri: &str) -> Option<IdInterval> {
        self.base.property_interval(iri).or_else(|| {
            self.ovf_properties.id(iri).map(|id| IdInterval {
                lower: id,
                upper: id + 1,
            })
        })
    }

    fn concept_interval(&self, iri: &str) -> Option<IdInterval> {
        self.base.concept_interval(iri).or_else(|| {
            self.ovf_concepts.id(iri).map(|id| IdInterval {
                lower: id,
                upper: id + 1,
            })
        })
    }

    fn value_to_term(&self, value: Value) -> Option<Term> {
        match value {
            Value::Instance(id) => self.term_of_instance(id),
            Value::Concept(id) => {
                if id >= OVERFLOW_BASE {
                    self.ovf_concepts.term(id).map(Term::Iri)
                } else {
                    self.base.value_to_term(value)
                }
            }
            Value::Property(id) => {
                if id >= OVERFLOW_BASE {
                    self.ovf_properties.term(id).map(Term::Iri)
                } else {
                    self.base.value_to_term(value)
                }
            }
            Value::Literal(idx) => self.literal_content(idx).map(|l| Term::Literal(l.clone())),
        }
    }

    fn literal(&self, idx: u64) -> Option<&Literal> {
        self.literal_content(idx)
    }

    fn objects(&self, p: u64, s: u64) -> Vec<Value> {
        let mut out = Vec::new();
        if p < OVERFLOW_BASE && self.is_base_instance(s) {
            for v in self.base.objects(p, s) {
                if !self.tombstoned(p, s, &v) {
                    out.push(v);
                }
            }
        }
        for (o, st) in self.delta.objects(p, s) {
            if st == DeltaState::Added {
                out.push(self.obj_to_value(o));
            }
        }
        out
    }

    fn subjects(&self, p: u64, o: &Value) -> Vec<u64> {
        match o {
            Value::Instance(oid) => {
                let mut out = Vec::new();
                if p < OVERFLOW_BASE && self.is_base_instance(*oid) {
                    out.extend(
                        self.base
                            .subjects(p, o)
                            .into_iter()
                            .filter(|&s| !self.tombstoned(p, s, o)),
                    );
                }
                for (s, st) in self.delta.subjects(p, DeltaObj::Inst(*oid)) {
                    if st == DeltaState::Added {
                        out.push(s);
                    }
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            Value::Literal(idx) => match self.literal_content(*idx) {
                Some(lit) => {
                    let lit = lit.clone();
                    self.subjects_by_literal(p, &lit)
                }
                None => Vec::new(),
            },
            _ => Vec::new(),
        }
    }

    fn subjects_by_literal(&self, p: u64, lit: &Literal) -> Vec<u64> {
        let mut out = Vec::new();
        let local = self.delta.literal_id(lit);
        if p < OVERFLOW_BASE {
            out.extend(
                self.base
                    .subjects_by_literal(p, lit)
                    .into_iter()
                    .filter(|&s| {
                        local.map(|l| self.delta.state(p, s, DeltaObj::Lit(l)))
                            != Some(Some(DeltaState::Deleted))
                    }),
            );
        }
        if let Some(l) = local {
            for (s, st) in self.delta.subjects(p, DeltaObj::Lit(l)) {
                if st == DeltaState::Added {
                    out.push(s);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn scan_predicate(&self, p: u64) -> Vec<(u64, Value)> {
        let (mut added_inst, mut added_lit) = (Vec::new(), Vec::new());
        for (s, o, st) in self.delta.scan(p) {
            if st == DeltaState::Added {
                match o {
                    DeltaObj::Inst(_) => added_inst.push((s, self.obj_to_value(o))),
                    DeltaObj::Lit(_) => added_lit.push((s, self.obj_to_value(o))),
                }
            }
        }
        let (base_inst, base_lit) = if p < OVERFLOW_BASE {
            (
                self.base
                    .object_layer()
                    .scan_predicate(p)
                    .into_iter()
                    .map(|(s, o)| (s, Value::Instance(o)))
                    .collect(),
                self.base
                    .datatype_layer()
                    .scan_predicate(p)
                    .into_iter()
                    .map(|(s, i)| (s, Value::Literal(i)))
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let inst = self.merge_pairs(base_inst, added_inst, p);
        let lit = self.merge_pairs(base_lit, added_lit, p);
        // Merge the instance and literal runs into one globally
        // subject-sorted list (ties: instances first) — the trait contract
        // the merge join relies on.
        let mut out = Vec::with_capacity(inst.len() + lit.len());
        let (mut i, mut j) = (0, 0);
        while i < inst.len() || j < lit.len() {
            let take_inst = match (inst.get(i), lit.get(j)) {
                (Some(a), Some(b)) => a.0 <= b.0,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_inst {
                out.push(inst[i]);
                i += 1;
            } else {
                out.push(lit[j]);
                j += 1;
            }
        }
        out
    }

    fn contains(&self, p: u64, s: u64, o: &Value) -> bool {
        if let Some(key) = self.delta_key_of(o) {
            if let Some(st) = self.delta.state(p, s, key) {
                return st.present();
            }
        }
        if p >= OVERFLOW_BASE || !self.is_base_instance(s) {
            return false;
        }
        match o {
            Value::Instance(oid) => self.is_base_instance(*oid) && self.base.contains(p, s, o),
            Value::Literal(idx) => match self.literal_content(*idx) {
                Some(lit) => self.base.subjects_by_literal(p, lit).contains(&s),
                None => false,
            },
            _ => false,
        }
    }

    fn objects_interval(&self, p_iv: IdInterval, s: u64) -> Vec<Value> {
        let mut out = Vec::new();
        for p in self.merged_predicates(p_iv.lower, p_iv.upper) {
            out.extend(self.objects(p, s));
        }
        out
    }

    fn subjects_interval(&self, p_iv: IdInterval, o: &Value) -> Vec<u64> {
        let mut out = Vec::new();
        for p in self.merged_predicates(p_iv.lower, p_iv.upper) {
            out.extend(self.subjects(p, o));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn subjects_by_literal_interval(&self, p_iv: IdInterval, lit: &Literal) -> Vec<u64> {
        let mut out = Vec::new();
        for p in self.merged_predicates(p_iv.lower, p_iv.upper) {
            out.extend(self.subjects_by_literal(p, lit));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn scan_interval(&self, p_iv: IdInterval) -> Vec<(u64, Value)> {
        let mut out = Vec::new();
        for p in self.merged_predicates(p_iv.lower, p_iv.upper) {
            out.extend(self.scan_predicate(p));
        }
        out
    }

    fn subjects_of_concept(&self, c: u64) -> Vec<u64> {
        self.subjects_of_concept_interval(IdInterval {
            lower: c,
            upper: c + 1,
        })
    }

    fn subjects_of_concept_interval(&self, iv: IdInterval) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .base
            .type_store()
            .pairs_in_interval(iv)
            .into_iter()
            .filter(|&(c, s)| self.delta.type_state(s, c) != Some(DeltaState::Deleted))
            .map(|(_, s)| s)
            .collect();
        for (_, s, st) in self.delta.type_subjects_in(iv.lower, iv.upper) {
            if st == DeltaState::Added {
                out.push(s);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn concepts_of_subject(&self, s: u64) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        if self.is_base_instance(s) {
            out.extend(
                self.base
                    .concepts_of_subject(s)
                    .into_iter()
                    .filter(|&c| self.delta.type_state(s, c) != Some(DeltaState::Deleted)),
            );
        }
        for (c, st) in self.delta.type_concepts_of(s, 0, u64::MAX) {
            if st == DeltaState::Added {
                out.push(c);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn has_type(&self, s: u64, c: u64) -> bool {
        match self.delta.type_state(s, c) {
            Some(st) => st.present(),
            None => self.is_base_instance(s) && c < OVERFLOW_BASE && self.base.has_type(s, c),
        }
    }

    fn has_type_in_interval(&self, s: u64, iv: IdInterval) -> bool {
        let overlay = self.delta.type_concepts_of(s, iv.lower, iv.upper);
        if overlay.iter().any(|&(_, st)| st.present()) {
            return true;
        }
        if !self.is_base_instance(s) {
            return false;
        }
        if overlay.iter().all(|&(_, st)| st != DeltaState::Deleted) {
            return self.base.has_type_in_interval(s, iv);
        }
        // Some base types of `s` in the interval are tombstoned: check the
        // survivors individually.
        self.base
            .concepts_of_subject(s)
            .into_iter()
            .any(|c| iv.contains(c) && self.delta.type_state(s, c) != Some(DeltaState::Deleted))
    }

    fn type_pairs(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .base
            .type_store()
            .iter()
            .filter(|&(s, c)| self.delta.type_state(s, c) != Some(DeltaState::Deleted))
            .collect();
        for (s, c, st) in self.delta.type_iter() {
            if st == DeltaState::Added {
                out.push((s, c));
            }
        }
        out.sort_unstable();
        out
    }

    fn len(&self) -> usize {
        (self.base.len() as isize + self.delta.net_triples()) as usize
    }

    fn predicate_count(&self, p: u64) -> usize {
        let base = if p < OVERFLOW_BASE {
            self.base.predicate_count(p)
        } else {
            0
        };
        let mut n = base as isize;
        for (_, _, st) in self.delta.scan(p) {
            match st {
                DeltaState::Added => n += 1,
                DeltaState::Deleted => n -= 1,
                _ => {}
            }
        }
        n.max(0) as usize
    }

    fn predicate_interval_count(&self, iv: IdInterval) -> usize {
        self.merged_predicates(iv.lower, iv.upper)
            .into_iter()
            .map(|p| self.predicate_count(p))
            .sum()
    }

    fn type_count(&self, iv: IdInterval) -> usize {
        let mut n = self.base.type_count(iv) as isize;
        for (_, _, st) in self.delta.type_subjects_in(iv.lower, iv.upper) {
            match st {
                DeltaState::Added => n += 1,
                DeltaState::Deleted => n -= 1,
                _ => {}
            }
        }
        n.max(0) as usize
    }

    fn type_total(&self) -> usize {
        let mut n = self.base.type_store().len() as isize;
        for (_, _, st) in self.delta.type_iter() {
            match st {
                DeltaState::Added => n += 1,
                DeltaState::Deleted => n -= 1,
                _ => {}
            }
        }
        n.max(0) as usize
    }
}
