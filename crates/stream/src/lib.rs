//! # se-stream — incremental ingestion for SuccinctEdge
//!
//! The paper's SuccinctEdge store is built once and never mutated; its
//! headline scenario — anomaly detection over water-network sensors at the
//! edge — is nevertheless *streaming*. This crate closes that gap with a
//! delta-overlay architecture in the spirit of incremental dataflow
//! systems:
//!
//! * [`DeltaStore`](delta::DeltaStore) — a mutable overlay of
//!   inserted/deleted triples in identifier space, held in red-black
//!   trees (`se-rbtree`) with PSO/POS access paths and a
//!   content-interned literal table;
//! * [`HybridStore`] — the merged query view over baseline + overlay. It
//!   implements `se-core`'s [`TripleSource`](se_core::TripleSource), so
//!   the unmodified `se-sparql` executor (merge joins, LiteMat interval
//!   reasoning, Algorithm 1 ordering) runs against live data. Terms
//!   unseen at build time go to *overflow dictionaries*
//!   ([`OVERFLOW_BASE`]);
//! * **compaction** — past a [`CompactionPolicy`] threshold the overlay
//!   is folded back: baseline + delta are materialized to a term graph
//!   and the succinct layers are rebuilt (overflow terms gain LiteMat
//!   codes via ontology augmentation);
//! * [`persist`] — delta-aware v02 persistence: baseline layer files
//!   (raw v01 `SuccinctEdgeStore` bytes, reused save to save) plus a raw
//!   overlay snapshot (tombstones, overflow dictionaries, interned
//!   literals) and a sharded manifest, so `save` is `&self`, never
//!   compacts, and shutdown/restart is O(delta) — see the byte-level
//!   format spec in the module docs;
//! * [`ContinuousQueryRegistry`] / [`StreamSession`] — SPARQL queries
//!   parsed once, re-evaluated over the hybrid view after every ingested
//!   batch: the paper's "one query per graph instance" loop without the
//!   per-instance rebuild.
//!
//! # Architecture: shard routing and background compaction
//!
//! [`ShardedHybridStore`] scales the write path across cores by
//! partitioning the triple space **by predicate** (`rdf:type` triples by
//! concept) into N `baseline + overlay` shards behind one scatter/gather
//! [`TripleSource`](se_core::TripleSource):
//!
//! ```text
//!                  apply(inserts, deletes)
//!                          │
//!              ┌───── encode + route ─────┐      global dictionaries:
//!              │   (routing table: prop   │      · instances: dense, append-only
//!              │    id → shard, concept   │      · props/concepts: one LiteMat
//!              │    id → shard; policy    │        encode, overflow ≥ 2^62
//!              │    hook for custom       │      · overlay literals: shared
//!              │    layouts)              │        content-interned table
//!              ▼                          ▼
//!        ┌─────────┐                ┌─────────┐
//!        │ shard 0 │       …        │ shard N │   one scoped worker each:
//!        │ layers  │                │ layers  │   baseline probes + rbtree
//!        │ + delta │                │ + delta │   overlay insertion in parallel
//!        └────┬────┘                └────┬────┘
//!             │     scatter/gather       │
//!             └──────────┬───────────────┘
//!                        ▼
//!          predicate-bound pattern → one shard
//!          unbound / LiteMat interval → fan out, k-way merge
//! ```
//!
//! Every shard stores triples in the **same global id space** (the store
//! owns the dictionaries; shard layers are built against them without
//! re-encoding), so gathered runs join directly and the merge-join
//! ordering contracts survive sharding.
//!
//! # Architecture: the persistent shard worker runtime
//!
//! All parallel work of a sharded store runs on one [`ShardRuntime`] —
//! a fleet of **parked** worker threads (condvar-based, zero CPU while
//! idle), one per shard, spawned lazily on the first batch that needs
//! them and joined when the store drops:
//!
//! * **Job hand-off** is a depth-one SPSC slot per worker (mutex +
//!   condvar pair): the store submits one owned job, the worker wakes,
//!   runs it, parks again; the store reaps the output blocking
//!   (ingest), by polling (background rebuilds), or scoped (queries).
//!   Waking a parked worker costs microseconds — the ~100µs per-batch
//!   `thread::scope` spawn cost of the old ingest path is gone, which
//!   moves the parallel break-even down from ~1k ops to
//!   [`POOL_MIN_OPS`] ops per batch.
//! * **Pipeline stages.** `apply` is a two-stage pipeline: the caller
//!   encodes + routes operations into recycled per-shard buffers and
//!   hands off a chunk every [`PIPELINE_CHUNK`] ops, so workers drain
//!   chunk *i* (baseline probes, rbtree insertion) while the caller
//!   encodes chunk *i+1*. Jobs own everything they touch — the shard
//!   overlay and op buffers move in and move back on reap; literal ops
//!   carry their content so workers never read the shared tables the
//!   caller is still interning into.
//! * **Thread budget.** Background compaction rebuilds and parallel
//!   continuous-query evaluation run as jobs on the *same* N workers
//!   (no ad-hoc `thread::spawn`): a store never holds more than N
//!   worker threads, a worker busy rebuilding is simply skipped (its
//!   shard's ingest chunks apply inline; queries spread over the idle
//!   workers), and dropping the store parks, wakes and joins the whole
//!   fleet — zero threads outlive it. A panicking job is caught and
//!   surfaced as [`StreamError::Worker`] instead of deadlocking the
//!   pool.
//!
//! Compaction is split out of the ingest hot path: when a shard's overlay
//! crosses the [`CompactionPolicy`] threshold, its pool worker folds
//! an `Arc` snapshot of its layers + a clone of its overlay into fresh
//! layers (pure, id-stable), and a later `apply` **atomically swaps** the
//! result in, rebasing any writes that raced the rebuild via a pure
//! visibility rule. `apply` latency is therefore bounded by routing +
//! overlay insertion + swap — never by layer construction. The single
//! [`HybridStore`] exposes the same split (`plan_compaction` /
//! [`CompactionPlan::build`] / `swap_baseline`) for callers that manage
//! their own threads.

pub mod continuous;
pub mod delta;
pub mod error;
pub mod fault;
pub mod hybrid;
pub mod incremental;
pub mod persist;
pub mod runtime;
pub mod shard;
pub mod snapshot;
pub mod wal;

pub use continuous::{
    replay_record, BatchOutcome, ContinuousQuery, ContinuousQueryRegistry, ContinuousResult,
    StreamSession, StreamStats, StreamStore,
};
pub use delta::{DeltaObj, DeltaState, DeltaStore};
pub use error::StreamError;
pub use hybrid::{
    BatchDelta, CompactionPlan, CompactionPolicy, HybridStats, HybridStore, IngestReport,
    OVERFLOW_BASE,
};
pub use incremental::EvalStrategy;
pub use persist::{PersistentStore, SaveReport};
pub use runtime::ShardRuntime;
pub use shard::{
    IngestMode, ShardPolicy, ShardedHybridStore, ShardedStats, LIT_SHARD_STRIDE, MAX_SHARDS,
    PIPELINE_CHUNK, POOL_MIN_OPS,
};
pub use snapshot::StoreSnapshot;
pub use wal::{
    decode_record_payload, encode_record_payload, read_tail, SyncPolicy, WalConfig, WalHealth,
    WalRecord,
};

#[cfg(test)]
mod tests {
    use super::*;
    use se_core::{TripleSource, Value};
    use se_ontology::Ontology;
    use se_rdf::{Graph, Literal, Term, Triple};
    use se_sparql::QueryOptions;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(iri(s), Term::iri(format!("http://x/{p}")), o)
    }

    fn ty(s: &str, c: &str) -> Triple {
        Triple::new(iri(s), Term::iri(se_rdf::vocab::rdf::TYPE), iri(c))
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add_class("http://x/C2", "http://x/C1");
        o.add_property("http://x/worksFor", "http://x/memberOf");
        o.add_object_property("http://x/knows");
        o.add_datatype_property("http://x/age");
        o
    }

    fn seed_graph() -> Graph {
        Graph::from_triples([
            ty("a", "C2"),
            ty("b", "C1"),
            t("a", "knows", iri("b")),
            t("a", "worksFor", iri("org")),
            t("b", "memberOf", iri("org")),
            t("a", "age", Term::literal("42")),
        ])
    }

    fn hybrid() -> HybridStore {
        HybridStore::build(&ontology(), &seed_graph()).unwrap()
    }

    #[test]
    fn baseline_answers_pass_through() {
        let h = hybrid();
        assert_eq!(h.len(), 6);
        let knows = h.property_id("http://x/knows").unwrap();
        let a = h.instance_id(&iri("a")).unwrap();
        let b = h.instance_id(&iri("b")).unwrap();
        assert_eq!(h.objects(knows, a), vec![Value::Instance(b)]);
        assert!(h.contains(knows, a, &Value::Instance(b)));
    }

    #[test]
    fn insert_then_query_without_rebuild() {
        let mut h = hybrid();
        assert!(h.insert_triple(&t("b", "knows", iri("a"))).unwrap());
        // Duplicate insert is a no-op.
        assert!(!h.insert_triple(&t("b", "knows", iri("a"))).unwrap());
        assert_eq!(h.len(), 7);
        let knows = h.property_id("http://x/knows").unwrap();
        let a = h.instance_id(&iri("a")).unwrap();
        let b = h.instance_id(&iri("b")).unwrap();
        assert_eq!(h.subjects(knows, &Value::Instance(a)), vec![b]);
        assert_eq!(h.scan_predicate(knows).len(), 2);
        assert_eq!(h.predicate_count(knows), 2);
    }

    #[test]
    fn delete_baseline_triple_tombstones_it() {
        let mut h = hybrid();
        assert!(h.delete_triple(&t("a", "knows", iri("b"))).unwrap());
        assert!(!h.delete_triple(&t("a", "knows", iri("b"))).unwrap());
        assert_eq!(h.len(), 5);
        let knows = h.property_id("http://x/knows").unwrap();
        let a = h.instance_id(&iri("a")).unwrap();
        assert!(h.objects(knows, a).is_empty());
        assert_eq!(h.predicate_count(knows), 0);
        // Re-insert restores visibility through the baseline copy (no
        // duplicate in scans).
        assert!(h.insert_triple(&t("a", "knows", iri("b"))).unwrap());
        assert_eq!(h.objects(knows, a).len(), 1);
        assert_eq!(h.scan_predicate(knows).len(), 1);
    }

    #[test]
    fn insert_then_delete_overlay_triple_cancels() {
        let mut h = hybrid();
        h.insert_triple(&t("c", "knows", iri("a"))).unwrap();
        assert!(h.delete_triple(&t("c", "knows", iri("a"))).unwrap());
        assert_eq!(h.len(), 6);
        let knows = h.property_id("http://x/knows").unwrap();
        let c = h.instance_id(&iri("c")).unwrap();
        assert!(h.objects(knows, c).is_empty());
    }

    #[test]
    fn overflow_terms_are_queryable() {
        let mut h = hybrid();
        // Unknown subject, property and class.
        h.insert_triple(&t("newSensor", "emits", iri("a"))).unwrap();
        h.insert_triple(&ty("newSensor", "NewKind")).unwrap();
        h.insert_triple(&t("newSensor", "reading", Term::literal("7.5")))
            .unwrap();
        let p = h.property_id("http://x/emits").unwrap();
        assert!(p >= OVERFLOW_BASE);
        let ns = h.instance_id(&iri("newSensor")).unwrap();
        let a = h.instance_id(&iri("a")).unwrap();
        assert_eq!(h.subjects(p, &Value::Instance(a)), vec![ns]);
        // Overflow property interval is a singleton.
        let iv = h.property_interval("http://x/emits").unwrap();
        assert!(iv.is_singleton());
        assert_eq!(h.objects_interval(iv, ns), vec![Value::Instance(a)]);
        // Overflow concept.
        let c = h.concept_id("http://x/NewKind").unwrap();
        assert!(c >= OVERFLOW_BASE);
        assert_eq!(h.subjects_of_concept(c), vec![ns]);
        assert!(h.has_type(ns, c));
        // Overflow literal decodes.
        let reading = h.property_id("http://x/reading").unwrap();
        let objs = h.objects(reading, ns);
        assert_eq!(objs.len(), 1);
        assert_eq!(h.value_to_term(objs[0]).unwrap(), Term::literal("7.5"));
    }

    #[test]
    fn type_queries_with_reasoning_see_overlay() {
        let mut h = hybrid();
        h.insert_triple(&ty("c", "C2")).unwrap();
        h.delete_triple(&ty("b", "C1")).unwrap();
        let iv = h.concept_interval("http://x/C1").unwrap();
        let a = h.instance_id(&iri("a")).unwrap();
        let c = h.instance_id(&iri("c")).unwrap();
        let mut expected = vec![a, c];
        expected.sort_unstable();
        assert_eq!(h.subjects_of_concept_interval(iv), expected);
        let b = h.instance_id(&iri("b")).unwrap();
        assert!(!h.has_type_in_interval(b, iv));
        assert!(h.has_type_in_interval(c, iv));
        assert_eq!(h.type_pairs().len(), 2);
    }

    #[test]
    fn property_interval_reasoning_sees_overlay() {
        let mut h = hybrid();
        h.insert_triple(&t("c", "worksFor", iri("org"))).unwrap();
        let iv = h.property_interval("http://x/memberOf").unwrap();
        let org = h.instance_id(&iri("org")).unwrap();
        let subs = h.subjects_interval(iv, &Value::Instance(org));
        assert_eq!(subs.len(), 3, "a (worksFor), b (memberOf), c (overlay)");
        assert_eq!(h.predicate_interval_count(iv), 3);
    }

    #[test]
    fn literal_tombstone_and_overlay_literals() {
        let mut h = hybrid();
        let age = h.property_id("http://x/age").unwrap();
        // Delete the baseline literal triple.
        h.delete_triple(&t("a", "age", Term::literal("42")))
            .unwrap();
        assert!(h
            .subjects_by_literal(age, &Literal::string("42"))
            .is_empty());
        // Add a fresh one for another subject.
        h.insert_triple(&t("b", "age", Term::literal("42")))
            .unwrap();
        let b = h.instance_id(&iri("b")).unwrap();
        assert_eq!(h.subjects_by_literal(age, &Literal::string("42")), vec![b]);
    }

    #[test]
    fn compaction_preserves_view_and_folds_overflow() {
        let mut h = hybrid();
        h.insert_triple(&t("newSensor", "emits", iri("a"))).unwrap();
        h.insert_triple(&ty("newSensor", "NewKind")).unwrap();
        h.delete_triple(&t("a", "knows", iri("b"))).unwrap();
        let before = h.materialize();
        h.compact().unwrap();
        assert!(h.delta().is_empty());
        assert_eq!(h.stats().compactions, 1);
        let after = h.materialize();
        let norm = |g: &Graph| {
            let mut v: Vec<String> = g.iter().map(|t| t.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&before), norm(&after));
        // Overflow terms now live in the rebuilt dictionaries.
        assert!(h.property_id("http://x/emits").unwrap() < OVERFLOW_BASE);
        assert!(h.concept_id("http://x/NewKind").unwrap() < OVERFLOW_BASE);
    }

    #[test]
    fn policy_triggers_compaction_during_apply() {
        let mut h = hybrid().with_policy(CompactionPolicy { max_overlay: 3 });
        let inserts = Graph::from_triples([
            t("c", "knows", iri("a")),
            t("d", "knows", iri("a")),
            t("e", "knows", iri("a")),
            t("f", "knows", iri("a")),
        ]);
        let report = h.apply(&inserts, &Graph::new()).unwrap();
        assert_eq!(report.inserted, 4);
        assert!(report.compacted);
        assert_eq!(h.stats().compactions, 1);
        assert_eq!(h.len(), 10);
    }

    /// The v02 directory save/load path round-trips a dirty overlay.
    #[test]
    fn persist_roundtrip_through_compaction() {
        let mut h = hybrid();
        h.insert_triple(&t("c", "knows", iri("a"))).unwrap();
        h.delete_triple(&ty("b", "C1")).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("se-stream-persist-{}.v02", std::process::id()));
        h.save(&path).unwrap();
        let back = HybridStore::load(&path, &ontology()).unwrap();
        std::fs::remove_dir_all(&path).ok();
        assert_eq!(back.len(), h.len());
        let norm = |g: &Graph| {
            let mut v: Vec<String> = g.iter().map(|t| t.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&back.materialize()), norm(&h.materialize()));
    }

    #[test]
    fn malformed_triples_rejected() {
        let mut h = hybrid();
        let bad = Triple {
            subject: Term::literal("bad"),
            predicate: Term::iri("http://x/p"),
            object: iri("o"),
        };
        assert!(matches!(
            h.insert_triple(&bad),
            Err(StreamError::Malformed(_))
        ));
        let bad_type = Triple {
            subject: iri("s"),
            predicate: Term::iri(se_rdf::vocab::rdf::TYPE),
            object: Term::literal("bad"),
        };
        assert!(matches!(
            h.insert_triple(&bad_type),
            Err(StreamError::Malformed(_))
        ));
    }

    #[test]
    fn merge_join_sees_overlay_literals_on_mixed_predicate() {
        // Baseline: p -> instance objects for 20 subjects (enough rows to
        // enable the merge-join fast path). Overlay: p -> literal objects
        // for the same subjects. The second join TP must bind BOTH kinds,
        // which requires scan_predicate to stay globally subject-sorted.
        let mut o = Ontology::new();
        o.add_object_property("http://x/p");
        o.add_object_property("http://x/q");
        let mut g = Graph::new();
        for i in 0..20 {
            g.insert(t(&format!("s{i}"), "q", iri("hub")));
            g.insert(t(&format!("s{i}"), "p", iri("target")));
        }
        let mut h = HybridStore::build(&o, &g).unwrap();
        for i in 0..20 {
            h.insert_triple(&t(&format!("s{i}"), "p", Term::literal(format!("v{i}"))))
                .unwrap();
        }
        let p = h.property_id("http://x/p").unwrap();
        let subjects: Vec<u64> = h.scan_predicate(p).iter().map(|(s, _)| *s).collect();
        let mut sorted = subjects.clone();
        sorted.sort_unstable();
        assert_eq!(subjects, sorted, "hybrid scan must stay subject-sorted");

        let q = "PREFIX e: <http://x/> SELECT ?s ?o WHERE { ?s e:q e:hub . ?s e:p ?o }";
        let with_merge = se_sparql::execute_query(&h, q, &QueryOptions::default()).unwrap();
        let without = se_sparql::execute_query(
            &h,
            q,
            &QueryOptions {
                merge_join: false,
                ..QueryOptions::default()
            },
        )
        .unwrap();
        let norm = |rs: &se_sparql::ResultSet| {
            let mut v: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(with_merge.len(), 40, "20 instance + 20 literal bindings");
        assert_eq!(norm(&with_merge), norm(&without));
    }

    #[test]
    fn noop_operations_allocate_nothing() {
        let mut h = hybrid();
        // Delete of an absent triple whose terms are all unknown.
        assert!(!h
            .delete_triple(&t("ghost", "phantom", iri("nowhere")))
            .unwrap());
        assert!(!h.delete_triple(&ty("ghost", "NoClass")).unwrap());
        assert!(!h
            .delete_triple(&t("ghost", "reading", Term::literal("404")))
            .unwrap());
        assert_eq!(h.instance_id(&iri("ghost")), None, "no instance allocated");
        assert_eq!(h.property_id("http://x/phantom"), None);
        assert_eq!(h.concept_id("http://x/NoClass"), None);
        assert_eq!(h.delta().literal_id(&Literal::string("404")), None);
        // Duplicate insert of a baseline literal triple interns nothing.
        assert!(!h
            .insert_triple(&t("a", "age", Term::literal("42")))
            .unwrap());
        assert_eq!(h.delta().literal_id(&Literal::string("42")), None);
        assert!(h.delta().is_empty());
        assert_eq!(h.len(), 6);
    }

    #[test]
    fn split_compaction_plan_build_swap_equals_inline() {
        let mut split = hybrid();
        let mut inline = hybrid();
        for h in [&mut split, &mut inline] {
            h.insert_triple(&t("newSensor", "emits", iri("a"))).unwrap();
            h.delete_triple(&t("a", "knows", iri("b"))).unwrap();
        }
        let plan = split.plan_compaction();
        assert_eq!(plan.len(), split.materialize().len());
        let rebuilt = plan.build().unwrap();
        split.swap_baseline(rebuilt).unwrap();
        inline.compact().unwrap();
        assert!(split.delta().is_empty(), "covered overlay collapses away");
        let norm = |g: &Graph| {
            let mut v: Vec<String> = g.iter().map(|t| t.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&split.materialize()), norm(&inline.materialize()));
        assert_eq!(split.stats().compactions, 1);
    }

    #[test]
    fn swap_baseline_rebases_writes_raced_between_plan_and_swap() {
        let mut h = hybrid();
        h.insert_triple(&t("c", "knows", iri("a"))).unwrap();
        let plan = h.plan_compaction();
        // Writes landing while the (simulated) worker rebuilds: a fresh
        // insert, a delete of a planned triple, and a delete of a
        // baseline triple.
        h.insert_triple(&t("d", "knows", iri("a"))).unwrap();
        h.delete_triple(&t("c", "knows", iri("a"))).unwrap();
        h.delete_triple(&t("a", "worksFor", iri("org"))).unwrap();
        let rebuilt = plan.build().unwrap();
        h.swap_baseline(rebuilt).unwrap();
        // The raced writes survive the swap.
        let knows = h.property_id("http://x/knows").unwrap();
        let a = h.instance_id(&iri("a")).unwrap();
        let d = h.instance_id(&iri("d")).unwrap();
        assert_eq!(h.subjects(knows, &Value::Instance(a)), vec![d]);
        let works = h.property_id("http://x/worksFor").unwrap();
        assert_eq!(h.predicate_count(works), 0);
        assert_eq!(h.len(), 6, "6 seed + c + d - c - worksFor = 6");
        // And the overlay holds exactly the raced writes, nothing stale:
        // d→a as an insert; tombstones for the two deletes (c→a was in
        // the plan, so its raced delete rebases to a tombstone).
        assert_eq!(h.delta().added(), 1);
        assert_eq!(h.delta().deleted(), 2);
    }

    #[test]
    fn apply_reports_batch_timings() {
        let mut h = hybrid().with_policy(CompactionPolicy { max_overlay: 2 });
        let report = h
            .apply(
                &Graph::from_triples([
                    t("c", "knows", iri("a")),
                    t("d", "knows", iri("a")),
                    t("e", "knows", iri("a")),
                ]),
                &Graph::new(),
            )
            .unwrap();
        assert!(report.compacted);
        assert!(report.ingest > std::time::Duration::ZERO);
        assert!(report.compaction > std::time::Duration::ZERO);
        assert!(h.stats().total_ingest >= report.ingest);
        assert!(h.stats().total_compaction > std::time::Duration::ZERO);
    }

    #[test]
    fn continuous_queries_run_per_batch() {
        let mut session = StreamSession::new(hybrid());
        session
            .register_query(
                "members",
                "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:memberOf e:org }",
                QueryOptions::default(),
            )
            .unwrap();
        session
            .register_query(
                "people",
                "PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:C1 }",
                QueryOptions::without_reasoning(),
            )
            .unwrap();
        assert_eq!(session.registry().len(), 2);

        let out = session
            .apply_batch(
                &Graph::from_triples([t("c", "worksFor", iri("org")), ty("c", "C1")]),
                &Graph::new(),
            )
            .unwrap();
        assert_eq!(out.report.inserted, 2);
        // Reasoning query sees worksFor ⊑ memberOf: a, b, c.
        assert_eq!(out.results[0].id, "members");
        assert_eq!(out.results[0].results.len(), 3);
        // Exact-match query sees b and c.
        assert_eq!(out.results[1].results.len(), 2);

        // A deletion batch shrinks the answers.
        let out = session
            .apply_batch(&Graph::new(), &Graph::from_triples([ty("b", "C1")]))
            .unwrap();
        assert_eq!(out.report.deleted, 1);
        assert_eq!(out.results[1].results.len(), 1);
    }
}
