//! The sharded hybrid store: the write-parallel engine over the
//! [`TripleSource`] seam.
//!
//! [`HybridStore`](crate::HybridStore) is a single-threaded prototype: one
//! overlay absorbs every write, and compaction rebuilds the whole baseline
//! inline in `apply`, so one hot predicate stalls every ingest.
//! [`ShardedHybridStore`] partitions the triple space **by predicate**
//! (`rdf:type` triples by concept) into N shards:
//!
//! * **One global identifier space.** The store owns the dictionaries:
//!   instances get dense, append-only global ids; properties and concepts
//!   carry the LiteMat codes of one global, build-time encoding (new terms
//!   go to shared overflow dictionaries above
//!   [`OVERFLOW_BASE`](crate::OVERFLOW_BASE)); overlay literals live in a
//!   shared content-interned table. Because every shard stores triples in
//!   this shared id space, the scatter/gather view needs **no id
//!   translation** — a subject id bound from one shard joins directly
//!   against pairs gathered from another. Baseline literal indices are
//!   shard-local and disambiguated by a fixed per-shard block of size
//!   [`LIT_SHARD_STRIDE`]; literal joins are content-based per the
//!   `TripleSource` contract, so distinct ids for equal content are sound.
//! * **Pipelined parallel ingest.** `apply` encodes and routes the batch
//!   (cheap hashmap work) on the calling thread and hands each
//!   [`PIPELINE_CHUNK`]-sized chunk of per-shard operation lists to the
//!   store's persistent [`ShardRuntime`] — one **parked** worker per
//!   shard, spawned lazily on the first batch that needs it. The workers
//!   drain chunk *i*'s baseline-membership probes and red-black-tree
//!   overlay insertions — the expensive part — while the caller encodes
//!   chunk *i+1*; each job *owns* its shard's overlay and op buffer for
//!   the duration (moved in, moved back on reap; literal ops carry their
//!   content), so there are no locks and no shared mutable state. Waking
//!   a parked worker costs microseconds instead of the ~100µs of the old
//!   per-batch `std::thread::scope` spawns, which pushes the parallel
//!   break-even down to [`POOL_MIN_OPS`] — into the small frequent
//!   sensor batches of the paper's streaming scenario. [`IngestMode`]
//!   forces the pool on or off (the scoped-spawn comparator survives for
//!   benchmarks); batches are shape-validated up front, so a malformed
//!   triple rejects the whole batch before any mutation — identically in
//!   every mode.
//! * **Scatter/gather queries.** A predicate-bound pattern routes to
//!   exactly one shard. Unbound-predicate scans and LiteMat
//!   property-interval patterns fan out to every shard whose predicates
//!   intersect the interval and k-way-merge the subject-sorted runs, so
//!   the merge-join contract (`scan_predicate` subject-sorted, `subjects*`
//!   ascending/deduplicated) holds across shards.
//! * **Off-hot-path compaction on the same workers.** Per-shard
//!   compaction is split into a pure rebuild against a snapshot
//!   ([`ShardBase`] is immutable and `Arc`-shared; the worker folds
//!   overlay into fresh layers **in the same id space** — no
//!   re-encoding) and an atomic
//!   [`swap`](ShardedHybridStore::flush_compactions): the live overlay is
//!   rebased onto the new layers by a pure visibility rule, so writes that
//!   raced the rebuild survive. Rebuild jobs run on the shard's own pool
//!   worker (no ad-hoc `thread::spawn` per rebuild — ingest, compaction
//!   and pooled query evaluation share one bounded thread budget of N
//!   workers); while a rebuild occupies a worker, that shard's ingest
//!   chunks apply inline so the hot path never queues behind layer
//!   construction. With background compaction enabled, `apply` tail
//!   latency is bounded by routing + overlay insertion + swap (each
//!   O(overlay)), never by layer construction.
//!
//! The price of never re-encoding: properties and concepts first seen in
//! the stream keep their overflow singleton intervals even after
//! compaction (the single `HybridStore` folds them into the hierarchy on
//! rebuild). The ROADMAP's "overflow-term reasoning" item — incremental
//! LiteMat re-encoding — would close that window for both stores.

use crate::delta::{DeltaObj, DeltaState, DeltaStore};
use crate::error::StreamError;
use crate::hybrid::{
    transition, BatchDelta, CompactionPolicy, IngestReport, OverflowDict, OVERFLOW_BASE,
};
use crate::runtime::ShardRuntime;
use se_core::builder::{instance_key, key_to_term_arc};
use se_core::datatype::DatatypeLayer;
use se_core::layer::TripleLayer;
use se_core::typestore::RdfTypeStore;
use se_core::{augment_ontology, BuildError, TripleSource, Value};
use se_litemat::{Dictionaries, IdInterval};
use se_ontology::Ontology;
use se_rdf::{Graph, Literal, Term, Triple};
use std::any::Any;
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Size of the baseline-literal id block reserved per shard. Global
/// baseline literal id = `shard * LIT_SHARD_STRIDE + local`; all blocks
/// stay far below [`OVERFLOW_BASE`](crate::OVERFLOW_BASE) (shared overlay
/// literals) for any realistic shard count.
pub const LIT_SHARD_STRIDE: u64 = 1 << 44;

/// Hard ceiling on the shard count (keeps every literal block below
/// `OVERFLOW_BASE` with room to spare).
pub const MAX_SHARDS: usize = 1 << 16;

/// Minimum routed operations before the **legacy** scoped-spawn path of
/// [`IngestMode::Scoped`]'s predecessor fanned out; kept as the
/// historical reference point the persistent runtime is measured against
/// (a thread spawn costs ~100µs — more than the transition work of a
/// small batch, so scoped spawning could never pay off below ~1k ops).
pub const PARALLEL_MIN_OPS: usize = 1024;

/// Minimum estimated operations before an [`IngestMode::Auto`] batch is
/// handed to the persistent worker pool. Waking a parked worker costs
/// microseconds instead of the ~100µs spawn, which moves the parallel
/// break-even point down an order of magnitude into the small-batch
/// regime of the paper's sensor streams.
pub const POOL_MIN_OPS: usize = 64;

/// Operations the caller routes before handing the accumulated per-shard
/// lists to the workers: stage two of the ingest pipeline (workers drain
/// chunk *i* while the caller encodes chunk *i+1*).
pub const PIPELINE_CHUNK: usize = 256;

/// Where a batch's routed operations are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Adaptive (the default): batches whose estimated size reaches
    /// [`POOL_MIN_OPS`] go to the persistent worker pool on multi-core,
    /// multi-shard stores; everything else applies inline.
    #[default]
    Auto,
    /// Always apply on the calling thread.
    Inline,
    /// Always fan out to the persistent pool (spawned on first use),
    /// whatever the batch size or core count. Used by tests to force the
    /// pool onto small batches.
    Pooled,
    /// Spawn `std::thread::scope` workers per batch — the pre-runtime
    /// parallel path, forced **unconditionally** here (the legacy code
    /// only engaged it above [`PARALLEL_MIN_OPS`] and fell back inline
    /// otherwise) so the break-even sweep can measure the spawn cost at
    /// small batch sizes the old adaptive gate refused to pay it for.
    /// The sweep therefore reports [`Inline`](IngestMode::Inline) — the
    /// legacy small-batch behaviour — alongside this comparator.
    Scoped,
}

/// A custom routing function: `(iri, n_shards) -> shard`.
pub type RoutingFn = Arc<dyn Fn(&str, usize) -> usize + Send + Sync>;

/// How predicates (and `rdf:type` concepts) are assigned to shards.
#[derive(Clone)]
pub enum ShardPolicy {
    /// Spread terms round-robin in first-seen dictionary order (balanced
    /// by construction; the default).
    RoundRobin,
    /// FNV-1a hash of the IRI modulo the shard count (stable across
    /// stores built from different graphs).
    HashIri,
    /// Custom policy: `shard = f(iri, n_shards) % n_shards`. The hook for
    /// workload-aware layouts, e.g. the per-station-group routing of
    /// `se-datagen`'s water scenario.
    ByIri(RoutingFn),
}

impl ShardPolicy {
    /// Stable tag persisted in the v02 manifest (see [`crate::persist`]).
    pub(crate) fn tag(&self) -> &'static str {
        match self {
            ShardPolicy::RoundRobin => "round_robin",
            ShardPolicy::HashIri => "hash_iri",
            ShardPolicy::ByIri(_) => "custom",
        }
    }
}

impl std::fmt::Debug for ShardPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardPolicy::RoundRobin => f.write_str("RoundRobin"),
            ShardPolicy::HashIri => f.write_str("HashIri"),
            ShardPolicy::ByIri(_) => f.write_str("ByIri(..)"),
        }
    }
}

/// FNV-1a over the IRI bytes — the same hash `se-sds` uses for
/// container checksums; kept as one implementation.
fn fnv1a(s: &str) -> u64 {
    se_sds::checksum64(s.as_bytes())
}

/// The routing table: property id → shard and concept id → shard, filled
/// from the global dictionaries at build time and extended as overflow
/// terms are interned. Ids are stable for the lifetime of the store (no
/// re-encoding), so a route never changes once assigned.
#[derive(Debug, Clone)]
pub(crate) struct RoutingTable {
    n: usize,
    pub(crate) policy: ShardPolicy,
    /// Round-robin cursor (only advanced under `ShardPolicy::RoundRobin`).
    pub(crate) next: usize,
    pub(crate) props: HashMap<u64, usize>,
    pub(crate) concepts: HashMap<u64, usize>,
}

impl RoutingTable {
    pub(crate) fn new(n: usize, policy: ShardPolicy) -> Self {
        Self {
            n,
            policy,
            next: 0,
            props: HashMap::new(),
            concepts: HashMap::new(),
        }
    }

    fn pick(&mut self, iri: &str) -> usize {
        match &self.policy {
            ShardPolicy::RoundRobin => {
                let s = self.next % self.n;
                self.next += 1;
                s
            }
            ShardPolicy::HashIri => (fnv1a(iri) % self.n as u64) as usize,
            ShardPolicy::ByIri(f) => f(iri, self.n) % self.n,
        }
    }

    fn assign_prop(&mut self, id: u64, iri: &str) -> usize {
        if let Some(&s) = self.props.get(&id) {
            return s;
        }
        let s = self.pick(iri);
        self.props.insert(id, s);
        s
    }

    fn assign_concept(&mut self, id: u64, iri: &str) -> usize {
        if let Some(&s) = self.concepts.get(&id) {
            return s;
        }
        let s = self.pick(iri);
        self.concepts.insert(id, s);
        s
    }

    fn prop(&self, id: u64) -> usize {
        self.props
            .get(&id)
            .copied()
            .unwrap_or((id % self.n as u64) as usize)
    }

    fn concept(&self, id: u64) -> usize {
        self.concepts
            .get(&id)
            .copied()
            .unwrap_or((id % self.n as u64) as usize)
    }
}

/// Shared content-interned literal table for overlay literals; ids are
/// global across shards and surface as `Value::Literal(OVERFLOW_BASE + id)`.
/// Entries are `Arc`-shared so a routed op can carry its literal's
/// content to a pool worker for one refcount bump, not a deep clone.
#[derive(Debug, Clone, Default)]
pub(crate) struct LiteralTable {
    pub(crate) literals: Vec<Arc<Literal>>,
    ids: HashMap<Arc<Literal>, u64>,
}

impl LiteralTable {
    pub(crate) fn intern(&mut self, lit: &Literal) -> u64 {
        if let Some(&id) = self.ids.get(lit) {
            return id;
        }
        let id = self.literals.len() as u64;
        let arc = Arc::new(lit.clone());
        self.literals.push(Arc::clone(&arc));
        self.ids.insert(arc, id);
        id
    }

    fn id(&self, lit: &Literal) -> Option<u64> {
        self.ids.get(lit).copied()
    }

    fn get(&self, id: u64) -> Option<&Literal> {
        self.literals.get(id as usize).map(Arc::as_ref)
    }

    /// The shared content of an interned id (for shipping with an op).
    fn arc(&self, id: u64) -> Arc<Literal> {
        Arc::clone(&self.literals[id as usize])
    }
}

/// The literal content one shard rebuild needs: exactly the ids its
/// overlay references (baseline literal content lives in the layers).
/// Built in O(overlay) on the hot path — never a clone of the full shared
/// table — and shipped to the rebuild worker.
#[derive(Debug, Clone, Default)]
struct LitSnapshot {
    by_id: HashMap<u64, Arc<Literal>>,
    by_content: HashMap<Arc<Literal>, u64>,
}

impl LitSnapshot {
    fn for_delta(delta: &DeltaStore, table: &LiteralTable) -> Self {
        let mut snap = Self::default();
        for (_, _, o, _) in delta.iter() {
            if let DeltaObj::Lit(l) = o {
                if !snap.by_id.contains_key(&l) {
                    let lit = table.arc(l);
                    snap.by_content.insert(Arc::clone(&lit), l);
                    snap.by_id.insert(l, lit);
                }
            }
        }
        snap
    }

    fn id(&self, lit: &Literal) -> Option<u64> {
        self.by_content.get(lit).copied()
    }

    fn get(&self, id: u64) -> Option<&Literal> {
        self.by_id.get(&id).map(Arc::as_ref)
    }
}

/// The immutable baseline of one shard: succinct layers over the shard's
/// predicate/concept partition, in the **global** id space. `Arc`-shared
/// so a background compaction snapshots it for free.
#[derive(Debug)]
pub(crate) struct ShardBase {
    pub(crate) objects: TripleLayer,
    pub(crate) datatypes: DatatypeLayer,
    pub(crate) types: RdfTypeStore,
}

impl ShardBase {
    fn len(&self) -> usize {
        self.objects.len() + self.datatypes.len() + self.types.len()
    }
}

/// Sorted, deduplicated per-shard triple lists awaiting layer construction.
#[derive(Debug, Default)]
struct ShardInput {
    objects: Vec<(u64, u64, u64)>,
    datatypes: Vec<(u64, u64, Literal)>,
    types: Vec<(u64, u64)>,
}

impl ShardInput {
    fn build(mut self) -> ShardBase {
        self.objects.sort_unstable();
        self.objects.dedup();
        self.datatypes
            .sort_unstable_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
        self.datatypes.dedup();
        self.types.sort_unstable();
        self.types.dedup();
        let mut types = RdfTypeStore::new();
        for &(s, c) in &self.types {
            types.insert(s, c);
        }
        ShardBase {
            objects: TripleLayer::build(&self.objects),
            datatypes: DatatypeLayer::build(&self.datatypes),
            types,
        }
    }
}

/// A background rebuild in flight on a pool worker: the worker folds a
/// snapshot of the shard into fresh layers and hands the snapshot overlay
/// back (the swap rebases the live overlay against it without probing any
/// layer) along with its wall time.
/// The job always runs on the shard's own pool worker, so the shard
/// index doubles as the worker index at reap time.
#[derive(Debug)]
struct PendingRebuild {
    /// Set when an inline `compact_shard` superseded this rebuild: its
    /// output is discarded on reap instead of swapped in — a queued job
    /// cannot be cancelled, but a stale result must never clobber fresher
    /// layers.
    stale: bool,
}

/// One predicate shard: immutable layers plus the mutable overlay.
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) base: Arc<ShardBase>,
    pub(crate) delta: DeltaStore,
    pending: Option<PendingRebuild>,
    /// Identity of this shard's current layers, process-unique: bumped on
    /// every swap so the persistence layer knows when the on-disk layer
    /// file is stale (see [`crate::persist`]).
    pub(crate) gen: u64,
}

/// Lifetime counters of a [`ShardedHybridStore`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Shard compactions performed (inline + background).
    pub compactions: usize,
    /// Of those, how many ran on a background worker.
    pub background_compactions: usize,
    /// Total triples inserted (effective).
    pub total_inserted: usize,
    /// Total triples deleted (effective).
    pub total_deleted: usize,
    /// Total hot-path time: encode + route + parallel overlay insertion.
    pub total_ingest: Duration,
    /// Total layer-rebuild wall time (worker time for background runs —
    /// off the hot path).
    pub total_compaction: Duration,
    /// Total hot-path time spent atomically swapping rebuilt layers in
    /// and rebasing the live overlay.
    pub total_swap: Duration,
    /// Batches whose routed operations were drained by the persistent
    /// worker pool.
    pub pooled_batches: usize,
    /// Batches applied on the calling thread.
    pub inline_batches: usize,
    /// Batches fanned out to per-batch scoped spawns
    /// ([`IngestMode::Scoped`], the benchmarking comparator).
    pub scoped_batches: usize,
    /// Logical write epoch: successful `apply` batches over the store's
    /// lifetime (restored across v02 save/load). Compactions do not
    /// advance it — they preserve content.
    pub epoch: u64,
    /// Snapshots taken over the store's lifetime.
    pub snapshots: usize,
    /// Snapshots currently alive, pinning resources (swapped-out shard
    /// layers, the shared overlay-literal table). A monotonically
    /// growing value here under a steady workload is a snapshot leak.
    pub live_pins: usize,
}

/// Encoded object position of one routed operation.
///
/// Literal ops carry their content (one `Arc` bump): a pool worker
/// probes the shard baseline by content and must never read the shared
/// literal table, which the caller keeps interning into while routing
/// the *next* pipeline chunk.
#[derive(Debug, Clone)]
enum OpObj {
    Inst(u64),
    /// Shared-table literal id plus its content.
    Lit(u64, Arc<Literal>),
}

#[derive(Debug, Clone)]
struct Op {
    p: u64,
    s: u64,
    o: OpObj,
}

#[derive(Debug, Clone, Copy)]
struct TypeOp {
    s: u64,
    c: u64,
}

/// One *effective* (visibility-changing) operation, recorded by the shard
/// workers when delta capture is on and decoded to a term-space triple
/// after the batch. Ops already carry everything a worker resolved —
/// literal content included — so gathering them costs one push per
/// effective op and no shared-state access.
#[derive(Debug, Clone)]
enum EffOp {
    /// An object/datatype op; `true` = became visible, `false` = removed.
    Obj(Op, bool),
    /// An rdf:type op with the same insert flag.
    Type(TypeOp, bool),
}

/// The routed operation lists of one shard for one pipeline chunk. The
/// buffers are recycled batch to batch (cleared, never dropped), so the
/// steady-state hot path allocates nothing for routing.
#[derive(Debug, Default)]
struct ShardOps {
    del: Vec<Op>,
    ins: Vec<Op>,
    type_del: Vec<TypeOp>,
    type_ins: Vec<TypeOp>,
}

impl ShardOps {
    fn len(&self) -> usize {
        self.del.len() + self.ins.len() + self.type_del.len() + self.type_ins.len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the lists, keeping their capacity for reuse.
    fn clear(&mut self) {
        self.del.clear();
        self.ins.clear();
        self.type_del.clear();
        self.type_ins.clear();
    }
}

/// Per-worker ingest outcome: `(inserted, deleted, noops)`.
type OpCounts = (usize, usize, usize);

/// What an ingest job moves back to the store on reap: the shard's
/// overlay, the recycled op buffer, the effect counts, and the effective
/// ops gathered for delta capture (empty when capture is off).
type IngestJobOut = (DeltaStore, ShardOps, OpCounts, Vec<EffOp>);

/// What a rebuild job moves back on reap: fresh layers, the snapshot
/// overlay the swap rebases against, and the build wall time.
type RebuildJobOut = (ShardBase, DeltaStore, Duration);

/// A predicate-sharded hybrid store: N independent baseline+overlay
/// shards in one global id space, parallel batch ingestion, scatter/gather
/// [`TripleSource`] view, and per-shard compaction that can run on
/// background workers. See the module docs for the architecture.
#[derive(Debug)]
pub struct ShardedHybridStore {
    pub(crate) dicts: Dictionaries,
    ontology: Ontology,
    pub(crate) shards: Vec<Shard>,
    pub(crate) routes: RoutingTable,
    pub(crate) ovf_properties: OverflowDict,
    pub(crate) ovf_concepts: OverflowDict,
    pub(crate) literals: LiteralTable,
    policy: CompactionPolicy,
    background: bool,
    ingest_mode: IngestMode,
    /// What this store already has on disk — lets `save` skip the
    /// O(baseline) parts (see [`crate::persist`]). Interior mutability
    /// because `save` takes `&self`.
    pub(crate) persist_mark: std::sync::Mutex<Option<crate::persist::ShardedMark>>,
    /// The persistent worker pool — `None` until the first batch (or
    /// background compaction) that needs it; one parked worker per shard
    /// once spawned.
    runtime: Option<ShardRuntime>,
    /// Per-shard routing destinations of the chunk being encoded
    /// (recycled every batch).
    staging: Vec<ShardOps>,
    /// Drained op buffers awaiting reuse.
    ops_pool: Vec<ShardOps>,
    /// Set when a pooled ingest job panicked: that shard's in-flight
    /// overlay was lost with the job, so further writes must not pretend
    /// to succeed.
    poisoned: bool,
    stats: ShardedStats,
    /// Logical write epoch: the number of successful `apply` batches over
    /// this store's lifetime. Persisted in the v02 manifest so epochs
    /// stay monotone across restarts.
    pub(crate) epoch: u64,
    /// Live snapshot pins: shared with every
    /// [`StoreSnapshot`](crate::snapshot::StoreSnapshot) taken from this
    /// store; each snapshot decrements it on drop. [`gc_literals`]
    /// treats a non-zero count as non-quiescent.
    /// [`gc_literals`]: ShardedHybridStore::gc_literals
    pub(crate) pins: Arc<AtomicUsize>,
    /// Snapshots taken over the store's lifetime (observability).
    snapshots_taken: AtomicUsize,
    /// When `true`, `apply` gathers each worker's effective ops and
    /// reports the batch's net term-space changes (for incremental
    /// continuous-query evaluation). Off by default.
    capture_delta: bool,
    /// Write-ahead log, when attached
    /// ([`attach_wal`](ShardedHybridStore::attach_wal)): every `apply`
    /// appends its net delta before returning. Interior mutability
    /// because `save` takes `&self` and must truncate covered segments
    /// after its manifest rename.
    pub(crate) wal: std::sync::Mutex<Option<crate::wal::Wal>>,
    /// Shared compiled-plan cache, when installed
    /// ([`set_plan_cache`](ShardedHybridStore::set_plan_cache)): every
    /// successful `apply` publishes the post-batch epoch so cached plans
    /// re-cost as the store ages — embedded callers applying directly
    /// (no `StreamSession`) included.
    plan_cache: Option<Arc<se_sparql::PlanCache>>,
}

impl ShardedHybridStore {
    /// Builds the store from an ontology and an initial graph, partitioned
    /// into `n_shards` with the default [`ShardPolicy::RoundRobin`].
    pub fn build(ontology: &Ontology, graph: &Graph, n_shards: usize) -> Result<Self, StreamError> {
        Self::build_with_policy(ontology, graph, n_shards, ShardPolicy::RoundRobin)
    }

    /// Builds with an explicit routing policy. Shard bases are constructed
    /// in parallel, one worker per shard.
    pub fn build_with_policy(
        ontology: &Ontology,
        graph: &Graph,
        n_shards: usize,
        policy: ShardPolicy,
    ) -> Result<Self, StreamError> {
        assert!(
            (1..=MAX_SHARDS).contains(&n_shards),
            "shard count must be in 1..={MAX_SHARDS}"
        );
        // One *global* augmentation + LiteMat encoding: every shard shares
        // the same property/concept codes and the same instance id space.
        let (augmented, _, _) = augment_ontology(ontology, graph)?;
        let mut dicts = augmented.encode().map_err(BuildError::from)?;
        let mut routes = RoutingTable::new(n_shards, policy);
        for (iri, enc) in dicts.properties.encoding().iter() {
            routes.assign_prop(enc.id, iri);
        }
        for (iri, enc) in dicts.concepts.encoding().iter() {
            routes.assign_concept(enc.id, iri);
        }

        // Encode + route every triple to its shard's input list.
        let mut parts: Vec<ShardInput> = (0..n_shards).map(|_| ShardInput::default()).collect();
        for t in graph {
            validate_triple(t)?;
            let p_iri = t.predicate.as_iri().expect("validated predicate");
            let s_key = instance_key(&t.subject).expect("validated subject");
            let s = dicts.instances.get_or_insert(&s_key);
            dicts.instances.record_occurrence(s);
            if t.is_type_triple() {
                let c_iri = t.object.as_iri().expect("validated rdf:type object");
                let c = dicts
                    .concepts
                    .id(c_iri)
                    .expect("augmentation covers all data classes");
                dicts.concepts.record_occurrence(c);
                parts[routes.concept(c)].types.push((s, c));
            } else {
                let p = dicts
                    .properties
                    .id(p_iri)
                    .expect("augmentation covers all data properties");
                dicts.properties.record_occurrence(p);
                let shard = routes.prop(p);
                match &t.object {
                    Term::Literal(lit) => parts[shard].datatypes.push((p, s, lit.clone())),
                    other => {
                        let o_key = instance_key(other).expect("resource object");
                        let o = dicts.instances.get_or_insert(&o_key);
                        dicts.instances.record_occurrence(o);
                        parts[shard].objects.push((p, s, o));
                    }
                }
            }
        }

        // Freeze the per-shard layers, one worker per shard.
        let bases: Vec<ShardBase> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|part| scope.spawn(move || part.build()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build worker panicked"))
                .collect()
        });

        Ok(Self {
            dicts,
            ontology: ontology.clone(),
            shards: bases
                .into_iter()
                .map(|base| Shard {
                    base: Arc::new(base),
                    delta: DeltaStore::new(),
                    pending: None,
                    gen: crate::persist::next_generation(),
                })
                .collect(),
            routes,
            ovf_properties: OverflowDict::default(),
            ovf_concepts: OverflowDict::default(),
            literals: LiteralTable::default(),
            policy: CompactionPolicy::default(),
            background: true,
            ingest_mode: IngestMode::default(),
            persist_mark: std::sync::Mutex::new(None),
            runtime: None,
            staging: (0..n_shards).map(|_| ShardOps::default()).collect(),
            ops_pool: Vec::new(),
            poisoned: false,
            stats: ShardedStats::default(),
            epoch: 0,
            pins: Arc::new(AtomicUsize::new(0)),
            snapshots_taken: AtomicUsize::new(0),
            capture_delta: false,
            wal: std::sync::Mutex::new(None),
            plan_cache: None,
        })
    }

    /// Reassembles a store from persisted v02 parts (see
    /// [`crate::persist`]): dictionaries, routing and shard layers come
    /// back exactly as saved — ids are stable, nothing re-encodes.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_loaded_parts(
        dicts: Dictionaries,
        ontology: Ontology,
        shards: Vec<Shard>,
        routes: RoutingTable,
        ovf_properties: OverflowDict,
        ovf_concepts: OverflowDict,
        literals: LiteralTable,
        policy: CompactionPolicy,
        epoch: u64,
        mark: Option<crate::persist::ShardedMark>,
    ) -> Self {
        let n_shards = shards.len();
        Self {
            dicts,
            ontology,
            shards,
            routes,
            ovf_properties,
            ovf_concepts,
            literals,
            policy,
            background: true,
            ingest_mode: IngestMode::default(),
            persist_mark: std::sync::Mutex::new(mark),
            runtime: None,
            staging: (0..n_shards).map(|_| ShardOps::default()).collect(),
            ops_pool: Vec::new(),
            poisoned: false,
            stats: ShardedStats::default(),
            epoch,
            pins: Arc::new(AtomicUsize::new(0)),
            snapshots_taken: AtomicUsize::new(0),
            capture_delta: false,
            wal: std::sync::Mutex::new(None),
            plan_cache: None,
        }
    }

    /// Builds one shard from loaded parts (persistence only).
    pub(crate) fn shard_from_loaded(base: ShardBase, delta: DeltaStore, gen: u64) -> Shard {
        Shard {
            base: Arc::new(base),
            delta,
            pending: None,
            gen,
        }
    }

    /// Replaces the per-shard compaction policy.
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Chooses where compactions run: `true` (default) rebuilds on the
    /// shard's pool worker and swaps atomically on a later `apply`;
    /// `false` rebuilds inline (the old `HybridStore` behaviour, per
    /// shard).
    pub fn with_background_compaction(mut self, background: bool) -> Self {
        self.background = background;
        self
    }

    /// Chooses where batches are applied (see [`IngestMode`]); the
    /// default is adaptive.
    pub fn with_ingest_mode(mut self, mode: IngestMode) -> Self {
        self.ingest_mode = mode;
        self
    }

    /// The ingest mode in force.
    pub fn ingest_mode(&self) -> IngestMode {
        self.ingest_mode
    }

    /// Number of persistent workers currently alive (0 until the runtime
    /// spawns lazily; equal to the shard count afterwards).
    pub fn worker_threads(&self) -> usize {
        self.runtime.as_ref().map_or(0, ShardRuntime::workers)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lifetime counters, with the live epoch/pin gauges filled in.
    pub fn stats(&self) -> ShardedStats {
        let mut s = self.stats.clone();
        s.epoch = self.epoch;
        s.snapshots = self.snapshots_taken.load(Ordering::Relaxed);
        s.live_pins = self.pins.load(Ordering::Acquire);
        s
    }

    /// The logical write epoch: successful
    /// [`apply`](ShardedHybridStore::apply) batches so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Forces the epoch to `epoch` without applying anything — the
    /// replication bootstrap (see [`crate::replay_record`]): a follower
    /// that rebuilt its state from a leader snapshot aligns to the
    /// leader's epoch before replaying shipped records. Must not be used
    /// on a store with an attached WAL (it would corrupt the log's epoch
    /// sequence).
    pub fn align_epoch(&mut self, epoch: u64) {
        debug_assert!(
            !self.wal_attached(),
            "align_epoch on a WAL-attached store corrupts the log"
        );
        self.epoch = epoch;
    }

    /// Installs a shared compiled-plan cache: every successful
    /// [`apply`](ShardedHybridStore::apply) publishes the post-batch
    /// epoch to it, so cached join orders re-cost as the store ages even
    /// when the caller applies batches directly rather than through a
    /// [`StreamSession`](crate::StreamSession).
    pub fn set_plan_cache(&mut self, cache: Arc<se_sparql::PlanCache>) {
        cache.set_epoch(self.epoch);
        self.plan_cache = Some(cache);
    }

    /// Operator-visible WAL durability state (see
    /// [`crate::wal::WalHealth`]).
    pub fn wal_health(&self) -> crate::wal::WalHealth {
        crate::hybrid::lock_wal(&self.wal)
            .as_ref()
            .map(|w| w.health())
            .unwrap_or_default()
    }

    /// The directory the attached WAL appends into, if any — replication
    /// catch-up reads the tail from here.
    pub fn wal_dir(&self) -> Option<std::path::PathBuf> {
        crate::hybrid::lock_wal(&self.wal)
            .as_ref()
            .map(|w| w.dir().to_path_buf())
    }

    /// Snapshots currently pinning this store's resources.
    pub fn live_pins(&self) -> usize {
        self.pins.load(Ordering::Acquire)
    }

    /// An immutable view of the store at the current epoch.
    ///
    /// Shard layers are shared by `Arc` (O(1) per shard); the overlays,
    /// dictionaries and the shared literal table are frozen by value, so
    /// the snapshot costs O(overlay + dictionaries) to take and the
    /// resulting [`StoreSnapshot`](crate::snapshot::StoreSnapshot) is
    /// O(1) to clone. Reader threads answer every [`TripleSource`]
    /// access at a consistent epoch while `apply` and background
    /// compaction proceed; while any clone of the snapshot is alive the
    /// store counts it as a pin ([`ShardedStats::live_pins`]) and the
    /// quiescence-only literal GC will not reclaim the shared literal
    /// table (ids handed out at this epoch must keep decoding to the
    /// same content on the live store).
    pub fn snapshot(&self) -> crate::snapshot::StoreSnapshot {
        self.snapshots_taken.fetch_add(1, Ordering::Relaxed);
        crate::snapshot::StoreSnapshot::from_sharded(
            self.frozen_view(),
            self.epoch,
            Arc::clone(&self.pins),
        )
    }

    /// A read-only deep-frozen clone backing [`snapshot`](Self::snapshot):
    /// `Arc`-shared shard layers, cloned overlays (pending rebuilds are
    /// irrelevant to a frozen view and dropped), no runtime, no persist
    /// mark. Never written to — background compaction is off and the
    /// snapshot wrapper exposes it read-only.
    fn frozen_view(&self) -> ShardedHybridStore {
        ShardedHybridStore {
            dicts: self.dicts.clone(),
            ontology: self.ontology.clone(),
            shards: self
                .shards
                .iter()
                .map(|s| Shard {
                    base: Arc::clone(&s.base),
                    delta: s.delta.clone(),
                    pending: None,
                    gen: s.gen,
                })
                .collect(),
            routes: self.routes.clone(),
            ovf_properties: self.ovf_properties.clone(),
            ovf_concepts: self.ovf_concepts.clone(),
            literals: self.literals.clone(),
            policy: self.policy,
            background: false,
            ingest_mode: IngestMode::Inline,
            persist_mark: std::sync::Mutex::new(None),
            runtime: None,
            staging: (0..self.shards.len())
                .map(|_| ShardOps::default())
                .collect(),
            ops_pool: Vec::new(),
            poisoned: false,
            stats: ShardedStats::default(),
            epoch: self.epoch,
            pins: Arc::new(AtomicUsize::new(0)),
            snapshots_taken: AtomicUsize::new(0),
            capture_delta: false,
            wal: std::sync::Mutex::new(None),
            plan_cache: None,
        }
    }

    /// The compaction policy in force (per shard).
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// The ontology the store was built against.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Total overlay entries across all shards.
    pub fn overlay_len(&self) -> usize {
        self.shards.iter().map(|s| s.delta.overlay_len()).sum()
    }

    /// Overlay entries of one shard.
    pub fn shard_overlay_len(&self, shard: usize) -> usize {
        self.shards[shard].delta.overlay_len()
    }

    /// Number of background rebuilds currently in flight.
    pub fn pending_compactions(&self) -> usize {
        self.shards.iter().filter(|s| s.pending.is_some()).count()
    }

    // ------------------------------------------------------------- ingestion

    /// Applies one batch: deletions first, then insertions.
    ///
    /// With the pool engaged the call is a two-stage pipeline: the caller
    /// thread encodes and routes operations into per-shard lists, handing
    /// each [`PIPELINE_CHUNK`]-sized chunk to the parked shard workers —
    /// so the workers drain chunk *i*'s baseline probes and rbtree
    /// insertions while the caller encodes chunk *i+1*. Below the
    /// [`POOL_MIN_OPS`] break-even (or per [`IngestMode`]) the batch
    /// applies inline. Shards whose overlay crossed the policy threshold
    /// afterwards are compacted — as a rebuild job on the shard's own
    /// worker when background compaction is on (finished rebuilds from
    /// earlier batches are swapped in at the start of the call), inline
    /// otherwise.
    pub fn apply(&mut self, inserts: &Graph, deletes: &Graph) -> Result<IngestReport, StreamError> {
        if self.poisoned {
            return Err(StreamError::Worker(
                "store poisoned by an earlier ingest worker panic".into(),
            ));
        }
        // Validate the whole batch before mutating anything: a malformed
        // triple rejects the batch atomically in every ingest mode (the
        // pipelined pooled path would otherwise have applied the chunks
        // dispatched before the bad triple, while the inline path applied
        // nothing — mode-dependent state on identical input).
        for t in deletes.iter().chain(inserts) {
            validate_triple(t)?;
        }
        let mut report = IngestReport::default();
        let (swap_time, swapped) = self.finish_ready_compactions();
        report.compacted = swapped > 0;

        let t0 = Instant::now();
        let n = self.shards.len();
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let estimated = inserts.len() + deletes.len();
        let pooled = match self.ingest_mode {
            IngestMode::Inline | IngestMode::Scoped => false,
            IngestMode::Pooled => true,
            IngestMode::Auto => n > 1 && cores > 1 && estimated >= POOL_MIN_OPS,
        };

        // The staging buffers are a store field (recycled across batches)
        // but routing borrows `&mut self`: take them out for the duration
        // of the call. Every path below — including errors — flows
        // through the restore, so a malformed batch never loses the
        // buffers.
        let mut staging = std::mem::take(&mut self.staging);
        let wal_on = self.wal_attached();
        let mut effects: Option<Vec<EffOp>> = (self.capture_delta || wal_on).then(Vec::new);
        let counts = if pooled {
            self.stats.pooled_batches += 1;
            self.apply_pooled(inserts, deletes, &mut staging, &mut report, &mut effects)
        } else {
            self.apply_unpooled(inserts, deletes, &mut staging, &mut report, &mut effects)
        };
        for ops in &mut staging {
            ops.clear();
        }
        self.staging = staging;
        let (ins, del, noop) = counts?;
        let delta = effects.map(|eff| self.decode_effects(eff));
        report.inserted += ins;
        report.deleted += del;
        report.noops += noop;
        report.ingest = t0.elapsed();
        self.stats.total_inserted += report.inserted;
        self.stats.total_deleted += report.deleted;
        self.stats.total_ingest += report.ingest;

        let mut compaction_time = swap_time;
        for i in 0..n {
            let shard = &self.shards[i];
            if shard.delta.overlay_len() >= self.policy.max_overlay && shard.pending.is_none() {
                if self.background {
                    self.start_shard_compaction(i);
                } else {
                    let t1 = Instant::now();
                    self.compact_shard(i);
                    compaction_time += t1.elapsed();
                    report.compacted = true;
                }
            }
        }
        report.compaction = compaction_time;
        self.gc_literals();
        self.epoch += 1;
        if let Some(cache) = &self.plan_cache {
            cache.set_epoch(self.epoch);
        }
        if wal_on {
            let d = delta.as_ref().expect("wal_on forces effect capture");
            if let Some(wal) = crate::hybrid::lock_wal(&self.wal).as_mut() {
                wal.append(self.epoch, d)?;
            }
        }
        // The report only carries the delta when the caller asked for
        // capture — the WAL forcing effects internally stays invisible.
        report.delta = if self.capture_delta { delta } else { None };
        Ok(report)
    }

    /// The single-threaded (or scoped-spawn comparator) path: route the
    /// whole batch, then apply each shard's list inline — or on per-batch
    /// scoped spawns under [`IngestMode::Scoped`].
    fn apply_unpooled(
        &mut self,
        inserts: &Graph,
        deletes: &Graph,
        staging: &mut [ShardOps],
        report: &mut IngestReport,
        effects: &mut Option<Vec<EffOp>>,
    ) -> Result<OpCounts, StreamError> {
        for t in deletes {
            if !self.route_op(t, false, staging)? {
                report.noops += 1;
            }
        }
        for t in inserts {
            if !self.route_op(t, true, staging)? {
                report.noops += 1;
            }
        }
        let scoped = self.ingest_mode == IngestMode::Scoped
            && staging.iter().filter(|o| !o.is_empty()).count() > 1;
        if scoped {
            self.stats.scoped_batches += 1;
            Ok(self.run_ops_scoped(staging, effects))
        } else {
            self.stats.inline_batches += 1;
            Ok(self
                .shards
                .iter_mut()
                .zip(staging.iter())
                .map(|(shard, ops)| {
                    run_shard_ops(&shard.base, &mut shard.delta, ops, effects.as_mut())
                })
                .fold((0, 0, 0), add_counts))
        }
    }

    /// The pooled pipeline: route on the caller, drain on the workers.
    /// Encodes/routes into `staging` and hands each shard's accumulated
    /// list to its parked worker every [`PIPELINE_CHUNK`] operations; the
    /// shard's overlay and op buffer travel *with* the job (moved in,
    /// moved back on reap), so no borrow crosses a thread boundary. A
    /// shard whose worker is occupied by a background rebuild applies its
    /// chunk inline instead — ingest never queues behind layer
    /// construction.
    fn apply_pooled(
        &mut self,
        inserts: &Graph,
        deletes: &Graph,
        staging: &mut [ShardOps],
        report: &mut IngestReport,
        effects: &mut Option<Vec<EffOp>>,
    ) -> Result<OpCounts, StreamError> {
        self.ensure_runtime();
        let n = self.shards.len();
        let mut in_flight = vec![false; n];
        let mut counts = (0, 0, 0);
        let mut panic_msg: Option<String> = None;
        let mut since_dispatch = 0usize;

        let mut routed: Result<(), StreamError> = Ok(());
        'route: for (graph, insert) in [(deletes, false), (inserts, true)] {
            for t in graph {
                match self.route_op(t, insert, staging) {
                    Ok(true) => {}
                    Ok(false) => report.noops += 1,
                    Err(e) => {
                        routed = Err(e);
                        break 'route;
                    }
                }
                since_dispatch += 1;
                if since_dispatch >= PIPELINE_CHUNK {
                    self.dispatch_chunk(
                        staging,
                        &mut in_flight,
                        &mut counts,
                        &mut panic_msg,
                        effects,
                    );
                    since_dispatch = 0;
                }
            }
        }
        // Flush the tail chunk and reap every in-flight job — also on the
        // error path, so the shard overlays are home again before we
        // surface anything.
        self.dispatch_chunk(
            staging,
            &mut in_flight,
            &mut counts,
            &mut panic_msg,
            effects,
        );
        for (s, flying) in in_flight.iter().enumerate() {
            if *flying {
                self.reap_ingest(s, &mut counts, &mut panic_msg, effects);
            }
        }
        // The panic check must come first: a worker panic loses that
        // shard's overlay, so the store must poison even when the same
        // batch also tripped a routing error.
        if let Some(msg) = panic_msg {
            self.poisoned = true;
            return Err(StreamError::Worker(msg));
        }
        routed?;
        Ok(counts)
    }

    /// Submits every non-empty staged shard list to its worker (reaping
    /// that worker's previous chunk first — per-shard chunks apply in
    /// submission order, preserving the deletes-before-inserts contract
    /// within the shard). Chunks for shards whose worker is busy with a
    /// background rebuild run inline on the caller.
    fn dispatch_chunk(
        &mut self,
        staging: &mut [ShardOps],
        in_flight: &mut [bool],
        counts: &mut OpCounts,
        panic_msg: &mut Option<String>,
        effects: &mut Option<Vec<EffOp>>,
    ) {
        let capture = effects.is_some();
        for s in 0..self.shards.len() {
            if staging[s].is_empty() {
                continue;
            }
            if self.shards[s].pending.is_some() {
                let shard = &mut self.shards[s];
                let c = run_shard_ops(&shard.base, &mut shard.delta, &staging[s], effects.as_mut());
                *counts = add_counts(*counts, c);
                staging[s].clear();
                continue;
            }
            if in_flight[s] {
                self.reap_ingest(s, counts, panic_msg, effects);
                in_flight[s] = false;
            }
            let delta = std::mem::take(&mut self.shards[s].delta);
            let ops = std::mem::replace(&mut staging[s], self.ops_pool.pop().unwrap_or_default());
            let base = Arc::clone(&self.shards[s].base);
            let runtime = self.runtime.as_ref().expect("ensured by apply_pooled");
            runtime.submit(
                s,
                Box::new(move || {
                    let mut delta = delta;
                    let mut eff = capture.then(Vec::new);
                    let c = run_shard_ops(&base, &mut delta, &ops, eff.as_mut());
                    Box::new((delta, ops, c, eff.unwrap_or_default())) as Box<dyn Any + Send>
                }),
            );
            in_flight[s] = true;
        }
    }

    /// Blocks on shard `s`'s in-flight ingest job and moves its overlay
    /// and op buffer home. A panicked job is recorded (first message
    /// wins); its overlay died with it, which `apply_pooled` converts
    /// into a poisoned store.
    fn reap_ingest(
        &mut self,
        s: usize,
        counts: &mut OpCounts,
        panic_msg: &mut Option<String>,
        effects: &mut Option<Vec<EffOp>>,
    ) {
        let runtime = self.runtime.as_ref().expect("reap without runtime");
        match runtime.take(s) {
            Ok(out) => {
                let (delta, mut ops, c, eff) = *out
                    .downcast::<IngestJobOut>()
                    .expect("ingest job returns IngestJobOut");
                self.shards[s].delta = delta;
                ops.clear();
                self.ops_pool.push(ops);
                *counts = add_counts(*counts, c);
                if let Some(dst) = effects.as_mut() {
                    dst.extend(eff);
                }
            }
            Err(msg) => {
                panic_msg.get_or_insert(msg);
            }
        }
    }

    /// Turns net-delta capture on or off: when on, every `apply` report
    /// carries a [`BatchDelta`] with the batch's net term-space changes,
    /// gathered from the shard workers' effective ops.
    pub fn set_delta_capture(&mut self, on: bool) {
        self.capture_delta = on;
    }

    /// Whether `apply` reports carry a [`BatchDelta`].
    pub fn delta_capture(&self) -> bool {
        self.capture_delta
    }

    /// Attaches a write-ahead log over `dir`: first checkpoints the
    /// store there (so the directory always holds a manifest the log's
    /// records chain onto), then every successful `apply` appends the
    /// batch's net delta per `config` before returning.
    /// [`load`](ShardedHybridStore::load) replays the tail past the
    /// manifest automatically; the recovered store has no log attached —
    /// call `attach_wal` again to keep appending.
    pub fn attach_wal(
        &mut self,
        dir: &Path,
        config: crate::wal::WalConfig,
    ) -> Result<crate::persist::SaveReport, StreamError> {
        let report = self.save(dir)?;
        let wal = crate::wal::Wal::open(dir, config)?;
        *crate::hybrid::lock_wal(&self.wal) = Some(wal);
        Ok(report)
    }

    /// Whether a write-ahead log is attached.
    pub fn wal_attached(&self) -> bool {
        crate::hybrid::lock_wal(&self.wal).is_some()
    }

    /// Fsyncs any buffered log records (a no-op without an attached log
    /// or under [`SyncPolicy::EveryBatch`](crate::wal::SyncPolicy)) —
    /// the graceful-shutdown drain.
    pub fn wal_flush(&self) -> Result<(), StreamError> {
        match crate::hybrid::lock_wal(&self.wal).as_mut() {
            Some(wal) => wal.flush(),
            None => Ok(()),
        }
    }

    /// Decodes the workers' gathered effective ops back to term space and
    /// nets them per triple. Ids are decodable by construction: inserts
    /// interned their terms while routing, deletes only routed terms that
    /// already resolved, literal ops carry their content, and per-shard
    /// compaction never re-encodes the id space.
    fn decode_effects(&self, effects: Vec<EffOp>) -> BatchDelta {
        let decode_inst = |id: u64| {
            key_to_term_arc(
                self.dicts
                    .instances
                    .term_arc(id)
                    .expect("dictionary-complete instance id"),
            )
        };
        let prop_term = |id: u64| -> Term {
            let iri = if id >= OVERFLOW_BASE {
                self.ovf_properties.term(id)
            } else {
                self.dicts.properties.term_arc(id)
            };
            Term::Iri(iri.expect("dictionary-complete property id"))
        };
        let concept_term = |id: u64| -> Term {
            let iri = if id >= OVERFLOW_BASE {
                self.ovf_concepts.term(id)
            } else {
                self.dicts.concepts.term_arc(id)
            };
            Term::Iri(iri.expect("dictionary-complete concept id"))
        };
        let rdf_type = Term::iri(se_rdf::vocab::rdf::TYPE);
        let events = effects
            .into_iter()
            .map(|eff| match eff {
                EffOp::Type(op, insert) => (
                    Triple::new(decode_inst(op.s), rdf_type.clone(), concept_term(op.c)),
                    if insert { 1 } else { -1 },
                ),
                EffOp::Obj(op, insert) => {
                    let object = match op.o {
                        OpObj::Inst(o) => decode_inst(o),
                        OpObj::Lit(_, lit) => Term::Literal((*lit).clone()),
                    };
                    (
                        Triple::new(decode_inst(op.s), prop_term(op.p), object),
                        if insert { 1 } else { -1 },
                    )
                }
            })
            .collect();
        BatchDelta::from_events(events)
    }

    /// Spawns the persistent pool (one parked worker per shard) if it is
    /// not running yet.
    fn ensure_runtime(&mut self) {
        if self.runtime.is_none() {
            self.runtime = Some(ShardRuntime::new(self.shards.len()));
        }
    }

    /// The persistent worker pool, if it has been spawned — shared with
    /// continuous-query evaluation via
    /// [`StreamStore::shared_runtime`](crate::StreamStore::shared_runtime).
    pub fn runtime(&self) -> Option<&ShardRuntime> {
        self.runtime.as_ref()
    }

    /// Drops the shared overlay-literal table when nothing can reference
    /// it: table ids live only in overlay entries (layers store literal
    /// *content*) and in snapshots owned by in-flight rebuilds, so once
    /// every shard's overlay is empty and no rebuild is pending the
    /// table is garbage. Keeps long streams from accumulating every
    /// distinct literal ever ingested. (Steady streams with always-dirty
    /// overlays still grow the table — see the ROADMAP item on literal
    /// reference counting.)
    ///
    /// A live [`StoreSnapshot`](crate::snapshot::StoreSnapshot) counts as
    /// non-quiescent: `Value::Literal(OVERFLOW_BASE + id)` values decoded
    /// from a pinned snapshot share this table's id space, and resetting
    /// it would re-issue the same ids for different content — a value
    /// handed from snapshot to live store would silently decode to the
    /// wrong literal. Reclamation resumes once the last pin drops.
    fn gc_literals(&mut self) {
        let quiescent = self
            .shards
            .iter()
            .all(|s| s.delta.is_empty() && s.pending.is_none())
            && self.pins.load(Ordering::Acquire) == 0;
        if quiescent && !self.literals.literals.is_empty() {
            self.literals = LiteralTable::default();
        }
    }

    /// Encodes one triple and routes it to its shard's operation list.
    /// Returns `false` for deletes that are provably no-ops (an involved
    /// term is unknown everywhere, so the triple cannot be visible) —
    /// mirroring `HybridStore`'s no-allocation discipline. `apply`
    /// already validated the batch; the re-validation here is the cheap
    /// defensive second line keeping the shape rules in one place.
    fn route_op(
        &mut self,
        t: &Triple,
        insert: bool,
        ops: &mut [ShardOps],
    ) -> Result<bool, StreamError> {
        validate_triple(t)?;
        let p_iri = t.predicate.as_iri().expect("validated predicate");
        let s_key = instance_key(&t.subject).expect("validated subject");

        if t.is_type_triple() {
            let c_iri = t.object.as_iri().expect("validated rdf:type object");
            let c_resolved = self
                .dicts
                .concepts
                .id(c_iri)
                .or_else(|| self.ovf_concepts.id(c_iri));
            let s_resolved = self.dicts.instances.id(&s_key);
            let (s, c) = if insert {
                let s = s_resolved.unwrap_or_else(|| self.dicts.instances.get_or_insert(&s_key));
                let c = c_resolved.unwrap_or_else(|| {
                    let id = self.ovf_concepts.get_or_insert(c_iri);
                    self.routes.assign_concept(id, c_iri);
                    id
                });
                (s, c)
            } else {
                match (s_resolved, c_resolved) {
                    (Some(s), Some(c)) => (s, c),
                    _ => return Ok(false),
                }
            };
            let shard = self.routes.concept(c);
            let op = TypeOp { s, c };
            if insert {
                ops[shard].type_ins.push(op);
            } else {
                ops[shard].type_del.push(op);
            }
            return Ok(true);
        }

        let p_resolved = self
            .dicts
            .properties
            .id(p_iri)
            .or_else(|| self.ovf_properties.id(p_iri));
        let s_resolved = self.dicts.instances.id(&s_key);
        let (p, s) = if insert {
            let p = p_resolved.unwrap_or_else(|| {
                let id = self.ovf_properties.get_or_insert(p_iri);
                self.routes.assign_prop(id, p_iri);
                id
            });
            let s = s_resolved.unwrap_or_else(|| self.dicts.instances.get_or_insert(&s_key));
            (p, s)
        } else {
            match (p_resolved, s_resolved) {
                (Some(p), Some(s)) => (p, s),
                _ => return Ok(false),
            }
        };
        let shard = self.routes.prop(p);
        let o = match &t.object {
            Term::Literal(lit) => {
                if insert {
                    let l = self.literals.intern(lit);
                    OpObj::Lit(l, self.literals.arc(l))
                } else {
                    match self.literals.id(lit) {
                        Some(l) => OpObj::Lit(l, self.literals.arc(l)),
                        // Unknown to the overlay table — deletable only if
                        // the shard's baseline holds it; intern a tombstone
                        // key just for that case.
                        None => {
                            let base_has = self.shards[shard]
                                .base
                                .datatypes
                                .subjects_by_literal(p, lit)
                                .contains(&s);
                            if !base_has {
                                return Ok(false);
                            }
                            let l = self.literals.intern(lit);
                            OpObj::Lit(l, self.literals.arc(l))
                        }
                    }
                }
            }
            other => {
                let o_key = instance_key(other).expect("non-literal object is a resource");
                match self.dicts.instances.id(&o_key) {
                    Some(o) => OpObj::Inst(o),
                    None if insert => OpObj::Inst(self.dicts.instances.get_or_insert(&o_key)),
                    None => return Ok(false),
                }
            }
        };
        let op = Op { p, s, o };
        if insert {
            ops[shard].ins.push(op);
        } else {
            ops[shard].del.push(op);
        }
        Ok(true)
    }

    /// Runs the routed operation lists on per-batch `std::thread::scope`
    /// workers, one per shard with work — the pre-runtime parallel
    /// ingest path, kept (minus its [`PARALLEL_MIN_OPS`]/core-count
    /// gate, see [`IngestMode::Scoped`]) as the benchmarking comparator:
    /// its ~100µs-per-spawn cost is exactly what the persistent pool
    /// amortizes away.
    fn run_ops_scoped(&mut self, ops: &[ShardOps], effects: &mut Option<Vec<EffOp>>) -> OpCounts {
        let capture = effects.is_some();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(ops)
                .map(|(shard, ops)| {
                    if ops.is_empty() {
                        None
                    } else {
                        let Shard { base, delta, .. } = shard;
                        let base = Arc::clone(base);
                        Some(scope.spawn(move || {
                            let mut eff = capture.then(Vec::new);
                            let c = run_shard_ops(&base, delta, ops, eff.as_mut());
                            (c, eff)
                        }))
                    }
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h {
                    Some(h) => {
                        let (c, eff) = h.join().expect("ingest worker panicked");
                        if let (Some(dst), Some(mut e)) = (effects.as_mut(), eff) {
                            dst.append(&mut e);
                        }
                        c
                    }
                    None => (0, 0, 0),
                })
                .fold((0, 0, 0), add_counts)
        })
    }

    // ------------------------------------------------------------ compaction

    /// Compacts one shard inline: fold baseline + overlay into fresh
    /// layers (same id space — no re-encoding) and swap them in.
    pub fn compact_shard(&mut self, shard: usize) {
        // A background rebuild may be in flight against an older snapshot;
        // its result is superseded by this inline fold. A pool job cannot
        // be cancelled, so mark it stale — the reap discards its output
        // instead of swapping stale layers over the fresh ones (which
        // would drop every write that landed in between).
        if let Some(pending) = &mut self.shards[shard].pending {
            pending.stale = true;
        }
        let t0 = Instant::now();
        let built = {
            let s = &self.shards[shard];
            let lits = LitSnapshot::for_delta(&s.delta, &self.literals);
            rebuild_shard(&s.base, &s.delta, &lits)
        };
        self.stats.total_compaction += t0.elapsed();
        // Inline: the snapshot IS the live overlay, so the rebase is a
        // plain clear.
        self.swap_shard_base(shard, built, None);
    }

    /// Hands a background rebuild for one shard to the shard's pool
    /// worker, against an O(1) snapshot of its layers plus a clone of
    /// its overlay (both O(overlay), bounded by the compaction
    /// threshold — never O(store)). Replaces the old per-rebuild
    /// `thread::spawn`: compaction now shares the ingest workers' bounded
    /// thread budget, and an occupied worker simply makes the next few
    /// ingest chunks of that one shard apply inline.
    fn start_shard_compaction(&mut self, shard: usize) {
        self.ensure_runtime();
        let base = Arc::clone(&self.shards[shard].base);
        let delta = self.shards[shard].delta.clone();
        let lits = LitSnapshot::for_delta(&delta, &self.literals);
        let runtime = self.runtime.as_ref().expect("ensured above");
        runtime.submit(
            shard,
            Box::new(move || {
                let t0 = Instant::now();
                let built = rebuild_shard(&base, &delta, &lits);
                Box::new((built, delta, t0.elapsed())) as Box<dyn Any + Send>
            }),
        );
        self.shards[shard].pending = Some(PendingRebuild { stale: false });
    }

    /// Reaps one finished rebuild job: swap the fresh layers in (and
    /// rebase the live overlay), or discard a result a later inline
    /// compaction already superseded. Returns the hot-path swap time.
    fn consume_rebuild(
        &mut self,
        shard: usize,
        result: Result<Box<dyn Any + Send>, String>,
    ) -> Duration {
        let pending = self.shards[shard].pending.take().expect("pending rebuild");
        if pending.stale {
            // Superseded by an inline fold: the result is dead by design —
            // account nothing, swap nothing, and ignore even a panicked
            // job (the old code dropped the JoinHandle of a superseded
            // rebuild, discarding its outcome the same way).
            return Duration::ZERO;
        }
        let (built, snapshot, build_time) = match result {
            Ok(out) => *out
                .downcast::<RebuildJobOut>()
                .expect("rebuild job returns RebuildJobOut"),
            // `rebuild_shard` is pure id-space folding; a panic there is a
            // bug, and the old JoinHandle path's `expect` behaviour is
            // preserved.
            Err(msg) => panic!("compaction worker panicked: {msg}"),
        };
        self.stats.total_compaction += build_time;
        self.stats.background_compactions += 1;
        let t0 = Instant::now();
        self.swap_shard_base(shard, built, Some(&snapshot));
        t0.elapsed()
    }

    /// Swaps finished background rebuilds in without blocking on the ones
    /// still running. Returns `(hot-path swap time, shards swapped)`.
    fn finish_ready_compactions(&mut self) -> (Duration, usize) {
        let mut spent = Duration::ZERO;
        let mut swapped = 0;
        for i in 0..self.shards.len() {
            let Some(pending) = &self.shards[i].pending else {
                continue;
            };
            let stale = pending.stale;
            let Some(result) = self.runtime.as_ref().and_then(|rt| rt.try_take(i)) else {
                continue;
            };
            spent += self.consume_rebuild(i, result);
            if !stale {
                swapped += 1;
            }
        }
        (spent, swapped)
    }

    /// Blocks until every in-flight background rebuild has been swapped
    /// in. Returns the number of shards swapped.
    pub fn flush_compactions(&mut self) -> usize {
        let mut swapped = 0;
        for i in 0..self.shards.len() {
            let Some(pending) = &self.shards[i].pending else {
                continue;
            };
            let stale = pending.stale;
            let result = self
                .runtime
                .as_ref()
                .expect("pending rebuild implies a runtime")
                .take(i);
            self.consume_rebuild(i, result);
            if !stale {
                swapped += 1;
            }
        }
        self.gc_literals();
        swapped
    }

    /// Installs rebuilt layers and rebases the live overlay onto them —
    /// atomically from the query perspective, and **without probing a
    /// single layer**:
    ///
    /// * an entry whose state is unchanged since the snapshot is covered
    ///   by the rebuild and collapses away;
    /// * for an entry that changed (a write raced the worker), the new
    ///   layers' membership is *derivable*: if the snapshot held the
    ///   triple, membership is the snapshot state's visibility; if not,
    ///   it is the old-baseline membership, which every [`DeltaState`]
    ///   encodes by construction (`Added`/`Cancelled` ⇔ absent,
    ///   `Deleted`/`Restored` ⇔ present). The entry then survives as
    ///   `Added` iff it asserts visibility the new layers lack, `Deleted`
    ///   iff it asserts invisibility they contradict.
    ///
    /// `snapshot: None` means the snapshot is the live overlay itself
    /// (inline compaction): everything collapses. Ids never change, so
    /// the whole rebase is O(overlay · log overlay) id-space work.
    fn swap_shard_base(
        &mut self,
        shard: usize,
        new_base: ShardBase,
        snapshot: Option<&DeltaStore>,
    ) {
        let t0 = Instant::now();
        let s = &mut self.shards[shard];
        let old_delta = std::mem::take(&mut s.delta);
        s.base = Arc::new(new_base);
        s.gen = crate::persist::next_generation();
        if let Some(snap) = snapshot {
            for (p, subj, o, st) in old_delta.iter() {
                let new_has = match snap.state(p, subj, o) {
                    Some(st0) => st0.present(),
                    None => matches!(st, DeltaState::Deleted | DeltaState::Restored),
                };
                match (st.present(), new_has) {
                    (true, false) => s.delta.set(p, subj, o, DeltaState::Added),
                    (false, true) => s.delta.set(p, subj, o, DeltaState::Deleted),
                    _ => {}
                }
            }
            for (subj, c, st) in old_delta.type_iter() {
                let new_has = match snap.type_state(subj, c) {
                    Some(st0) => st0.present(),
                    None => matches!(st, DeltaState::Deleted | DeltaState::Restored),
                };
                match (st.present(), new_has) {
                    (true, false) => s.delta.set_type(subj, c, DeltaState::Added),
                    (false, true) => s.delta.set_type(subj, c, DeltaState::Deleted),
                    _ => {}
                }
            }
        }
        self.stats.compactions += 1;
        self.stats.total_swap += t0.elapsed();
    }

    // -------------------------------------------------------- decode helpers

    fn literal_content(&self, idx: u64) -> Option<&Literal> {
        if idx >= OVERFLOW_BASE {
            self.literals.get(idx - OVERFLOW_BASE)
        } else {
            let shard = (idx / LIT_SHARD_STRIDE) as usize;
            self.shards
                .get(shard)?
                .base
                .datatypes
                .literal(idx % LIT_SHARD_STRIDE)
        }
    }

    /// Delta key of a query `Value` object, if expressible.
    fn delta_key_of(&self, o: &Value) -> Option<DeltaObj> {
        match o {
            Value::Instance(id) => Some(DeltaObj::Inst(*id)),
            Value::Literal(idx) => {
                let lit = self.literal_content(*idx)?;
                self.literals.id(lit).map(DeltaObj::Lit)
            }
            _ => None,
        }
    }

    fn tombstoned(&self, shard: usize, p: u64, s: u64, v: &Value) -> bool {
        match self.delta_key_of(v) {
            Some(key) => self.shards[shard].delta.state(p, s, key) == Some(DeltaState::Deleted),
            None => false,
        }
    }

    fn obj_to_value(o: DeltaObj) -> Value {
        match o {
            DeltaObj::Inst(id) => Value::Instance(id),
            DeltaObj::Lit(l) => Value::Literal(OVERFLOW_BASE + l),
        }
    }

    /// Subject-sorted merge of a tombstone-filtered baseline run with the
    /// overlay's additions for one predicate of one shard.
    fn merge_pairs(
        &self,
        shard: usize,
        base: Vec<(u64, Value)>,
        added: Vec<(u64, Value)>,
        p: u64,
    ) -> Vec<(u64, Value)> {
        let mut out = Vec::with_capacity(base.len() + added.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() || j < added.len() {
            let take_base = match (base.get(i), added.get(j)) {
                (Some(b), Some(a)) => b.0 <= a.0,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_base {
                let (s, v) = base[i];
                i += 1;
                if !self.tombstoned(shard, p, s, &v) {
                    out.push((s, v));
                }
            } else {
                out.push(added[j]);
                j += 1;
            }
        }
        out
    }

    /// Distinct predicates (baseline or overlay, any shard) in `[lo, hi)`,
    /// ascending — the fan-out set of an interval pattern.
    fn merged_predicates(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut preds = BTreeSet::new();
        for shard in &self.shards {
            for idx in shard.base.objects.predicate_range(lo, hi) {
                preds.insert(shard.base.objects.predicate_at(idx));
            }
            for idx in shard.base.datatypes.predicate_range(lo, hi) {
                preds.insert(shard.base.datatypes.predicate_at(idx));
            }
            preds.extend(shard.delta.predicates_in(lo, hi));
        }
        preds.into_iter().collect()
    }

    /// Materializes the full merged view as a term-space graph (baseline
    /// minus tombstones plus overlay insertions, across all shards).
    pub fn materialize(&self) -> Graph {
        let decode_inst = |id: u64| {
            key_to_term_arc(
                self.dicts
                    .instances
                    .term_arc(id)
                    .expect("dictionary-complete instance id"),
            )
        };
        let prop_term = |id: u64| -> Term {
            let iri = if id >= OVERFLOW_BASE {
                self.ovf_properties.term(id)
            } else {
                self.dicts.properties.term_arc(id)
            };
            Term::Iri(iri.expect("dictionary-complete property id"))
        };
        let concept_term = |id: u64| -> Term {
            let iri = if id >= OVERFLOW_BASE {
                self.ovf_concepts.term(id)
            } else {
                self.dicts.concepts.term_arc(id)
            };
            Term::Iri(iri.expect("dictionary-complete concept id"))
        };
        let rdf_type = Term::iri(se_rdf::vocab::rdf::TYPE);
        let mut g = Graph::new();
        for shard in &self.shards {
            for (p, s, o) in shard.base.objects.iter() {
                if shard.delta.state(p, s, DeltaObj::Inst(o)) != Some(DeltaState::Deleted) {
                    g.insert(Triple::new(decode_inst(s), prop_term(p), decode_inst(o)));
                }
            }
            for (p, s, li) in shard.base.datatypes.iter() {
                let lit = shard.base.datatypes.literal(li).expect("in-range literal");
                let dead = self
                    .literals
                    .id(lit)
                    .map(|l| shard.delta.state(p, s, DeltaObj::Lit(l)))
                    == Some(Some(DeltaState::Deleted));
                if !dead {
                    g.insert(Triple::new(
                        decode_inst(s),
                        prop_term(p),
                        Term::Literal(lit.clone()),
                    ));
                }
            }
            for (s, c) in shard.base.types.iter() {
                if shard.delta.type_state(s, c) != Some(DeltaState::Deleted) {
                    g.insert(Triple::new(
                        decode_inst(s),
                        rdf_type.clone(),
                        concept_term(c),
                    ));
                }
            }
            for (p, s, o, st) in shard.delta.iter() {
                if st == DeltaState::Added {
                    let object = match o {
                        DeltaObj::Inst(id) => decode_inst(id),
                        DeltaObj::Lit(l) => {
                            Term::Literal(self.literals.get(l).expect("interned").clone())
                        }
                    };
                    g.insert(Triple::new(decode_inst(s), prop_term(p), object));
                }
            }
            for (s, c, st) in shard.delta.type_iter() {
                if st == DeltaState::Added {
                    g.insert(Triple::new(
                        decode_inst(s),
                        rdf_type.clone(),
                        concept_term(c),
                    ));
                }
            }
        }
        g
    }
}

/// Sums two per-worker outcome triples.
fn add_counts(a: OpCounts, b: OpCounts) -> OpCounts {
    (a.0 + b.0, a.1 + b.1, a.2 + b.2)
}

/// The store's shape rules — the single source of truth: `apply` checks
/// the whole batch up front so a malformed triple rejects it without
/// side effects, and `build`/`route_op` re-call this per triple instead
/// of duplicating the checks.
fn validate_triple(t: &Triple) -> Result<(), StreamError> {
    if t.predicate.as_iri().is_none() {
        return Err(StreamError::Malformed(format!("non-IRI predicate: {t}")));
    }
    if instance_key(&t.subject).is_none() {
        return Err(StreamError::Malformed(format!("literal subject: {t}")));
    }
    if t.is_type_triple() && t.object.as_iri().is_none() {
        return Err(StreamError::Malformed(format!(
            "rdf:type with non-IRI object: {t}"
        )));
    }
    Ok(())
}

/// Applies one shard's routed operations against its baseline + overlay.
/// Runs on a pool worker (or a scoped/inline fallback); everything it
/// touches is either moved into the job (`delta`, `ops` — literal ops
/// carry their content) or frozen for the phase (`base`).
fn run_shard_ops(
    base: &ShardBase,
    delta: &mut DeltaStore,
    ops: &ShardOps,
    mut effects: Option<&mut Vec<EffOp>>,
) -> OpCounts {
    let (mut ins, mut del, mut noop) = (0, 0, 0);
    let mut bump = |hit: bool, insert: bool| {
        if hit && insert {
            ins += 1;
        } else if hit {
            del += 1;
        } else {
            noop += 1;
        }
    };
    for op in &ops.type_del {
        let hit = apply_type_op(base, delta, op, false);
        if hit {
            if let Some(eff) = effects.as_deref_mut() {
                eff.push(EffOp::Type(*op, false));
            }
        }
        bump(hit, false);
    }
    for op in &ops.del {
        let hit = apply_op(base, delta, op, false);
        if hit {
            if let Some(eff) = effects.as_deref_mut() {
                eff.push(EffOp::Obj(op.clone(), false));
            }
        }
        bump(hit, false);
    }
    for op in &ops.type_ins {
        let hit = apply_type_op(base, delta, op, true);
        if hit {
            if let Some(eff) = effects.as_deref_mut() {
                eff.push(EffOp::Type(*op, true));
            }
        }
        bump(hit, true);
    }
    for op in &ops.ins {
        let hit = apply_op(base, delta, op, true);
        if hit {
            if let Some(eff) = effects.as_deref_mut() {
                eff.push(EffOp::Obj(op.clone(), true));
            }
        }
        bump(hit, true);
    }
    (ins, del, noop)
}

fn apply_op(base: &ShardBase, delta: &mut DeltaStore, op: &Op, insert: bool) -> bool {
    let (key, base_has) = match &op.o {
        OpObj::Inst(o) => (DeltaObj::Inst(*o), base.objects.contains(op.p, op.s, *o)),
        OpObj::Lit(l, lit) => (
            DeltaObj::Lit(*l),
            base.datatypes
                .subjects_by_literal(op.p, lit.as_ref())
                .contains(&op.s),
        ),
    };
    match transition(delta.state(op.p, op.s, key), base_has, insert) {
        Some(st) => {
            delta.set(op.p, op.s, key, st);
            true
        }
        None => false,
    }
}

fn apply_type_op(base: &ShardBase, delta: &mut DeltaStore, op: &TypeOp, insert: bool) -> bool {
    let base_has = base.types.has_type(op.s, op.c);
    match transition(delta.type_state(op.s, op.c), base_has, insert) {
        Some(st) => {
            delta.set_type(op.s, op.c, st);
            true
        }
        None => false,
    }
}

/// Folds one shard's overlay into fresh layers — pure, id-space-stable,
/// safe to run on a worker thread against a snapshot.
fn rebuild_shard(base: &ShardBase, delta: &DeltaStore, literals: &LitSnapshot) -> ShardBase {
    let mut input = ShardInput::default();
    for (p, s, o) in base.objects.iter() {
        if delta.state(p, s, DeltaObj::Inst(o)) != Some(DeltaState::Deleted) {
            input.objects.push((p, s, o));
        }
    }
    for (p, s, li) in base.datatypes.iter() {
        let lit = base.datatypes.literal(li).expect("in-range literal");
        let dead = literals
            .id(lit)
            .map(|l| delta.state(p, s, DeltaObj::Lit(l)))
            == Some(Some(DeltaState::Deleted));
        if !dead {
            input.datatypes.push((p, s, lit.clone()));
        }
    }
    for (s, c) in base.types.iter() {
        if delta.type_state(s, c) != Some(DeltaState::Deleted) {
            input.types.push((s, c));
        }
    }
    for (p, s, o, st) in delta.iter() {
        if st == DeltaState::Added {
            match o {
                DeltaObj::Inst(oid) => input.objects.push((p, s, oid)),
                DeltaObj::Lit(l) => {
                    input
                        .datatypes
                        .push((p, s, literals.get(l).expect("interned").clone()))
                }
            }
        }
    }
    for (s, c, st) in delta.type_iter() {
        if st == DeltaState::Added {
            input.types.push((s, c));
        }
    }
    input.build()
}

/// K-way merge of subject-sorted `(subject, value)` runs into one
/// subject-sorted run — a min-heap over run heads, O(n log k) (stable:
/// ties broken by run index, preserving the instances-before-literals
/// convention within a shard).
fn kway_merge_by_subject(mut runs: Vec<Vec<(u64, Value)>>) -> Vec<(u64, Value)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    runs.retain(|r| !r.is_empty());
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.pop().expect("len checked"),
        _ => {}
    }
    let total = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Heap key: (subject, run index) — run index both breaks ties
    // deterministically and addresses the cursor.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = runs
        .iter()
        .enumerate()
        .map(|(k, run)| Reverse((run[0].0, k)))
        .collect();
    let mut cursors = vec![0usize; runs.len()];
    while let Some(Reverse((_, k))) = heap.pop() {
        out.push(runs[k][cursors[k]]);
        cursors[k] += 1;
        if let Some(&(s, _)) = runs[k].get(cursors[k]) {
            heap.push(Reverse((s, k)));
        }
    }
    out
}

impl TripleSource for ShardedHybridStore {
    fn instance_id(&self, term: &Term) -> Option<u64> {
        self.dicts.instances.id(&instance_key(term)?)
    }

    fn property_id(&self, iri: &str) -> Option<u64> {
        self.dicts
            .properties
            .id(iri)
            .or_else(|| self.ovf_properties.id(iri))
    }

    fn concept_id(&self, iri: &str) -> Option<u64> {
        self.dicts
            .concepts
            .id(iri)
            .or_else(|| self.ovf_concepts.id(iri))
    }

    fn property_interval(&self, iri: &str) -> Option<IdInterval> {
        self.dicts.properties.interval(iri).or_else(|| {
            self.ovf_properties.id(iri).map(|id| IdInterval {
                lower: id,
                upper: id + 1,
            })
        })
    }

    fn concept_interval(&self, iri: &str) -> Option<IdInterval> {
        self.dicts.concepts.interval(iri).or_else(|| {
            self.ovf_concepts.id(iri).map(|id| IdInterval {
                lower: id,
                upper: id + 1,
            })
        })
    }

    fn value_to_term(&self, value: Value) -> Option<Term> {
        match value {
            Value::Instance(id) => self.dicts.instances.term_arc(id).map(key_to_term_arc),
            Value::Concept(id) => {
                if id >= OVERFLOW_BASE {
                    self.ovf_concepts.term(id).map(Term::Iri)
                } else {
                    self.dicts.concepts.term_arc(id).map(Term::Iri)
                }
            }
            Value::Property(id) => {
                if id >= OVERFLOW_BASE {
                    self.ovf_properties.term(id).map(Term::Iri)
                } else {
                    self.dicts.properties.term_arc(id).map(Term::Iri)
                }
            }
            Value::Literal(idx) => self.literal_content(idx).map(|l| Term::Literal(l.clone())),
        }
    }

    fn literal(&self, idx: u64) -> Option<&Literal> {
        self.literal_content(idx)
    }

    fn objects(&self, p: u64, s: u64) -> Vec<Value> {
        let i = self.routes.prop(p);
        let shard = &self.shards[i];
        let mut out = Vec::new();
        for o in shard.base.objects.objects(p, s) {
            let v = Value::Instance(o);
            if !self.tombstoned(i, p, s, &v) {
                out.push(v);
            }
        }
        for li in shard.base.datatypes.literal_indices(p, s) {
            let v = Value::Literal(i as u64 * LIT_SHARD_STRIDE + li);
            if !self.tombstoned(i, p, s, &v) {
                out.push(v);
            }
        }
        for (o, st) in shard.delta.objects(p, s) {
            if st == DeltaState::Added {
                out.push(Self::obj_to_value(o));
            }
        }
        out
    }

    fn subjects(&self, p: u64, o: &Value) -> Vec<u64> {
        let i = self.routes.prop(p);
        let shard = &self.shards[i];
        match o {
            Value::Instance(oid) => {
                let mut out: Vec<u64> = shard
                    .base
                    .objects
                    .subjects(p, *oid)
                    .into_iter()
                    .filter(|&s| {
                        shard.delta.state(p, s, DeltaObj::Inst(*oid)) != Some(DeltaState::Deleted)
                    })
                    .collect();
                for (s, st) in shard.delta.subjects(p, DeltaObj::Inst(*oid)) {
                    if st == DeltaState::Added {
                        out.push(s);
                    }
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            Value::Literal(idx) => match self.literal_content(*idx) {
                Some(lit) => {
                    let lit = lit.clone();
                    self.subjects_by_literal(p, &lit)
                }
                None => Vec::new(),
            },
            _ => Vec::new(),
        }
    }

    fn subjects_by_literal(&self, p: u64, lit: &Literal) -> Vec<u64> {
        let i = self.routes.prop(p);
        let shard = &self.shards[i];
        let local = self.literals.id(lit);
        let mut out: Vec<u64> = shard
            .base
            .datatypes
            .subjects_by_literal(p, lit)
            .into_iter()
            .filter(|&s| {
                local.map(|l| shard.delta.state(p, s, DeltaObj::Lit(l)))
                    != Some(Some(DeltaState::Deleted))
            })
            .collect();
        if let Some(l) = local {
            for (s, st) in shard.delta.subjects(p, DeltaObj::Lit(l)) {
                if st == DeltaState::Added {
                    out.push(s);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn scan_predicate(&self, p: u64) -> Vec<(u64, Value)> {
        let i = self.routes.prop(p);
        let shard = &self.shards[i];
        let (mut added_inst, mut added_lit) = (Vec::new(), Vec::new());
        for (s, o, st) in shard.delta.scan(p) {
            if st == DeltaState::Added {
                match o {
                    DeltaObj::Inst(_) => added_inst.push((s, Self::obj_to_value(o))),
                    DeltaObj::Lit(_) => added_lit.push((s, Self::obj_to_value(o))),
                }
            }
        }
        let base_inst: Vec<(u64, Value)> = shard
            .base
            .objects
            .scan_predicate(p)
            .into_iter()
            .map(|(s, o)| (s, Value::Instance(o)))
            .collect();
        let base_lit: Vec<(u64, Value)> = shard
            .base
            .datatypes
            .scan_predicate(p)
            .into_iter()
            .map(|(s, li)| (s, Value::Literal(i as u64 * LIT_SHARD_STRIDE + li)))
            .collect();
        let inst = self.merge_pairs(i, base_inst, added_inst, p);
        let lit = self.merge_pairs(i, base_lit, added_lit, p);
        kway_merge_by_subject(vec![inst, lit])
    }

    fn contains(&self, p: u64, s: u64, o: &Value) -> bool {
        let i = self.routes.prop(p);
        let shard = &self.shards[i];
        if let Some(key) = self.delta_key_of(o) {
            if let Some(st) = shard.delta.state(p, s, key) {
                return st.present();
            }
        }
        match o {
            Value::Instance(oid) => shard.base.objects.contains(p, s, *oid),
            Value::Literal(idx) => match self.literal_content(*idx) {
                Some(lit) => shard
                    .base
                    .datatypes
                    .subjects_by_literal(p, lit)
                    .contains(&s),
                None => false,
            },
            _ => false,
        }
    }

    fn objects_interval(&self, p_iv: IdInterval, s: u64) -> Vec<Value> {
        let mut out = Vec::new();
        for p in self.merged_predicates(p_iv.lower, p_iv.upper) {
            out.extend(self.objects(p, s));
        }
        out
    }

    fn subjects_interval(&self, p_iv: IdInterval, o: &Value) -> Vec<u64> {
        let mut out = Vec::new();
        for p in self.merged_predicates(p_iv.lower, p_iv.upper) {
            out.extend(self.subjects(p, o));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn subjects_by_literal_interval(&self, p_iv: IdInterval, lit: &Literal) -> Vec<u64> {
        let mut out = Vec::new();
        for p in self.merged_predicates(p_iv.lower, p_iv.upper) {
            out.extend(self.subjects_by_literal(p, lit));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn scan_interval(&self, p_iv: IdInterval) -> Vec<(u64, Value)> {
        // Fan out to every predicate of every shard intersecting the
        // interval; each per-predicate run is subject-sorted, so the
        // gather is a k-way merge keeping the output subject-sorted.
        let runs: Vec<Vec<(u64, Value)>> = self
            .merged_predicates(p_iv.lower, p_iv.upper)
            .into_iter()
            .map(|p| self.scan_predicate(p))
            .collect();
        kway_merge_by_subject(runs)
    }

    fn subjects_of_concept(&self, c: u64) -> Vec<u64> {
        let i = self.routes.concept(c);
        let shard = &self.shards[i];
        let mut out: Vec<u64> = shard
            .base
            .types
            .subjects_of(c)
            .into_iter()
            .filter(|&s| shard.delta.type_state(s, c) != Some(DeltaState::Deleted))
            .collect();
        for (_, s, st) in shard.delta.type_subjects_in(c, c + 1) {
            if st == DeltaState::Added {
                out.push(s);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn subjects_of_concept_interval(&self, iv: IdInterval) -> Vec<u64> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .base
                    .types
                    .pairs_in_interval(iv)
                    .into_iter()
                    .filter(|&(c, s)| shard.delta.type_state(s, c) != Some(DeltaState::Deleted))
                    .map(|(_, s)| s),
            );
            for (_, s, st) in shard.delta.type_subjects_in(iv.lower, iv.upper) {
                if st == DeltaState::Added {
                    out.push(s);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn concepts_of_subject(&self, s: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .base
                    .types
                    .concepts_of(s)
                    .into_iter()
                    .filter(|&c| shard.delta.type_state(s, c) != Some(DeltaState::Deleted)),
            );
            for (c, st) in shard.delta.type_concepts_of(s, 0, u64::MAX) {
                if st == DeltaState::Added {
                    out.push(c);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn has_type(&self, s: u64, c: u64) -> bool {
        let shard = &self.shards[self.routes.concept(c)];
        match shard.delta.type_state(s, c) {
            Some(st) => st.present(),
            None => shard.base.types.has_type(s, c),
        }
    }

    fn has_type_in_interval(&self, s: u64, iv: IdInterval) -> bool {
        for shard in &self.shards {
            let overlay = shard.delta.type_concepts_of(s, iv.lower, iv.upper);
            if overlay.iter().any(|&(_, st)| st.present()) {
                return true;
            }
            let hit = if overlay.iter().all(|&(_, st)| st != DeltaState::Deleted) {
                shard.base.types.has_type_in_interval(s, iv)
            } else {
                // Some base types of `s` in the interval are tombstoned:
                // check the survivors individually.
                shard.base.types.concepts_of(s).into_iter().any(|c| {
                    iv.contains(c) && shard.delta.type_state(s, c) != Some(DeltaState::Deleted)
                })
            };
            if hit {
                return true;
            }
        }
        false
    }

    fn type_pairs(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .base
                    .types
                    .iter()
                    .filter(|&(s, c)| shard.delta.type_state(s, c) != Some(DeltaState::Deleted)),
            );
            for (s, c, st) in shard.delta.type_iter() {
                if st == DeltaState::Added {
                    out.push((s, c));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| (s.base.len() as isize + s.delta.net_triples()) as usize)
            .sum()
    }

    fn predicate_count(&self, p: u64) -> usize {
        let shard = &self.shards[self.routes.prop(p)];
        let base = shard.base.objects.count_predicate(p) + shard.base.datatypes.count_predicate(p);
        let mut n = base as isize;
        for (_, _, st) in shard.delta.scan(p) {
            match st {
                DeltaState::Added => n += 1,
                DeltaState::Deleted => n -= 1,
                _ => {}
            }
        }
        n.max(0) as usize
    }

    fn predicate_interval_count(&self, iv: IdInterval) -> usize {
        self.merged_predicates(iv.lower, iv.upper)
            .into_iter()
            .map(|p| self.predicate_count(p))
            .sum()
    }

    fn type_count(&self, iv: IdInterval) -> usize {
        let mut n = 0isize;
        for shard in &self.shards {
            n += shard.base.types.count_interval(iv) as isize;
            for (_, _, st) in shard.delta.type_subjects_in(iv.lower, iv.upper) {
                match st {
                    DeltaState::Added => n += 1,
                    DeltaState::Deleted => n -= 1,
                    _ => {}
                }
            }
        }
        n.max(0) as usize
    }

    fn type_total(&self) -> usize {
        let mut n = 0isize;
        for shard in &self.shards {
            n += shard.base.types.len() as isize;
            for (_, _, st) in shard.delta.type_iter() {
                match st {
                    DeltaState::Added => n += 1,
                    DeltaState::Deleted => n -= 1,
                    _ => {}
                }
            }
        }
        n.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridStore;
    use se_sparql::QueryOptions;
    use std::collections::BTreeSet;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(iri(s), Term::iri(format!("http://x/{p}")), o)
    }

    fn ty(s: &str, c: &str) -> Triple {
        Triple::new(iri(s), Term::iri(se_rdf::vocab::rdf::TYPE), iri(c))
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add_class("http://x/C2", "http://x/C1");
        o.add_property("http://x/worksFor", "http://x/memberOf");
        o.add_object_property("http://x/knows");
        o.add_datatype_property("http://x/age");
        o
    }

    fn seed_graph() -> Graph {
        Graph::from_triples([
            ty("a", "C2"),
            ty("b", "C1"),
            t("a", "knows", iri("b")),
            t("a", "worksFor", iri("org")),
            t("b", "memberOf", iri("org")),
            t("a", "age", Term::literal("42")),
        ])
    }

    fn sharded(n: usize) -> ShardedHybridStore {
        ShardedHybridStore::build(&ontology(), &seed_graph(), n).unwrap()
    }

    fn norm(g: &Graph) -> Vec<String> {
        let mut v: Vec<String> = g.iter().map(|t| t.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn baseline_queries_route_across_shards() {
        for n in [1, 2, 3, 5] {
            let h = sharded(n);
            assert_eq!(h.shard_count(), n);
            assert_eq!(h.len(), 6);
            assert_eq!(h.type_total(), 2);
            let knows = h.property_id("http://x/knows").unwrap();
            let a = h.instance_id(&iri("a")).unwrap();
            let b = h.instance_id(&iri("b")).unwrap();
            assert_eq!(h.objects(knows, a), vec![Value::Instance(b)]);
            assert_eq!(h.subjects(knows, &Value::Instance(b)), vec![a]);
            assert!(h.contains(knows, a, &Value::Instance(b)));
            assert_eq!(h.predicate_count(knows), 1);
            // Property-interval reasoning across routed predicates.
            let iv = h.property_interval("http://x/memberOf").unwrap();
            let org = h.instance_id(&iri("org")).unwrap();
            assert_eq!(h.subjects_interval(iv, &Value::Instance(org)).len(), 2);
            assert_eq!(h.predicate_interval_count(iv), 2);
            // Concept-interval reasoning across shards.
            let c1 = h.concept_interval("http://x/C1").unwrap();
            assert_eq!(h.subjects_of_concept_interval(c1).len(), 2);
            assert!(h.has_type_in_interval(a, c1));
            // Literal lookups route through the shard's literal block.
            let age = h.property_id("http://x/age").unwrap();
            let objs = h.objects(age, a);
            assert_eq!(objs.len(), 1);
            assert_eq!(h.value_to_term(objs[0]).unwrap(), Term::literal("42"));
            assert_eq!(h.subjects_by_literal(age, &Literal::string("42")), vec![a]);
        }
    }

    /// The central parity property at unit scale: a sharded store and a
    /// single HybridStore fed the same batches answer identically.
    #[test]
    fn parallel_apply_matches_single_hybrid() {
        let mut sh = sharded(4).with_background_compaction(false);
        let mut single = HybridStore::build(&ontology(), &seed_graph()).unwrap();
        let batches: Vec<(Graph, Graph)> = vec![
            (
                Graph::from_triples([
                    t("c", "knows", iri("a")),
                    t("c", "worksFor", iri("org")),
                    ty("c", "C2"),
                    t("c", "age", Term::literal("7")),
                ]),
                Graph::new(),
            ),
            (
                Graph::from_triples([t("d", "memberOf", iri("org2")), ty("org2", "C1")]),
                Graph::from_triples([t("a", "knows", iri("b")), ty("b", "C1")]),
            ),
            (
                // Re-insert a tombstoned triple; delete an overlay one.
                Graph::from_triples([t("a", "knows", iri("b"))]),
                Graph::from_triples([t("c", "knows", iri("a")), t("c", "age", Term::literal("7"))]),
            ),
        ];
        for (ins, del) in &batches {
            let rs = sh.apply(ins, del).unwrap();
            let rh = single.apply(ins, del).unwrap();
            assert_eq!((rs.inserted, rs.deleted), (rh.inserted, rh.deleted));
            assert_eq!(norm(&sh.materialize()), norm(&single.materialize()));
            assert_eq!(TripleSource::len(&sh), TripleSource::len(&single));
        }
        // SPARQL answers agree too.
        let q = "PREFIX e: <http://x/> SELECT ?s ?o WHERE { ?s e:memberOf ?o }";
        let a = se_sparql::execute_query(&sh, q, &QueryOptions::default()).unwrap();
        let b = se_sparql::execute_query(&single, q, &QueryOptions::default()).unwrap();
        let sort = |rs: &se_sparql::ResultSet| {
            let mut v: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(sort(&a), sort(&b));
    }

    #[test]
    fn overflow_terms_are_queryable_and_survive_compaction() {
        let mut h = sharded(3).with_background_compaction(false);
        h.apply(
            &Graph::from_triples([
                t("newSensor", "emits", iri("a")),
                ty("newSensor", "NewKind"),
                t("newSensor", "reading", Term::literal("7.5")),
            ]),
            &Graph::new(),
        )
        .unwrap();
        let p = h.property_id("http://x/emits").unwrap();
        assert!(p >= OVERFLOW_BASE);
        let ns = h.instance_id(&iri("newSensor")).unwrap();
        let a = h.instance_id(&iri("a")).unwrap();
        assert_eq!(h.subjects(p, &Value::Instance(a)), vec![ns]);
        let iv = h.property_interval("http://x/emits").unwrap();
        assert!(iv.is_singleton());
        assert_eq!(h.objects_interval(iv, ns), vec![Value::Instance(a)]);
        let c = h.concept_id("http://x/NewKind").unwrap();
        assert!(c >= OVERFLOW_BASE);
        assert_eq!(h.subjects_of_concept(c), vec![ns]);
        assert!(h.has_type(ns, c));
        let before = norm(&h.materialize());
        // Folding overflow-id triples into the layers must preserve the
        // view and keep the terms queryable (ids are stable, no
        // re-encode; the interval stays a singleton).
        for i in 0..h.shard_count() {
            h.compact_shard(i);
        }
        assert_eq!(h.overlay_len(), 0);
        assert_eq!(norm(&h.materialize()), before);
        assert_eq!(h.property_id("http://x/emits"), Some(p));
        assert_eq!(h.subjects(p, &Value::Instance(a)), vec![ns]);
        assert_eq!(h.subjects_of_concept(c), vec![ns]);
        let reading = h.property_id("http://x/reading").unwrap();
        let objs = h.objects(reading, ns);
        assert_eq!(objs.len(), 1);
        assert_eq!(h.value_to_term(objs[0]).unwrap(), Term::literal("7.5"));
    }

    #[test]
    fn inline_compaction_triggered_by_policy() {
        let mut h = sharded(2)
            .with_background_compaction(false)
            .with_policy(CompactionPolicy { max_overlay: 2 });
        let report = h
            .apply(
                &Graph::from_triples([
                    t("c", "knows", iri("a")),
                    t("d", "knows", iri("a")),
                    t("e", "knows", iri("a")),
                ]),
                &Graph::new(),
            )
            .unwrap();
        assert_eq!(report.inserted, 3);
        assert!(report.compacted);
        assert!(h.stats().compactions >= 1);
        assert_eq!(h.len(), 9);
        let knows = h.property_id("http://x/knows").unwrap();
        assert_eq!(h.predicate_count(knows), 4);
    }

    #[test]
    fn background_compaction_with_raced_writes() {
        let mut h = sharded(2)
            .with_background_compaction(true)
            .with_policy(CompactionPolicy { max_overlay: 4 });
        let mut reference: BTreeSet<Triple> = seed_graph().iter().cloned().collect();
        let step = |h: &mut ShardedHybridStore,
                    reference: &mut BTreeSet<Triple>,
                    ins: Vec<Triple>,
                    del: Vec<Triple>| {
            for t in &del {
                reference.remove(t);
            }
            for t in &ins {
                reference.insert(t.clone());
            }
            h.apply(&Graph::from_triples(ins), &Graph::from_triples(del))
                .unwrap();
        };
        // Push several batches so rebuilds start while writes keep racing.
        for round in 0..12 {
            let ins = (0..4)
                .map(|k| t(&format!("s{round}_{k}"), "knows", iri("hub")))
                .chain([ty(&format!("s{round}_0"), "C2")])
                .collect();
            let del = if round >= 2 {
                vec![
                    t(&format!("s{}_{}", round - 2, 0), "knows", iri("hub")),
                    ty(&format!("s{}_{}", round - 2, 0), "C2"),
                ]
            } else {
                Vec::new()
            };
            step(&mut h, &mut reference, ins, del);
        }
        h.flush_compactions();
        assert!(
            h.stats().background_compactions >= 1,
            "stream must exercise the background path"
        );
        let expected: Vec<String> = {
            let mut v: Vec<String> = reference.iter().map(|t| t.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&h.materialize()), expected);
        assert_eq!(h.len(), reference.len());
    }

    #[test]
    fn scans_stay_subject_sorted_across_layers_and_overlay() {
        let mut o = Ontology::new();
        o.add_object_property("http://x/p");
        let mut g = Graph::new();
        for i in 0..20 {
            g.insert(t(&format!("s{i:02}"), "p", iri("target")));
        }
        let mut h = ShardedHybridStore::build(&o, &g, 3).unwrap();
        for i in 0..20 {
            h.apply(
                &Graph::from_triples([t(&format!("s{i:02}"), "p", Term::literal(format!("v{i}")))]),
                &Graph::new(),
            )
            .unwrap();
        }
        let p = h.property_id("http://x/p").unwrap();
        let pairs = h.scan_predicate(p);
        assert_eq!(pairs.len(), 40);
        let subjects: Vec<u64> = pairs.iter().map(|(s, _)| *s).collect();
        let mut sorted = subjects.clone();
        sorted.sort_unstable();
        assert_eq!(subjects, sorted, "scan_predicate must stay subject-sorted");
        // Interval fan-out k-way merges the runs subject-sorted too.
        let iv = h.property_interval("http://x/p").unwrap();
        let pairs = h.scan_interval(iv);
        let subjects: Vec<u64> = pairs.iter().map(|(s, _)| *s).collect();
        let mut sorted = subjects.clone();
        sorted.sort_unstable();
        assert_eq!(subjects, sorted, "scan_interval gather must merge sorted");
    }

    #[test]
    fn custom_routing_policy_is_honoured() {
        let all_to_zero = ShardPolicy::ByIri(Arc::new(|_iri: &str, _n: usize| 0));
        let h = ShardedHybridStore::build_with_policy(&ontology(), &seed_graph(), 4, all_to_zero)
            .unwrap();
        assert_eq!(h.len(), 6);
        // Everything routed to shard 0: the other shards stay empty.
        for i in 1..4 {
            assert_eq!(h.shards[i].base.len(), 0);
        }
        let knows = h.property_id("http://x/knows").unwrap();
        assert_eq!(h.routes.prop(knows), 0);
        // Hash policy: deterministic and in range.
        let h2 = ShardedHybridStore::build_with_policy(
            &ontology(),
            &seed_graph(),
            4,
            ShardPolicy::HashIri,
        )
        .unwrap();
        let h3 = ShardedHybridStore::build_with_policy(
            &ontology(),
            &seed_graph(),
            4,
            ShardPolicy::HashIri,
        )
        .unwrap();
        assert_eq!(h2.routes.prop(knows), h3.routes.prop(knows));
        assert_eq!(norm(&h2.materialize()), norm(&h3.materialize()));
    }

    #[test]
    fn noop_deletes_allocate_nothing() {
        let mut h = sharded(2);
        let report = h
            .apply(
                &Graph::new(),
                &Graph::from_triples([
                    t("ghost", "phantom", iri("nowhere")),
                    ty("ghost", "NoClass"),
                    t("ghost", "reading", Term::literal("404")),
                ]),
            )
            .unwrap();
        assert_eq!(report.deleted, 0);
        assert_eq!(report.noops, 3);
        assert_eq!(h.instance_id(&iri("ghost")), None);
        assert_eq!(h.property_id("http://x/phantom"), None);
        assert_eq!(h.concept_id("http://x/NoClass"), None);
        assert_eq!(h.literals.id(&Literal::string("404")), None);
        assert_eq!(h.overlay_len(), 0);
    }

    #[test]
    fn malformed_triples_rejected() {
        let mut h = sharded(2);
        let bad = Triple {
            subject: Term::literal("bad"),
            predicate: Term::iri("http://x/p"),
            object: iri("o"),
        };
        assert!(matches!(
            h.apply(&Graph::from_triples([bad]), &Graph::new()),
            Err(StreamError::Malformed(_))
        ));
        let bad_type = Triple {
            subject: iri("s"),
            predicate: Term::iri(se_rdf::vocab::rdf::TYPE),
            object: Term::literal("bad"),
        };
        assert!(matches!(
            h.apply(&Graph::from_triples([bad_type]), &Graph::new()),
            Err(StreamError::Malformed(_))
        ));
    }

    /// Regression: an inline `compact_shard` must invalidate any
    /// in-flight background rebuild — otherwise a later poll would swap
    /// stale layers over the fresh ones and silently drop the writes
    /// that landed in between. A pool job cannot be cancelled, so the
    /// rebuild is marked stale and its output discarded on reap.
    #[test]
    fn inline_compact_discards_stale_background_rebuild() {
        let mut h = sharded(1)
            .with_background_compaction(true)
            .with_policy(CompactionPolicy { max_overlay: 2 });
        // Crosses the threshold: a background rebuild starts against a
        // snapshot that lacks everything after this batch.
        h.apply(
            &Graph::from_triples([t("c", "knows", iri("a")), t("d", "knows", iri("a"))]),
            &Graph::new(),
        )
        .unwrap();
        assert_eq!(h.pending_compactions(), 1);
        // Newer write, then an inline compact folding it in. (Whether the
        // in-flight rebuild got swapped during the apply or marked stale
        // by the fold is a race; either way no write may be lost.)
        h.apply(
            &Graph::from_triples([t("e", "knows", iri("a"))]),
            &Graph::new(),
        )
        .unwrap();
        h.compact_shard(0);
        // Subsequent applies must never resurrect a stale snapshot.
        h.apply(
            &Graph::from_triples([t("f", "knows", iri("a"))]),
            &Graph::new(),
        )
        .unwrap();
        h.flush_compactions();
        assert_eq!(h.pending_compactions(), 0, "stale rebuild reaped");
        let knows = h.property_id("http://x/knows").unwrap();
        let a = h.instance_id(&iri("a")).unwrap();
        let mut subs = h.subjects(knows, &Value::Instance(a));
        subs.sort_unstable();
        let expect: Vec<u64> = ["c", "d", "e", "f"]
            .iter()
            .map(|s| h.instance_id(&iri(s)).unwrap())
            .collect();
        let mut expect = expect;
        expect.sort_unstable();
        assert_eq!(subs, expect, "no write lost across the race");
    }

    /// The shared overlay-literal table is dropped once every overlay is
    /// empty and no rebuild is pending (and queries still answer from
    /// the folded layers).
    #[test]
    fn literal_table_garbage_collected_when_quiescent() {
        let mut h = sharded(2).with_background_compaction(false);
        h.apply(
            &Graph::from_triples([t("x", "note", Term::literal("hello"))]),
            &Graph::new(),
        )
        .unwrap();
        assert!(h.literals.id(&Literal::string("hello")).is_some());
        for i in 0..h.shard_count() {
            h.compact_shard(i);
        }
        // compact_shard alone does not GC (callers may batch them); the
        // next apply does.
        h.apply(&Graph::new(), &Graph::new()).unwrap();
        assert!(h.literals.literals.is_empty(), "table reclaimed");
        let note = h.property_id("http://x/note").unwrap();
        let x = h.instance_id(&iri("x")).unwrap();
        let objs = h.objects(note, x);
        assert_eq!(objs.len(), 1, "content lives on in the layers");
        assert_eq!(h.value_to_term(objs[0]).unwrap(), Term::literal("hello"));
    }

    /// Regression: a live snapshot pins the shared literal table. The
    /// quiescence GC resets the table and re-issues ids from zero, so
    /// clearing it under a snapshot would make the snapshot's overlay
    /// literal ids silently decode to *different* content interned later
    /// by the live store. A pinned snapshot must block the GC; dropping
    /// it re-enables reclamation.
    #[test]
    fn literal_gc_blocked_by_pinned_snapshot() {
        let mut h = sharded(2).with_background_compaction(false);
        h.apply(
            &Graph::from_triples([t("x", "note", Term::literal("hello"))]),
            &Graph::new(),
        )
        .unwrap();
        let snap = h.snapshot();
        for i in 0..h.shard_count() {
            h.compact_shard(i);
        }
        // Same sequence that reclaims the table in the quiescent test —
        // but the snapshot holds a pin, so the table must survive.
        h.apply(&Graph::new(), &Graph::new()).unwrap();
        assert!(
            h.literals.id(&Literal::string("hello")).is_some(),
            "pinned snapshot keeps the shared literal table alive"
        );
        // The snapshot still resolves its overlay literal.
        let note = snap.property_id("http://x/note").unwrap();
        let x = snap.instance_id(&iri("x")).unwrap();
        let objs = snap.objects(note, x);
        assert_eq!(objs.len(), 1);
        assert_eq!(snap.value_to_term(objs[0]).unwrap(), Term::literal("hello"));
        // Once the last pin drops, the next apply reclaims as before.
        drop(snap);
        h.apply(&Graph::new(), &Graph::new()).unwrap();
        assert!(
            h.literals.literals.is_empty(),
            "table reclaimed after unpin"
        );
    }

    #[test]
    fn sharded_store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedHybridStore>();
    }

    /// The tentpole's small-batch regime: with the pool forced on, every
    /// tiny batch goes through the persistent workers (no adaptive
    /// fallback) and the result is bit-identical to the inline path and
    /// the single-overlay store.
    #[test]
    fn forced_pool_small_batches_match_inline_and_single() {
        let mut pooled = sharded(4)
            .with_ingest_mode(IngestMode::Pooled)
            .with_background_compaction(true)
            .with_policy(CompactionPolicy { max_overlay: 6 });
        let mut inline = sharded(4)
            .with_ingest_mode(IngestMode::Inline)
            .with_background_compaction(false)
            .with_policy(CompactionPolicy { max_overlay: 6 });
        let mut single = HybridStore::build(&ontology(), &seed_graph()).unwrap();
        assert_eq!(pooled.worker_threads(), 0, "runtime spawns lazily");
        for round in 0..10 {
            // 2–4 ops per batch: far below POOL_MIN_OPS.
            let ins = Graph::from_triples([
                t(&format!("s{round}"), "knows", iri("hub")),
                ty(&format!("s{round}"), "C2"),
                t(
                    &format!("s{round}"),
                    "age",
                    Term::literal(format!("{round}")),
                ),
            ]);
            let del = if round >= 3 {
                Graph::from_triples([t(&format!("s{}", round - 3), "knows", iri("hub"))])
            } else {
                Graph::new()
            };
            let rp = pooled.apply(&ins, &del).unwrap();
            let ri = inline.apply(&ins, &del).unwrap();
            let rs = single.apply(&ins, &del).unwrap();
            assert_eq!((rp.inserted, rp.deleted), (ri.inserted, ri.deleted));
            assert_eq!((rp.inserted, rp.deleted), (rs.inserted, rs.deleted));
        }
        pooled.flush_compactions();
        inline.flush_compactions();
        assert_eq!(norm(&pooled.materialize()), norm(&inline.materialize()));
        assert_eq!(norm(&pooled.materialize()), norm(&single.materialize()));
        assert_eq!(pooled.stats().pooled_batches, 10, "every batch pooled");
        assert_eq!(pooled.stats().inline_batches, 0);
        assert_eq!(inline.stats().inline_batches, 10);
        assert_eq!(pooled.worker_threads(), pooled.shard_count());
    }

    /// Auto mode keeps small batches inline (the pool only pays off past
    /// the break-even) and never spawns the runtime for them.
    #[test]
    fn auto_mode_keeps_small_batches_inline() {
        let mut h = sharded(4).with_background_compaction(false);
        h.apply(
            &Graph::from_triples([t("x", "knows", iri("hub"))]),
            &Graph::new(),
        )
        .unwrap();
        assert_eq!(h.stats().inline_batches, 1);
        assert_eq!(h.stats().pooled_batches, 0);
        assert_eq!(h.worker_threads(), 0, "no workers for inline batches");
    }

    /// The lifecycle satellite at store level: dropping a store with live
    /// workers — including an in-flight background rebuild — joins the
    /// whole fleet (the runtime's `Drop` asserts every worker exited; a
    /// hang here would time the test out).
    #[test]
    fn dropping_pooled_store_joins_workers() {
        let mut h = sharded(3)
            .with_ingest_mode(IngestMode::Pooled)
            .with_background_compaction(true)
            .with_policy(CompactionPolicy { max_overlay: 4 });
        for round in 0..6 {
            h.apply(
                &Graph::from_triples([
                    t(&format!("a{round}"), "knows", iri("hub")),
                    t(&format!("b{round}"), "memberOf", iri("org")),
                ]),
                &Graph::new(),
            )
            .unwrap();
        }
        assert_eq!(h.worker_threads(), 3);
        // Rebuilds may still be in flight; drop must reap, join and
        // release every worker regardless.
        drop(h);
    }

    /// Scoped mode still works (it is the benchmarking comparator) and
    /// agrees with the pooled result.
    #[test]
    fn scoped_comparator_matches_pooled() {
        let mut scoped = sharded(4)
            .with_ingest_mode(IngestMode::Scoped)
            .with_background_compaction(false);
        let mut pooled = sharded(4)
            .with_ingest_mode(IngestMode::Pooled)
            .with_background_compaction(false);
        let preds = ["knows", "memberOf", "worksFor"];
        let ins = Graph::from_triples(
            (0..42).map(|i| t(&format!("s{i}"), preds[i % 3], iri(&format!("o{}", i % 5)))),
        );
        let rs = scoped.apply(&ins, &Graph::new()).unwrap();
        let rp = pooled.apply(&ins, &Graph::new()).unwrap();
        assert_eq!((rs.inserted, rs.deleted), (rp.inserted, rp.deleted));
        assert_eq!(norm(&scoped.materialize()), norm(&pooled.materialize()));
        assert_eq!(scoped.stats().scoped_batches, 1);
        assert_eq!(pooled.stats().pooled_batches, 1);
    }
}
