//! The sharded hybrid store: the write-parallel engine over the
//! [`TripleSource`] seam.
//!
//! [`HybridStore`](crate::HybridStore) is a single-threaded prototype: one
//! overlay absorbs every write, and compaction rebuilds the whole baseline
//! inline in `apply`, so one hot predicate stalls every ingest.
//! [`ShardedHybridStore`] partitions the triple space **by predicate**
//! (`rdf:type` triples by concept) into N shards:
//!
//! * **One global identifier space.** The store owns the dictionaries:
//!   instances get dense, append-only global ids; properties and concepts
//!   carry the LiteMat codes of one global, build-time encoding (new terms
//!   go to shared overflow dictionaries above
//!   [`OVERFLOW_BASE`](crate::OVERFLOW_BASE)); overlay literals live in a
//!   shared content-interned table. Because every shard stores triples in
//!   this shared id space, the scatter/gather view needs **no id
//!   translation** — a subject id bound from one shard joins directly
//!   against pairs gathered from another. Baseline literal indices are
//!   shard-local and disambiguated by a fixed per-shard block of size
//!   [`LIT_SHARD_STRIDE`]; literal joins are content-based per the
//!   `TripleSource` contract, so distinct ids for equal content are sound.
//! * **Parallel ingest.** `apply` first encodes and routes the batch
//!   (cheap hashmap work), then fans the per-shard operation lists out to
//!   `std::thread::scope` workers: baseline-membership probes and
//!   red-black-tree overlay insertion — the expensive part — run
//!   concurrently, one worker per shard, no locks (each worker owns its
//!   shard's delta; the shared tables are frozen for the phase).
//! * **Scatter/gather queries.** A predicate-bound pattern routes to
//!   exactly one shard. Unbound-predicate scans and LiteMat
//!   property-interval patterns fan out to every shard whose predicates
//!   intersect the interval and k-way-merge the subject-sorted runs, so
//!   the merge-join contract (`scan_predicate` subject-sorted, `subjects*`
//!   ascending/deduplicated) holds across shards.
//! * **Off-hot-path compaction.** Per-shard compaction is split into a
//!   pure rebuild against a snapshot ([`ShardBase`] is immutable and
//!   `Arc`-shared; the worker folds overlay into fresh layers **in the
//!   same id space** — no re-encoding) and an atomic
//!   [`swap`](ShardedHybridStore::flush_compactions): the live overlay is
//!   rebased onto the new layers by a pure visibility rule, so writes that
//!   raced the rebuild survive. With background compaction enabled,
//!   `apply` tail latency is bounded by routing + overlay insertion +
//!   swap (each O(overlay)), never by layer construction.
//!
//! The price of never re-encoding: properties and concepts first seen in
//! the stream keep their overflow singleton intervals even after
//! compaction (the single `HybridStore` folds them into the hierarchy on
//! rebuild). The ROADMAP's "overflow-term reasoning" item — incremental
//! LiteMat re-encoding — would close that window for both stores.

use crate::delta::{DeltaObj, DeltaState, DeltaStore};
use crate::error::StreamError;
use crate::hybrid::{transition, CompactionPolicy, IngestReport, OverflowDict, OVERFLOW_BASE};
use se_core::builder::{instance_key, key_to_term_arc};
use se_core::datatype::DatatypeLayer;
use se_core::layer::TripleLayer;
use se_core::typestore::RdfTypeStore;
use se_core::{augment_ontology, BuildError, TripleSource, Value};
use se_litemat::{Dictionaries, IdInterval};
use se_ontology::Ontology;
use se_rdf::{Graph, Literal, Term, Triple};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Size of the baseline-literal id block reserved per shard. Global
/// baseline literal id = `shard * LIT_SHARD_STRIDE + local`; all blocks
/// stay far below [`OVERFLOW_BASE`](crate::OVERFLOW_BASE) (shared overlay
/// literals) for any realistic shard count.
pub const LIT_SHARD_STRIDE: u64 = 1 << 44;

/// Hard ceiling on the shard count (keeps every literal block below
/// `OVERFLOW_BASE` with room to spare).
pub const MAX_SHARDS: usize = 1 << 16;

/// Minimum routed operations in a batch before ingest fans out to scoped
/// worker threads; smaller batches apply inline (a thread spawn costs
/// ~100µs — more than the transition work of a small batch).
pub const PARALLEL_MIN_OPS: usize = 1024;

/// A custom routing function: `(iri, n_shards) -> shard`.
pub type RoutingFn = Arc<dyn Fn(&str, usize) -> usize + Send + Sync>;

/// How predicates (and `rdf:type` concepts) are assigned to shards.
#[derive(Clone)]
pub enum ShardPolicy {
    /// Spread terms round-robin in first-seen dictionary order (balanced
    /// by construction; the default).
    RoundRobin,
    /// FNV-1a hash of the IRI modulo the shard count (stable across
    /// stores built from different graphs).
    HashIri,
    /// Custom policy: `shard = f(iri, n_shards) % n_shards`. The hook for
    /// workload-aware layouts, e.g. the per-station-group routing of
    /// `se-datagen`'s water scenario.
    ByIri(RoutingFn),
}

impl std::fmt::Debug for ShardPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardPolicy::RoundRobin => f.write_str("RoundRobin"),
            ShardPolicy::HashIri => f.write_str("HashIri"),
            ShardPolicy::ByIri(_) => f.write_str("ByIri(..)"),
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The routing table: property id → shard and concept id → shard, filled
/// from the global dictionaries at build time and extended as overflow
/// terms are interned. Ids are stable for the lifetime of the store (no
/// re-encoding), so a route never changes once assigned.
#[derive(Debug, Clone)]
struct RoutingTable {
    n: usize,
    policy: ShardPolicy,
    /// Round-robin cursor (only advanced under `ShardPolicy::RoundRobin`).
    next: usize,
    props: HashMap<u64, usize>,
    concepts: HashMap<u64, usize>,
}

impl RoutingTable {
    fn new(n: usize, policy: ShardPolicy) -> Self {
        Self {
            n,
            policy,
            next: 0,
            props: HashMap::new(),
            concepts: HashMap::new(),
        }
    }

    fn pick(&mut self, iri: &str) -> usize {
        match &self.policy {
            ShardPolicy::RoundRobin => {
                let s = self.next % self.n;
                self.next += 1;
                s
            }
            ShardPolicy::HashIri => (fnv1a(iri) % self.n as u64) as usize,
            ShardPolicy::ByIri(f) => f(iri, self.n) % self.n,
        }
    }

    fn assign_prop(&mut self, id: u64, iri: &str) -> usize {
        if let Some(&s) = self.props.get(&id) {
            return s;
        }
        let s = self.pick(iri);
        self.props.insert(id, s);
        s
    }

    fn assign_concept(&mut self, id: u64, iri: &str) -> usize {
        if let Some(&s) = self.concepts.get(&id) {
            return s;
        }
        let s = self.pick(iri);
        self.concepts.insert(id, s);
        s
    }

    fn prop(&self, id: u64) -> usize {
        self.props
            .get(&id)
            .copied()
            .unwrap_or((id % self.n as u64) as usize)
    }

    fn concept(&self, id: u64) -> usize {
        self.concepts
            .get(&id)
            .copied()
            .unwrap_or((id % self.n as u64) as usize)
    }
}

/// Shared content-interned literal table for overlay literals; ids are
/// global across shards and surface as `Value::Literal(OVERFLOW_BASE + id)`.
#[derive(Debug, Clone, Default)]
struct LiteralTable {
    literals: Vec<Literal>,
    ids: HashMap<Literal, u64>,
}

impl LiteralTable {
    fn intern(&mut self, lit: &Literal) -> u64 {
        if let Some(&id) = self.ids.get(lit) {
            return id;
        }
        let id = self.literals.len() as u64;
        self.literals.push(lit.clone());
        self.ids.insert(lit.clone(), id);
        id
    }

    fn id(&self, lit: &Literal) -> Option<u64> {
        self.ids.get(lit).copied()
    }

    fn get(&self, id: u64) -> Option<&Literal> {
        self.literals.get(id as usize)
    }
}

/// The literal content one shard rebuild needs: exactly the ids its
/// overlay references (baseline literal content lives in the layers).
/// Built in O(overlay) on the hot path — never a clone of the full shared
/// table — and shipped to the rebuild worker.
#[derive(Debug, Clone, Default)]
struct LitSnapshot {
    by_id: HashMap<u64, Literal>,
    by_content: HashMap<Literal, u64>,
}

impl LitSnapshot {
    fn for_delta(delta: &DeltaStore, table: &LiteralTable) -> Self {
        let mut snap = Self::default();
        for (_, _, o, _) in delta.iter() {
            if let DeltaObj::Lit(l) = o {
                if !snap.by_id.contains_key(&l) {
                    let lit = table.get(l).expect("interned literal").clone();
                    snap.by_content.insert(lit.clone(), l);
                    snap.by_id.insert(l, lit);
                }
            }
        }
        snap
    }

    fn id(&self, lit: &Literal) -> Option<u64> {
        self.by_content.get(lit).copied()
    }

    fn get(&self, id: u64) -> Option<&Literal> {
        self.by_id.get(&id)
    }
}

/// The immutable baseline of one shard: succinct layers over the shard's
/// predicate/concept partition, in the **global** id space. `Arc`-shared
/// so a background compaction snapshots it for free.
#[derive(Debug)]
struct ShardBase {
    objects: TripleLayer,
    datatypes: DatatypeLayer,
    types: RdfTypeStore,
}

impl ShardBase {
    fn len(&self) -> usize {
        self.objects.len() + self.datatypes.len() + self.types.len()
    }
}

/// Sorted, deduplicated per-shard triple lists awaiting layer construction.
#[derive(Debug, Default)]
struct ShardInput {
    objects: Vec<(u64, u64, u64)>,
    datatypes: Vec<(u64, u64, Literal)>,
    types: Vec<(u64, u64)>,
}

impl ShardInput {
    fn build(mut self) -> ShardBase {
        self.objects.sort_unstable();
        self.objects.dedup();
        self.datatypes
            .sort_unstable_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
        self.datatypes.dedup();
        self.types.sort_unstable();
        self.types.dedup();
        let mut types = RdfTypeStore::new();
        for &(s, c) in &self.types {
            types.insert(s, c);
        }
        ShardBase {
            objects: TripleLayer::build(&self.objects),
            datatypes: DatatypeLayer::build(&self.datatypes),
            types,
        }
    }
}

/// A background rebuild in flight: the worker folds a snapshot of the
/// shard into fresh layers and hands the snapshot overlay back (the swap
/// rebases the live overlay against it without probing any layer) along
/// with its wall time.
#[derive(Debug)]
struct PendingRebuild {
    handle: JoinHandle<(ShardBase, DeltaStore, Duration)>,
}

/// One predicate shard: immutable layers plus the mutable overlay.
#[derive(Debug)]
struct Shard {
    base: Arc<ShardBase>,
    delta: DeltaStore,
    pending: Option<PendingRebuild>,
}

/// Lifetime counters of a [`ShardedHybridStore`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Shard compactions performed (inline + background).
    pub compactions: usize,
    /// Of those, how many ran on a background worker.
    pub background_compactions: usize,
    /// Total triples inserted (effective).
    pub total_inserted: usize,
    /// Total triples deleted (effective).
    pub total_deleted: usize,
    /// Total hot-path time: encode + route + parallel overlay insertion.
    pub total_ingest: Duration,
    /// Total layer-rebuild wall time (worker time for background runs —
    /// off the hot path).
    pub total_compaction: Duration,
    /// Total hot-path time spent atomically swapping rebuilt layers in
    /// and rebasing the live overlay.
    pub total_swap: Duration,
}

/// Encoded object position of one routed operation.
#[derive(Debug, Clone, Copy)]
enum OpObj {
    Inst(u64),
    /// Shared-table literal id.
    Lit(u64),
}

#[derive(Debug, Clone, Copy)]
struct Op {
    p: u64,
    s: u64,
    o: OpObj,
}

#[derive(Debug, Clone, Copy)]
struct TypeOp {
    s: u64,
    c: u64,
}

/// The routed operation lists of one shard for one batch.
#[derive(Debug, Default)]
struct ShardOps {
    del: Vec<Op>,
    ins: Vec<Op>,
    type_del: Vec<TypeOp>,
    type_ins: Vec<TypeOp>,
}

impl ShardOps {
    fn len(&self) -> usize {
        self.del.len() + self.ins.len() + self.type_del.len() + self.type_ins.len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-worker ingest outcome: `(inserted, deleted, noops)`.
type OpCounts = (usize, usize, usize);

/// A predicate-sharded hybrid store: N independent baseline+overlay
/// shards in one global id space, parallel batch ingestion, scatter/gather
/// [`TripleSource`] view, and per-shard compaction that can run on
/// background workers. See the module docs for the architecture.
#[derive(Debug)]
pub struct ShardedHybridStore {
    dicts: Dictionaries,
    ontology: Ontology,
    shards: Vec<Shard>,
    routes: RoutingTable,
    ovf_properties: OverflowDict,
    ovf_concepts: OverflowDict,
    literals: LiteralTable,
    policy: CompactionPolicy,
    background: bool,
    stats: ShardedStats,
}

impl ShardedHybridStore {
    /// Builds the store from an ontology and an initial graph, partitioned
    /// into `n_shards` with the default [`ShardPolicy::RoundRobin`].
    pub fn build(ontology: &Ontology, graph: &Graph, n_shards: usize) -> Result<Self, StreamError> {
        Self::build_with_policy(ontology, graph, n_shards, ShardPolicy::RoundRobin)
    }

    /// Builds with an explicit routing policy. Shard bases are constructed
    /// in parallel, one worker per shard.
    pub fn build_with_policy(
        ontology: &Ontology,
        graph: &Graph,
        n_shards: usize,
        policy: ShardPolicy,
    ) -> Result<Self, StreamError> {
        assert!(
            (1..=MAX_SHARDS).contains(&n_shards),
            "shard count must be in 1..={MAX_SHARDS}"
        );
        // One *global* augmentation + LiteMat encoding: every shard shares
        // the same property/concept codes and the same instance id space.
        let (augmented, _, _) = augment_ontology(ontology, graph)?;
        let mut dicts = augmented.encode().map_err(BuildError::from)?;
        let mut routes = RoutingTable::new(n_shards, policy);
        for (iri, enc) in dicts.properties.encoding().iter() {
            routes.assign_prop(enc.id, iri);
        }
        for (iri, enc) in dicts.concepts.encoding().iter() {
            routes.assign_concept(enc.id, iri);
        }

        // Encode + route every triple to its shard's input list.
        let mut parts: Vec<ShardInput> = (0..n_shards).map(|_| ShardInput::default()).collect();
        for t in graph {
            let p_iri = t
                .predicate
                .as_iri()
                .ok_or_else(|| StreamError::Malformed(format!("non-IRI predicate: {t}")))?;
            let s_key = instance_key(&t.subject)
                .ok_or_else(|| StreamError::Malformed(format!("literal subject: {t}")))?;
            let s = dicts.instances.get_or_insert(&s_key);
            dicts.instances.record_occurrence(s);
            if t.is_type_triple() {
                let c_iri = t.object.as_iri().ok_or_else(|| {
                    StreamError::Malformed(format!("rdf:type with non-IRI object: {t}"))
                })?;
                let c = dicts
                    .concepts
                    .id(c_iri)
                    .expect("augmentation covers all data classes");
                dicts.concepts.record_occurrence(c);
                parts[routes.concept(c)].types.push((s, c));
            } else {
                let p = dicts
                    .properties
                    .id(p_iri)
                    .expect("augmentation covers all data properties");
                dicts.properties.record_occurrence(p);
                let shard = routes.prop(p);
                match &t.object {
                    Term::Literal(lit) => parts[shard].datatypes.push((p, s, lit.clone())),
                    other => {
                        let o_key = instance_key(other).expect("resource object");
                        let o = dicts.instances.get_or_insert(&o_key);
                        dicts.instances.record_occurrence(o);
                        parts[shard].objects.push((p, s, o));
                    }
                }
            }
        }

        // Freeze the per-shard layers, one worker per shard.
        let bases: Vec<ShardBase> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|part| scope.spawn(move || part.build()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build worker panicked"))
                .collect()
        });

        Ok(Self {
            dicts,
            ontology: ontology.clone(),
            shards: bases
                .into_iter()
                .map(|base| Shard {
                    base: Arc::new(base),
                    delta: DeltaStore::new(),
                    pending: None,
                })
                .collect(),
            routes,
            ovf_properties: OverflowDict::default(),
            ovf_concepts: OverflowDict::default(),
            literals: LiteralTable::default(),
            policy: CompactionPolicy::default(),
            background: true,
            stats: ShardedStats::default(),
        })
    }

    /// Replaces the per-shard compaction policy.
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Chooses where compactions run: `true` (default) rebuilds on a
    /// background worker and swaps atomically on a later `apply`; `false`
    /// rebuilds inline (the old `HybridStore` behaviour, per shard).
    pub fn with_background_compaction(mut self, background: bool) -> Self {
        self.background = background;
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ShardedStats {
        &self.stats
    }

    /// The compaction policy in force (per shard).
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// The ontology the store was built against.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Total overlay entries across all shards.
    pub fn overlay_len(&self) -> usize {
        self.shards.iter().map(|s| s.delta.overlay_len()).sum()
    }

    /// Overlay entries of one shard.
    pub fn shard_overlay_len(&self, shard: usize) -> usize {
        self.shards[shard].delta.overlay_len()
    }

    /// Number of background rebuilds currently in flight.
    pub fn pending_compactions(&self) -> usize {
        self.shards.iter().filter(|s| s.pending.is_some()).count()
    }

    // ------------------------------------------------------------- ingestion

    /// Applies one batch: deletions first, then insertions. The batch is
    /// encoded and routed on the calling thread, then fanned out to one
    /// scoped worker per shard with work. Shards whose overlay crossed the
    /// policy threshold afterwards are compacted — on a background worker
    /// when background compaction is on (finished rebuilds from earlier
    /// batches are swapped in at the start of the call), inline otherwise.
    pub fn apply(&mut self, inserts: &Graph, deletes: &Graph) -> Result<IngestReport, StreamError> {
        let mut report = IngestReport::default();
        let (swap_time, swapped) = self.finish_ready_compactions();
        report.compacted = swapped > 0;

        let t0 = Instant::now();
        let n = self.shards.len();
        let mut ops: Vec<ShardOps> = (0..n).map(|_| ShardOps::default()).collect();
        for t in deletes {
            if !self.route_op(t, false, &mut ops)? {
                report.noops += 1;
            }
        }
        for t in inserts {
            if !self.route_op(t, true, &mut ops)? {
                report.noops += 1;
            }
        }

        let counts = self.run_ops(&ops);
        for (ins, del, noop) in counts {
            report.inserted += ins;
            report.deleted += del;
            report.noops += noop;
        }
        report.ingest = t0.elapsed();
        self.stats.total_inserted += report.inserted;
        self.stats.total_deleted += report.deleted;
        self.stats.total_ingest += report.ingest;

        let mut compaction_time = swap_time;
        for i in 0..n {
            let shard = &self.shards[i];
            if shard.delta.overlay_len() >= self.policy.max_overlay && shard.pending.is_none() {
                if self.background {
                    self.start_shard_compaction(i);
                } else {
                    let t1 = Instant::now();
                    self.compact_shard(i);
                    compaction_time += t1.elapsed();
                    report.compacted = true;
                }
            }
        }
        report.compaction = compaction_time;
        self.gc_literals();
        Ok(report)
    }

    /// Drops the shared overlay-literal table when nothing can reference
    /// it: table ids live only in overlay entries (layers store literal
    /// *content*) and in snapshots owned by in-flight rebuilds, so once
    /// every shard's overlay is empty and no rebuild is pending the
    /// table is garbage. Keeps long streams from accumulating every
    /// distinct literal ever ingested. (Steady streams with always-dirty
    /// overlays still grow the table — see the ROADMAP item on literal
    /// reference counting.)
    fn gc_literals(&mut self) {
        let quiescent = self
            .shards
            .iter()
            .all(|s| s.delta.is_empty() && s.pending.is_none());
        if quiescent && !self.literals.literals.is_empty() {
            self.literals = LiteralTable::default();
        }
    }

    /// Encodes one triple and routes it to its shard's operation list.
    /// Returns `false` for deletes that are provably no-ops (an involved
    /// term is unknown everywhere, so the triple cannot be visible) —
    /// mirroring `HybridStore`'s no-allocation discipline.
    fn route_op(
        &mut self,
        t: &Triple,
        insert: bool,
        ops: &mut [ShardOps],
    ) -> Result<bool, StreamError> {
        let Some(p_iri) = t.predicate.as_iri() else {
            return Err(StreamError::Malformed(format!("non-IRI predicate: {t}")));
        };
        let Some(s_key) = instance_key(&t.subject) else {
            return Err(StreamError::Malformed(format!("literal subject: {t}")));
        };

        if t.is_type_triple() {
            let Some(c_iri) = t.object.as_iri() else {
                return Err(StreamError::Malformed(format!(
                    "rdf:type with non-IRI object: {t}"
                )));
            };
            let c_resolved = self
                .dicts
                .concepts
                .id(c_iri)
                .or_else(|| self.ovf_concepts.id(c_iri));
            let s_resolved = self.dicts.instances.id(&s_key);
            let (s, c) = if insert {
                let s = s_resolved.unwrap_or_else(|| self.dicts.instances.get_or_insert(&s_key));
                let c = c_resolved.unwrap_or_else(|| {
                    let id = self.ovf_concepts.get_or_insert(c_iri);
                    self.routes.assign_concept(id, c_iri);
                    id
                });
                (s, c)
            } else {
                match (s_resolved, c_resolved) {
                    (Some(s), Some(c)) => (s, c),
                    _ => return Ok(false),
                }
            };
            let shard = self.routes.concept(c);
            let op = TypeOp { s, c };
            if insert {
                ops[shard].type_ins.push(op);
            } else {
                ops[shard].type_del.push(op);
            }
            return Ok(true);
        }

        let p_resolved = self
            .dicts
            .properties
            .id(p_iri)
            .or_else(|| self.ovf_properties.id(p_iri));
        let s_resolved = self.dicts.instances.id(&s_key);
        let (p, s) = if insert {
            let p = p_resolved.unwrap_or_else(|| {
                let id = self.ovf_properties.get_or_insert(p_iri);
                self.routes.assign_prop(id, p_iri);
                id
            });
            let s = s_resolved.unwrap_or_else(|| self.dicts.instances.get_or_insert(&s_key));
            (p, s)
        } else {
            match (p_resolved, s_resolved) {
                (Some(p), Some(s)) => (p, s),
                _ => return Ok(false),
            }
        };
        let shard = self.routes.prop(p);
        let o = match &t.object {
            Term::Literal(lit) => {
                if insert {
                    OpObj::Lit(self.literals.intern(lit))
                } else {
                    match self.literals.id(lit) {
                        Some(l) => OpObj::Lit(l),
                        // Unknown to the overlay table — deletable only if
                        // the shard's baseline holds it; intern a tombstone
                        // key just for that case.
                        None => {
                            let base_has = self.shards[shard]
                                .base
                                .datatypes
                                .subjects_by_literal(p, lit)
                                .contains(&s);
                            if !base_has {
                                return Ok(false);
                            }
                            OpObj::Lit(self.literals.intern(lit))
                        }
                    }
                }
            }
            other => {
                let o_key = instance_key(other).expect("non-literal object is a resource");
                match self.dicts.instances.id(&o_key) {
                    Some(o) => OpObj::Inst(o),
                    None if insert => OpObj::Inst(self.dicts.instances.get_or_insert(&o_key)),
                    None => return Ok(false),
                }
            }
        };
        let op = Op { p, s, o };
        if insert {
            ops[shard].ins.push(op);
        } else {
            ops[shard].del.push(op);
        }
        Ok(true)
    }

    /// Runs the routed operation lists — one scoped worker per shard with
    /// work. The fan-out is adaptive: batches below
    /// [`PARALLEL_MIN_OPS`], single-shard batches, and single-core hosts
    /// run inline (scoped-thread spawns would cost more than the
    /// transition work they parallelize).
    fn run_ops(&mut self, ops: &[ShardOps]) -> Vec<OpCounts> {
        let busy = ops.iter().filter(|o| !o.is_empty()).count();
        let total: usize = ops.iter().map(ShardOps::len).sum();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let literals = &self.literals;
        if busy <= 1 || cores <= 1 || total < PARALLEL_MIN_OPS {
            return self
                .shards
                .iter_mut()
                .zip(ops)
                .map(|(shard, ops)| run_shard_ops(&shard.base, &mut shard.delta, literals, ops))
                .collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(ops)
                .map(|(shard, ops)| {
                    if ops.is_empty() {
                        None
                    } else {
                        let Shard { base, delta, .. } = shard;
                        let base = Arc::clone(base);
                        Some(scope.spawn(move || run_shard_ops(&base, delta, literals, ops)))
                    }
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h {
                    Some(h) => h.join().expect("ingest worker panicked"),
                    None => (0, 0, 0),
                })
                .collect()
        })
    }

    // ------------------------------------------------------------ compaction

    /// Compacts one shard inline: fold baseline + overlay into fresh
    /// layers (same id space — no re-encoding) and swap them in.
    pub fn compact_shard(&mut self, shard: usize) {
        // A background rebuild may be in flight against an older snapshot;
        // its result is superseded by this inline fold — discard it, or a
        // later poll would swap stale layers over the fresh ones and drop
        // every write that landed in between.
        if let Some(stale) = self.shards[shard].pending.take() {
            drop(stale.handle);
        }
        let t0 = Instant::now();
        let built = {
            let s = &self.shards[shard];
            let lits = LitSnapshot::for_delta(&s.delta, &self.literals);
            rebuild_shard(&s.base, &s.delta, &lits)
        };
        self.stats.total_compaction += t0.elapsed();
        // Inline: the snapshot IS the live overlay, so the rebase is a
        // plain clear.
        self.swap_shard_base(shard, built, None);
    }

    /// Spawns a background rebuild for one shard against an O(1) snapshot
    /// of its layers plus a clone of its overlay (both O(overlay),
    /// bounded by the compaction threshold — never O(store)).
    fn start_shard_compaction(&mut self, shard: usize) {
        let base = Arc::clone(&self.shards[shard].base);
        let delta = self.shards[shard].delta.clone();
        let lits = LitSnapshot::for_delta(&delta, &self.literals);
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            let built = rebuild_shard(&base, &delta, &lits);
            (built, delta, t0.elapsed())
        });
        self.shards[shard].pending = Some(PendingRebuild { handle });
    }

    /// Swaps finished background rebuilds in without blocking on the ones
    /// still running. Returns `(hot-path swap time, shards swapped)`.
    fn finish_ready_compactions(&mut self) -> (Duration, usize) {
        let mut spent = Duration::ZERO;
        let mut swapped = 0;
        for i in 0..self.shards.len() {
            let ready = self.shards[i]
                .pending
                .as_ref()
                .is_some_and(|p| p.handle.is_finished());
            if ready {
                let pending = self.shards[i].pending.take().expect("checked above");
                let (built, snapshot, build_time) =
                    pending.handle.join().expect("compaction worker panicked");
                self.stats.total_compaction += build_time;
                self.stats.background_compactions += 1;
                let t0 = Instant::now();
                self.swap_shard_base(i, built, Some(&snapshot));
                spent += t0.elapsed();
                swapped += 1;
            }
        }
        (spent, swapped)
    }

    /// Blocks until every in-flight background rebuild has been swapped
    /// in. Returns the number of shards swapped.
    pub fn flush_compactions(&mut self) -> usize {
        let mut swapped = 0;
        for i in 0..self.shards.len() {
            if let Some(pending) = self.shards[i].pending.take() {
                let (built, snapshot, build_time) =
                    pending.handle.join().expect("compaction worker panicked");
                self.stats.total_compaction += build_time;
                self.stats.background_compactions += 1;
                self.swap_shard_base(i, built, Some(&snapshot));
                swapped += 1;
            }
        }
        self.gc_literals();
        swapped
    }

    /// Installs rebuilt layers and rebases the live overlay onto them —
    /// atomically from the query perspective, and **without probing a
    /// single layer**:
    ///
    /// * an entry whose state is unchanged since the snapshot is covered
    ///   by the rebuild and collapses away;
    /// * for an entry that changed (a write raced the worker), the new
    ///   layers' membership is *derivable*: if the snapshot held the
    ///   triple, membership is the snapshot state's visibility; if not,
    ///   it is the old-baseline membership, which every [`DeltaState`]
    ///   encodes by construction (`Added`/`Cancelled` ⇔ absent,
    ///   `Deleted`/`Restored` ⇔ present). The entry then survives as
    ///   `Added` iff it asserts visibility the new layers lack, `Deleted`
    ///   iff it asserts invisibility they contradict.
    ///
    /// `snapshot: None` means the snapshot is the live overlay itself
    /// (inline compaction): everything collapses. Ids never change, so
    /// the whole rebase is O(overlay · log overlay) id-space work.
    fn swap_shard_base(
        &mut self,
        shard: usize,
        new_base: ShardBase,
        snapshot: Option<&DeltaStore>,
    ) {
        let t0 = Instant::now();
        let s = &mut self.shards[shard];
        let old_delta = std::mem::take(&mut s.delta);
        s.base = Arc::new(new_base);
        if let Some(snap) = snapshot {
            for (p, subj, o, st) in old_delta.iter() {
                let new_has = match snap.state(p, subj, o) {
                    Some(st0) => st0.present(),
                    None => matches!(st, DeltaState::Deleted | DeltaState::Restored),
                };
                match (st.present(), new_has) {
                    (true, false) => s.delta.set(p, subj, o, DeltaState::Added),
                    (false, true) => s.delta.set(p, subj, o, DeltaState::Deleted),
                    _ => {}
                }
            }
            for (subj, c, st) in old_delta.type_iter() {
                let new_has = match snap.type_state(subj, c) {
                    Some(st0) => st0.present(),
                    None => matches!(st, DeltaState::Deleted | DeltaState::Restored),
                };
                match (st.present(), new_has) {
                    (true, false) => s.delta.set_type(subj, c, DeltaState::Added),
                    (false, true) => s.delta.set_type(subj, c, DeltaState::Deleted),
                    _ => {}
                }
            }
        }
        self.stats.compactions += 1;
        self.stats.total_swap += t0.elapsed();
    }

    // -------------------------------------------------------- decode helpers

    fn literal_content(&self, idx: u64) -> Option<&Literal> {
        if idx >= OVERFLOW_BASE {
            self.literals.get(idx - OVERFLOW_BASE)
        } else {
            let shard = (idx / LIT_SHARD_STRIDE) as usize;
            self.shards
                .get(shard)?
                .base
                .datatypes
                .literal(idx % LIT_SHARD_STRIDE)
        }
    }

    /// Delta key of a query `Value` object, if expressible.
    fn delta_key_of(&self, o: &Value) -> Option<DeltaObj> {
        match o {
            Value::Instance(id) => Some(DeltaObj::Inst(*id)),
            Value::Literal(idx) => {
                let lit = self.literal_content(*idx)?;
                self.literals.id(lit).map(DeltaObj::Lit)
            }
            _ => None,
        }
    }

    fn tombstoned(&self, shard: usize, p: u64, s: u64, v: &Value) -> bool {
        match self.delta_key_of(v) {
            Some(key) => self.shards[shard].delta.state(p, s, key) == Some(DeltaState::Deleted),
            None => false,
        }
    }

    fn obj_to_value(o: DeltaObj) -> Value {
        match o {
            DeltaObj::Inst(id) => Value::Instance(id),
            DeltaObj::Lit(l) => Value::Literal(OVERFLOW_BASE + l),
        }
    }

    /// Subject-sorted merge of a tombstone-filtered baseline run with the
    /// overlay's additions for one predicate of one shard.
    fn merge_pairs(
        &self,
        shard: usize,
        base: Vec<(u64, Value)>,
        added: Vec<(u64, Value)>,
        p: u64,
    ) -> Vec<(u64, Value)> {
        let mut out = Vec::with_capacity(base.len() + added.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() || j < added.len() {
            let take_base = match (base.get(i), added.get(j)) {
                (Some(b), Some(a)) => b.0 <= a.0,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_base {
                let (s, v) = base[i];
                i += 1;
                if !self.tombstoned(shard, p, s, &v) {
                    out.push((s, v));
                }
            } else {
                out.push(added[j]);
                j += 1;
            }
        }
        out
    }

    /// Distinct predicates (baseline or overlay, any shard) in `[lo, hi)`,
    /// ascending — the fan-out set of an interval pattern.
    fn merged_predicates(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut preds = BTreeSet::new();
        for shard in &self.shards {
            for idx in shard.base.objects.predicate_range(lo, hi) {
                preds.insert(shard.base.objects.predicate_at(idx));
            }
            for idx in shard.base.datatypes.predicate_range(lo, hi) {
                preds.insert(shard.base.datatypes.predicate_at(idx));
            }
            preds.extend(shard.delta.predicates_in(lo, hi));
        }
        preds.into_iter().collect()
    }

    /// Materializes the full merged view as a term-space graph (baseline
    /// minus tombstones plus overlay insertions, across all shards).
    pub fn materialize(&self) -> Graph {
        let decode_inst = |id: u64| {
            key_to_term_arc(
                self.dicts
                    .instances
                    .term_arc(id)
                    .expect("dictionary-complete instance id"),
            )
        };
        let prop_term = |id: u64| -> Term {
            let iri = if id >= OVERFLOW_BASE {
                self.ovf_properties.term(id)
            } else {
                self.dicts.properties.term_arc(id)
            };
            Term::Iri(iri.expect("dictionary-complete property id"))
        };
        let concept_term = |id: u64| -> Term {
            let iri = if id >= OVERFLOW_BASE {
                self.ovf_concepts.term(id)
            } else {
                self.dicts.concepts.term_arc(id)
            };
            Term::Iri(iri.expect("dictionary-complete concept id"))
        };
        let rdf_type = Term::iri(se_rdf::vocab::rdf::TYPE);
        let mut g = Graph::new();
        for shard in &self.shards {
            for (p, s, o) in shard.base.objects.iter() {
                if shard.delta.state(p, s, DeltaObj::Inst(o)) != Some(DeltaState::Deleted) {
                    g.insert(Triple::new(decode_inst(s), prop_term(p), decode_inst(o)));
                }
            }
            for (p, s, li) in shard.base.datatypes.iter() {
                let lit = shard.base.datatypes.literal(li).expect("in-range literal");
                let dead = self
                    .literals
                    .id(lit)
                    .map(|l| shard.delta.state(p, s, DeltaObj::Lit(l)))
                    == Some(Some(DeltaState::Deleted));
                if !dead {
                    g.insert(Triple::new(
                        decode_inst(s),
                        prop_term(p),
                        Term::Literal(lit.clone()),
                    ));
                }
            }
            for (s, c) in shard.base.types.iter() {
                if shard.delta.type_state(s, c) != Some(DeltaState::Deleted) {
                    g.insert(Triple::new(
                        decode_inst(s),
                        rdf_type.clone(),
                        concept_term(c),
                    ));
                }
            }
            for (p, s, o, st) in shard.delta.iter() {
                if st == DeltaState::Added {
                    let object = match o {
                        DeltaObj::Inst(id) => decode_inst(id),
                        DeltaObj::Lit(l) => {
                            Term::Literal(self.literals.get(l).expect("interned").clone())
                        }
                    };
                    g.insert(Triple::new(decode_inst(s), prop_term(p), object));
                }
            }
            for (s, c, st) in shard.delta.type_iter() {
                if st == DeltaState::Added {
                    g.insert(Triple::new(
                        decode_inst(s),
                        rdf_type.clone(),
                        concept_term(c),
                    ));
                }
            }
        }
        g
    }
}

/// Applies one shard's routed operations against its baseline + overlay.
/// Runs on a scoped worker; everything it touches is either owned by the
/// shard (`delta`) or frozen for the phase (`base`, `literals`).
fn run_shard_ops(
    base: &ShardBase,
    delta: &mut DeltaStore,
    literals: &LiteralTable,
    ops: &ShardOps,
) -> OpCounts {
    let (mut ins, mut del, mut noop) = (0, 0, 0);
    let mut bump = |hit: bool, insert: bool| {
        if hit && insert {
            ins += 1;
        } else if hit {
            del += 1;
        } else {
            noop += 1;
        }
    };
    for op in &ops.type_del {
        bump(apply_type_op(base, delta, op, false), false);
    }
    for op in &ops.del {
        bump(apply_op(base, delta, literals, op, false), false);
    }
    for op in &ops.type_ins {
        bump(apply_type_op(base, delta, op, true), true);
    }
    for op in &ops.ins {
        bump(apply_op(base, delta, literals, op, true), true);
    }
    (ins, del, noop)
}

fn apply_op(
    base: &ShardBase,
    delta: &mut DeltaStore,
    literals: &LiteralTable,
    op: &Op,
    insert: bool,
) -> bool {
    let (key, base_has) = match op.o {
        OpObj::Inst(o) => (DeltaObj::Inst(o), base.objects.contains(op.p, op.s, o)),
        OpObj::Lit(l) => {
            let lit = literals.get(l).expect("routed ops carry interned literals");
            (
                DeltaObj::Lit(l),
                base.datatypes
                    .subjects_by_literal(op.p, lit)
                    .contains(&op.s),
            )
        }
    };
    match transition(delta.state(op.p, op.s, key), base_has, insert) {
        Some(st) => {
            delta.set(op.p, op.s, key, st);
            true
        }
        None => false,
    }
}

fn apply_type_op(base: &ShardBase, delta: &mut DeltaStore, op: &TypeOp, insert: bool) -> bool {
    let base_has = base.types.has_type(op.s, op.c);
    match transition(delta.type_state(op.s, op.c), base_has, insert) {
        Some(st) => {
            delta.set_type(op.s, op.c, st);
            true
        }
        None => false,
    }
}

/// Folds one shard's overlay into fresh layers — pure, id-space-stable,
/// safe to run on a worker thread against a snapshot.
fn rebuild_shard(base: &ShardBase, delta: &DeltaStore, literals: &LitSnapshot) -> ShardBase {
    let mut input = ShardInput::default();
    for (p, s, o) in base.objects.iter() {
        if delta.state(p, s, DeltaObj::Inst(o)) != Some(DeltaState::Deleted) {
            input.objects.push((p, s, o));
        }
    }
    for (p, s, li) in base.datatypes.iter() {
        let lit = base.datatypes.literal(li).expect("in-range literal");
        let dead = literals
            .id(lit)
            .map(|l| delta.state(p, s, DeltaObj::Lit(l)))
            == Some(Some(DeltaState::Deleted));
        if !dead {
            input.datatypes.push((p, s, lit.clone()));
        }
    }
    for (s, c) in base.types.iter() {
        if delta.type_state(s, c) != Some(DeltaState::Deleted) {
            input.types.push((s, c));
        }
    }
    for (p, s, o, st) in delta.iter() {
        if st == DeltaState::Added {
            match o {
                DeltaObj::Inst(oid) => input.objects.push((p, s, oid)),
                DeltaObj::Lit(l) => {
                    input
                        .datatypes
                        .push((p, s, literals.get(l).expect("interned").clone()))
                }
            }
        }
    }
    for (s, c, st) in delta.type_iter() {
        if st == DeltaState::Added {
            input.types.push((s, c));
        }
    }
    input.build()
}

/// K-way merge of subject-sorted `(subject, value)` runs into one
/// subject-sorted run — a min-heap over run heads, O(n log k) (stable:
/// ties broken by run index, preserving the instances-before-literals
/// convention within a shard).
fn kway_merge_by_subject(mut runs: Vec<Vec<(u64, Value)>>) -> Vec<(u64, Value)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    runs.retain(|r| !r.is_empty());
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.pop().expect("len checked"),
        _ => {}
    }
    let total = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Heap key: (subject, run index) — run index both breaks ties
    // deterministically and addresses the cursor.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = runs
        .iter()
        .enumerate()
        .map(|(k, run)| Reverse((run[0].0, k)))
        .collect();
    let mut cursors = vec![0usize; runs.len()];
    while let Some(Reverse((_, k))) = heap.pop() {
        out.push(runs[k][cursors[k]]);
        cursors[k] += 1;
        if let Some(&(s, _)) = runs[k].get(cursors[k]) {
            heap.push(Reverse((s, k)));
        }
    }
    out
}

impl TripleSource for ShardedHybridStore {
    fn instance_id(&self, term: &Term) -> Option<u64> {
        self.dicts.instances.id(&instance_key(term)?)
    }

    fn property_id(&self, iri: &str) -> Option<u64> {
        self.dicts
            .properties
            .id(iri)
            .or_else(|| self.ovf_properties.id(iri))
    }

    fn concept_id(&self, iri: &str) -> Option<u64> {
        self.dicts
            .concepts
            .id(iri)
            .or_else(|| self.ovf_concepts.id(iri))
    }

    fn property_interval(&self, iri: &str) -> Option<IdInterval> {
        self.dicts.properties.interval(iri).or_else(|| {
            self.ovf_properties.id(iri).map(|id| IdInterval {
                lower: id,
                upper: id + 1,
            })
        })
    }

    fn concept_interval(&self, iri: &str) -> Option<IdInterval> {
        self.dicts.concepts.interval(iri).or_else(|| {
            self.ovf_concepts.id(iri).map(|id| IdInterval {
                lower: id,
                upper: id + 1,
            })
        })
    }

    fn value_to_term(&self, value: Value) -> Option<Term> {
        match value {
            Value::Instance(id) => self.dicts.instances.term_arc(id).map(key_to_term_arc),
            Value::Concept(id) => {
                if id >= OVERFLOW_BASE {
                    self.ovf_concepts.term(id).map(Term::Iri)
                } else {
                    self.dicts.concepts.term_arc(id).map(Term::Iri)
                }
            }
            Value::Property(id) => {
                if id >= OVERFLOW_BASE {
                    self.ovf_properties.term(id).map(Term::Iri)
                } else {
                    self.dicts.properties.term_arc(id).map(Term::Iri)
                }
            }
            Value::Literal(idx) => self.literal_content(idx).map(|l| Term::Literal(l.clone())),
        }
    }

    fn literal(&self, idx: u64) -> Option<&Literal> {
        self.literal_content(idx)
    }

    fn objects(&self, p: u64, s: u64) -> Vec<Value> {
        let i = self.routes.prop(p);
        let shard = &self.shards[i];
        let mut out = Vec::new();
        for o in shard.base.objects.objects(p, s) {
            let v = Value::Instance(o);
            if !self.tombstoned(i, p, s, &v) {
                out.push(v);
            }
        }
        for li in shard.base.datatypes.literal_indices(p, s) {
            let v = Value::Literal(i as u64 * LIT_SHARD_STRIDE + li);
            if !self.tombstoned(i, p, s, &v) {
                out.push(v);
            }
        }
        for (o, st) in shard.delta.objects(p, s) {
            if st == DeltaState::Added {
                out.push(Self::obj_to_value(o));
            }
        }
        out
    }

    fn subjects(&self, p: u64, o: &Value) -> Vec<u64> {
        let i = self.routes.prop(p);
        let shard = &self.shards[i];
        match o {
            Value::Instance(oid) => {
                let mut out: Vec<u64> = shard
                    .base
                    .objects
                    .subjects(p, *oid)
                    .into_iter()
                    .filter(|&s| {
                        shard.delta.state(p, s, DeltaObj::Inst(*oid)) != Some(DeltaState::Deleted)
                    })
                    .collect();
                for (s, st) in shard.delta.subjects(p, DeltaObj::Inst(*oid)) {
                    if st == DeltaState::Added {
                        out.push(s);
                    }
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            Value::Literal(idx) => match self.literal_content(*idx) {
                Some(lit) => {
                    let lit = lit.clone();
                    self.subjects_by_literal(p, &lit)
                }
                None => Vec::new(),
            },
            _ => Vec::new(),
        }
    }

    fn subjects_by_literal(&self, p: u64, lit: &Literal) -> Vec<u64> {
        let i = self.routes.prop(p);
        let shard = &self.shards[i];
        let local = self.literals.id(lit);
        let mut out: Vec<u64> = shard
            .base
            .datatypes
            .subjects_by_literal(p, lit)
            .into_iter()
            .filter(|&s| {
                local.map(|l| shard.delta.state(p, s, DeltaObj::Lit(l)))
                    != Some(Some(DeltaState::Deleted))
            })
            .collect();
        if let Some(l) = local {
            for (s, st) in shard.delta.subjects(p, DeltaObj::Lit(l)) {
                if st == DeltaState::Added {
                    out.push(s);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn scan_predicate(&self, p: u64) -> Vec<(u64, Value)> {
        let i = self.routes.prop(p);
        let shard = &self.shards[i];
        let (mut added_inst, mut added_lit) = (Vec::new(), Vec::new());
        for (s, o, st) in shard.delta.scan(p) {
            if st == DeltaState::Added {
                match o {
                    DeltaObj::Inst(_) => added_inst.push((s, Self::obj_to_value(o))),
                    DeltaObj::Lit(_) => added_lit.push((s, Self::obj_to_value(o))),
                }
            }
        }
        let base_inst: Vec<(u64, Value)> = shard
            .base
            .objects
            .scan_predicate(p)
            .into_iter()
            .map(|(s, o)| (s, Value::Instance(o)))
            .collect();
        let base_lit: Vec<(u64, Value)> = shard
            .base
            .datatypes
            .scan_predicate(p)
            .into_iter()
            .map(|(s, li)| (s, Value::Literal(i as u64 * LIT_SHARD_STRIDE + li)))
            .collect();
        let inst = self.merge_pairs(i, base_inst, added_inst, p);
        let lit = self.merge_pairs(i, base_lit, added_lit, p);
        kway_merge_by_subject(vec![inst, lit])
    }

    fn contains(&self, p: u64, s: u64, o: &Value) -> bool {
        let i = self.routes.prop(p);
        let shard = &self.shards[i];
        if let Some(key) = self.delta_key_of(o) {
            if let Some(st) = shard.delta.state(p, s, key) {
                return st.present();
            }
        }
        match o {
            Value::Instance(oid) => shard.base.objects.contains(p, s, *oid),
            Value::Literal(idx) => match self.literal_content(*idx) {
                Some(lit) => shard
                    .base
                    .datatypes
                    .subjects_by_literal(p, lit)
                    .contains(&s),
                None => false,
            },
            _ => false,
        }
    }

    fn objects_interval(&self, p_iv: IdInterval, s: u64) -> Vec<Value> {
        let mut out = Vec::new();
        for p in self.merged_predicates(p_iv.lower, p_iv.upper) {
            out.extend(self.objects(p, s));
        }
        out
    }

    fn subjects_interval(&self, p_iv: IdInterval, o: &Value) -> Vec<u64> {
        let mut out = Vec::new();
        for p in self.merged_predicates(p_iv.lower, p_iv.upper) {
            out.extend(self.subjects(p, o));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn subjects_by_literal_interval(&self, p_iv: IdInterval, lit: &Literal) -> Vec<u64> {
        let mut out = Vec::new();
        for p in self.merged_predicates(p_iv.lower, p_iv.upper) {
            out.extend(self.subjects_by_literal(p, lit));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn scan_interval(&self, p_iv: IdInterval) -> Vec<(u64, Value)> {
        // Fan out to every predicate of every shard intersecting the
        // interval; each per-predicate run is subject-sorted, so the
        // gather is a k-way merge keeping the output subject-sorted.
        let runs: Vec<Vec<(u64, Value)>> = self
            .merged_predicates(p_iv.lower, p_iv.upper)
            .into_iter()
            .map(|p| self.scan_predicate(p))
            .collect();
        kway_merge_by_subject(runs)
    }

    fn subjects_of_concept(&self, c: u64) -> Vec<u64> {
        let i = self.routes.concept(c);
        let shard = &self.shards[i];
        let mut out: Vec<u64> = shard
            .base
            .types
            .subjects_of(c)
            .into_iter()
            .filter(|&s| shard.delta.type_state(s, c) != Some(DeltaState::Deleted))
            .collect();
        for (_, s, st) in shard.delta.type_subjects_in(c, c + 1) {
            if st == DeltaState::Added {
                out.push(s);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn subjects_of_concept_interval(&self, iv: IdInterval) -> Vec<u64> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .base
                    .types
                    .pairs_in_interval(iv)
                    .into_iter()
                    .filter(|&(c, s)| shard.delta.type_state(s, c) != Some(DeltaState::Deleted))
                    .map(|(_, s)| s),
            );
            for (_, s, st) in shard.delta.type_subjects_in(iv.lower, iv.upper) {
                if st == DeltaState::Added {
                    out.push(s);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn concepts_of_subject(&self, s: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .base
                    .types
                    .concepts_of(s)
                    .into_iter()
                    .filter(|&c| shard.delta.type_state(s, c) != Some(DeltaState::Deleted)),
            );
            for (c, st) in shard.delta.type_concepts_of(s, 0, u64::MAX) {
                if st == DeltaState::Added {
                    out.push(c);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn has_type(&self, s: u64, c: u64) -> bool {
        let shard = &self.shards[self.routes.concept(c)];
        match shard.delta.type_state(s, c) {
            Some(st) => st.present(),
            None => shard.base.types.has_type(s, c),
        }
    }

    fn has_type_in_interval(&self, s: u64, iv: IdInterval) -> bool {
        for shard in &self.shards {
            let overlay = shard.delta.type_concepts_of(s, iv.lower, iv.upper);
            if overlay.iter().any(|&(_, st)| st.present()) {
                return true;
            }
            let hit = if overlay.iter().all(|&(_, st)| st != DeltaState::Deleted) {
                shard.base.types.has_type_in_interval(s, iv)
            } else {
                // Some base types of `s` in the interval are tombstoned:
                // check the survivors individually.
                shard.base.types.concepts_of(s).into_iter().any(|c| {
                    iv.contains(c) && shard.delta.type_state(s, c) != Some(DeltaState::Deleted)
                })
            };
            if hit {
                return true;
            }
        }
        false
    }

    fn type_pairs(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .base
                    .types
                    .iter()
                    .filter(|&(s, c)| shard.delta.type_state(s, c) != Some(DeltaState::Deleted)),
            );
            for (s, c, st) in shard.delta.type_iter() {
                if st == DeltaState::Added {
                    out.push((s, c));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| (s.base.len() as isize + s.delta.net_triples()) as usize)
            .sum()
    }

    fn predicate_count(&self, p: u64) -> usize {
        let shard = &self.shards[self.routes.prop(p)];
        let base = shard.base.objects.count_predicate(p) + shard.base.datatypes.count_predicate(p);
        let mut n = base as isize;
        for (_, _, st) in shard.delta.scan(p) {
            match st {
                DeltaState::Added => n += 1,
                DeltaState::Deleted => n -= 1,
                _ => {}
            }
        }
        n.max(0) as usize
    }

    fn predicate_interval_count(&self, iv: IdInterval) -> usize {
        self.merged_predicates(iv.lower, iv.upper)
            .into_iter()
            .map(|p| self.predicate_count(p))
            .sum()
    }

    fn type_count(&self, iv: IdInterval) -> usize {
        let mut n = 0isize;
        for shard in &self.shards {
            n += shard.base.types.count_interval(iv) as isize;
            for (_, _, st) in shard.delta.type_subjects_in(iv.lower, iv.upper) {
                match st {
                    DeltaState::Added => n += 1,
                    DeltaState::Deleted => n -= 1,
                    _ => {}
                }
            }
        }
        n.max(0) as usize
    }

    fn type_total(&self) -> usize {
        let mut n = 0isize;
        for shard in &self.shards {
            n += shard.base.types.len() as isize;
            for (_, _, st) in shard.delta.type_iter() {
                match st {
                    DeltaState::Added => n += 1,
                    DeltaState::Deleted => n -= 1,
                    _ => {}
                }
            }
        }
        n.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::HybridStore;
    use se_sparql::QueryOptions;
    use std::collections::BTreeSet;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(iri(s), Term::iri(format!("http://x/{p}")), o)
    }

    fn ty(s: &str, c: &str) -> Triple {
        Triple::new(iri(s), Term::iri(se_rdf::vocab::rdf::TYPE), iri(c))
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add_class("http://x/C2", "http://x/C1");
        o.add_property("http://x/worksFor", "http://x/memberOf");
        o.add_object_property("http://x/knows");
        o.add_datatype_property("http://x/age");
        o
    }

    fn seed_graph() -> Graph {
        Graph::from_triples([
            ty("a", "C2"),
            ty("b", "C1"),
            t("a", "knows", iri("b")),
            t("a", "worksFor", iri("org")),
            t("b", "memberOf", iri("org")),
            t("a", "age", Term::literal("42")),
        ])
    }

    fn sharded(n: usize) -> ShardedHybridStore {
        ShardedHybridStore::build(&ontology(), &seed_graph(), n).unwrap()
    }

    fn norm(g: &Graph) -> Vec<String> {
        let mut v: Vec<String> = g.iter().map(|t| t.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn baseline_queries_route_across_shards() {
        for n in [1, 2, 3, 5] {
            let h = sharded(n);
            assert_eq!(h.shard_count(), n);
            assert_eq!(h.len(), 6);
            assert_eq!(h.type_total(), 2);
            let knows = h.property_id("http://x/knows").unwrap();
            let a = h.instance_id(&iri("a")).unwrap();
            let b = h.instance_id(&iri("b")).unwrap();
            assert_eq!(h.objects(knows, a), vec![Value::Instance(b)]);
            assert_eq!(h.subjects(knows, &Value::Instance(b)), vec![a]);
            assert!(h.contains(knows, a, &Value::Instance(b)));
            assert_eq!(h.predicate_count(knows), 1);
            // Property-interval reasoning across routed predicates.
            let iv = h.property_interval("http://x/memberOf").unwrap();
            let org = h.instance_id(&iri("org")).unwrap();
            assert_eq!(h.subjects_interval(iv, &Value::Instance(org)).len(), 2);
            assert_eq!(h.predicate_interval_count(iv), 2);
            // Concept-interval reasoning across shards.
            let c1 = h.concept_interval("http://x/C1").unwrap();
            assert_eq!(h.subjects_of_concept_interval(c1).len(), 2);
            assert!(h.has_type_in_interval(a, c1));
            // Literal lookups route through the shard's literal block.
            let age = h.property_id("http://x/age").unwrap();
            let objs = h.objects(age, a);
            assert_eq!(objs.len(), 1);
            assert_eq!(h.value_to_term(objs[0]).unwrap(), Term::literal("42"));
            assert_eq!(h.subjects_by_literal(age, &Literal::string("42")), vec![a]);
        }
    }

    /// The central parity property at unit scale: a sharded store and a
    /// single HybridStore fed the same batches answer identically.
    #[test]
    fn parallel_apply_matches_single_hybrid() {
        let mut sh = sharded(4).with_background_compaction(false);
        let mut single = HybridStore::build(&ontology(), &seed_graph()).unwrap();
        let batches: Vec<(Graph, Graph)> = vec![
            (
                Graph::from_triples([
                    t("c", "knows", iri("a")),
                    t("c", "worksFor", iri("org")),
                    ty("c", "C2"),
                    t("c", "age", Term::literal("7")),
                ]),
                Graph::new(),
            ),
            (
                Graph::from_triples([t("d", "memberOf", iri("org2")), ty("org2", "C1")]),
                Graph::from_triples([t("a", "knows", iri("b")), ty("b", "C1")]),
            ),
            (
                // Re-insert a tombstoned triple; delete an overlay one.
                Graph::from_triples([t("a", "knows", iri("b"))]),
                Graph::from_triples([t("c", "knows", iri("a")), t("c", "age", Term::literal("7"))]),
            ),
        ];
        for (ins, del) in &batches {
            let rs = sh.apply(ins, del).unwrap();
            let rh = single.apply(ins, del).unwrap();
            assert_eq!((rs.inserted, rs.deleted), (rh.inserted, rh.deleted));
            assert_eq!(norm(&sh.materialize()), norm(&single.materialize()));
            assert_eq!(TripleSource::len(&sh), TripleSource::len(&single));
        }
        // SPARQL answers agree too.
        let q = "PREFIX e: <http://x/> SELECT ?s ?o WHERE { ?s e:memberOf ?o }";
        let a = se_sparql::execute_query(&sh, q, &QueryOptions::default()).unwrap();
        let b = se_sparql::execute_query(&single, q, &QueryOptions::default()).unwrap();
        let sort = |rs: &se_sparql::ResultSet| {
            let mut v: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
            v.sort();
            v
        };
        assert_eq!(sort(&a), sort(&b));
    }

    #[test]
    fn overflow_terms_are_queryable_and_survive_compaction() {
        let mut h = sharded(3).with_background_compaction(false);
        h.apply(
            &Graph::from_triples([
                t("newSensor", "emits", iri("a")),
                ty("newSensor", "NewKind"),
                t("newSensor", "reading", Term::literal("7.5")),
            ]),
            &Graph::new(),
        )
        .unwrap();
        let p = h.property_id("http://x/emits").unwrap();
        assert!(p >= OVERFLOW_BASE);
        let ns = h.instance_id(&iri("newSensor")).unwrap();
        let a = h.instance_id(&iri("a")).unwrap();
        assert_eq!(h.subjects(p, &Value::Instance(a)), vec![ns]);
        let iv = h.property_interval("http://x/emits").unwrap();
        assert!(iv.is_singleton());
        assert_eq!(h.objects_interval(iv, ns), vec![Value::Instance(a)]);
        let c = h.concept_id("http://x/NewKind").unwrap();
        assert!(c >= OVERFLOW_BASE);
        assert_eq!(h.subjects_of_concept(c), vec![ns]);
        assert!(h.has_type(ns, c));
        let before = norm(&h.materialize());
        // Folding overflow-id triples into the layers must preserve the
        // view and keep the terms queryable (ids are stable, no
        // re-encode; the interval stays a singleton).
        for i in 0..h.shard_count() {
            h.compact_shard(i);
        }
        assert_eq!(h.overlay_len(), 0);
        assert_eq!(norm(&h.materialize()), before);
        assert_eq!(h.property_id("http://x/emits"), Some(p));
        assert_eq!(h.subjects(p, &Value::Instance(a)), vec![ns]);
        assert_eq!(h.subjects_of_concept(c), vec![ns]);
        let reading = h.property_id("http://x/reading").unwrap();
        let objs = h.objects(reading, ns);
        assert_eq!(objs.len(), 1);
        assert_eq!(h.value_to_term(objs[0]).unwrap(), Term::literal("7.5"));
    }

    #[test]
    fn inline_compaction_triggered_by_policy() {
        let mut h = sharded(2)
            .with_background_compaction(false)
            .with_policy(CompactionPolicy { max_overlay: 2 });
        let report = h
            .apply(
                &Graph::from_triples([
                    t("c", "knows", iri("a")),
                    t("d", "knows", iri("a")),
                    t("e", "knows", iri("a")),
                ]),
                &Graph::new(),
            )
            .unwrap();
        assert_eq!(report.inserted, 3);
        assert!(report.compacted);
        assert!(h.stats().compactions >= 1);
        assert_eq!(h.len(), 9);
        let knows = h.property_id("http://x/knows").unwrap();
        assert_eq!(h.predicate_count(knows), 4);
    }

    #[test]
    fn background_compaction_with_raced_writes() {
        let mut h = sharded(2)
            .with_background_compaction(true)
            .with_policy(CompactionPolicy { max_overlay: 4 });
        let mut reference: BTreeSet<Triple> = seed_graph().iter().cloned().collect();
        let step = |h: &mut ShardedHybridStore,
                    reference: &mut BTreeSet<Triple>,
                    ins: Vec<Triple>,
                    del: Vec<Triple>| {
            for t in &del {
                reference.remove(t);
            }
            for t in &ins {
                reference.insert(t.clone());
            }
            h.apply(&Graph::from_triples(ins), &Graph::from_triples(del))
                .unwrap();
        };
        // Push several batches so rebuilds start while writes keep racing.
        for round in 0..12 {
            let ins = (0..4)
                .map(|k| t(&format!("s{round}_{k}"), "knows", iri("hub")))
                .chain([ty(&format!("s{round}_0"), "C2")])
                .collect();
            let del = if round >= 2 {
                vec![
                    t(&format!("s{}_{}", round - 2, 0), "knows", iri("hub")),
                    ty(&format!("s{}_{}", round - 2, 0), "C2"),
                ]
            } else {
                Vec::new()
            };
            step(&mut h, &mut reference, ins, del);
        }
        h.flush_compactions();
        assert!(
            h.stats().background_compactions >= 1,
            "stream must exercise the background path"
        );
        let expected: Vec<String> = {
            let mut v: Vec<String> = reference.iter().map(|t| t.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&h.materialize()), expected);
        assert_eq!(h.len(), reference.len());
    }

    #[test]
    fn scans_stay_subject_sorted_across_layers_and_overlay() {
        let mut o = Ontology::new();
        o.add_object_property("http://x/p");
        let mut g = Graph::new();
        for i in 0..20 {
            g.insert(t(&format!("s{i:02}"), "p", iri("target")));
        }
        let mut h = ShardedHybridStore::build(&o, &g, 3).unwrap();
        for i in 0..20 {
            h.apply(
                &Graph::from_triples([t(&format!("s{i:02}"), "p", Term::literal(format!("v{i}")))]),
                &Graph::new(),
            )
            .unwrap();
        }
        let p = h.property_id("http://x/p").unwrap();
        let pairs = h.scan_predicate(p);
        assert_eq!(pairs.len(), 40);
        let subjects: Vec<u64> = pairs.iter().map(|(s, _)| *s).collect();
        let mut sorted = subjects.clone();
        sorted.sort_unstable();
        assert_eq!(subjects, sorted, "scan_predicate must stay subject-sorted");
        // Interval fan-out k-way merges the runs subject-sorted too.
        let iv = h.property_interval("http://x/p").unwrap();
        let pairs = h.scan_interval(iv);
        let subjects: Vec<u64> = pairs.iter().map(|(s, _)| *s).collect();
        let mut sorted = subjects.clone();
        sorted.sort_unstable();
        assert_eq!(subjects, sorted, "scan_interval gather must merge sorted");
    }

    #[test]
    fn custom_routing_policy_is_honoured() {
        let all_to_zero = ShardPolicy::ByIri(Arc::new(|_iri: &str, _n: usize| 0));
        let h = ShardedHybridStore::build_with_policy(&ontology(), &seed_graph(), 4, all_to_zero)
            .unwrap();
        assert_eq!(h.len(), 6);
        // Everything routed to shard 0: the other shards stay empty.
        for i in 1..4 {
            assert_eq!(h.shards[i].base.len(), 0);
        }
        let knows = h.property_id("http://x/knows").unwrap();
        assert_eq!(h.routes.prop(knows), 0);
        // Hash policy: deterministic and in range.
        let h2 = ShardedHybridStore::build_with_policy(
            &ontology(),
            &seed_graph(),
            4,
            ShardPolicy::HashIri,
        )
        .unwrap();
        let h3 = ShardedHybridStore::build_with_policy(
            &ontology(),
            &seed_graph(),
            4,
            ShardPolicy::HashIri,
        )
        .unwrap();
        assert_eq!(h2.routes.prop(knows), h3.routes.prop(knows));
        assert_eq!(norm(&h2.materialize()), norm(&h3.materialize()));
    }

    #[test]
    fn noop_deletes_allocate_nothing() {
        let mut h = sharded(2);
        let report = h
            .apply(
                &Graph::new(),
                &Graph::from_triples([
                    t("ghost", "phantom", iri("nowhere")),
                    ty("ghost", "NoClass"),
                    t("ghost", "reading", Term::literal("404")),
                ]),
            )
            .unwrap();
        assert_eq!(report.deleted, 0);
        assert_eq!(report.noops, 3);
        assert_eq!(h.instance_id(&iri("ghost")), None);
        assert_eq!(h.property_id("http://x/phantom"), None);
        assert_eq!(h.concept_id("http://x/NoClass"), None);
        assert_eq!(h.literals.id(&Literal::string("404")), None);
        assert_eq!(h.overlay_len(), 0);
    }

    #[test]
    fn malformed_triples_rejected() {
        let mut h = sharded(2);
        let bad = Triple {
            subject: Term::literal("bad"),
            predicate: Term::iri("http://x/p"),
            object: iri("o"),
        };
        assert!(matches!(
            h.apply(&Graph::from_triples([bad]), &Graph::new()),
            Err(StreamError::Malformed(_))
        ));
        let bad_type = Triple {
            subject: iri("s"),
            predicate: Term::iri(se_rdf::vocab::rdf::TYPE),
            object: Term::literal("bad"),
        };
        assert!(matches!(
            h.apply(&Graph::from_triples([bad_type]), &Graph::new()),
            Err(StreamError::Malformed(_))
        ));
    }

    /// Regression: an inline `compact_shard` must discard any in-flight
    /// background rebuild — otherwise a later poll would swap stale
    /// layers over the fresh ones and silently drop the writes that
    /// landed in between.
    #[test]
    fn inline_compact_discards_stale_background_rebuild() {
        let mut h = sharded(1)
            .with_background_compaction(true)
            .with_policy(CompactionPolicy { max_overlay: 2 });
        // Crosses the threshold: a background rebuild starts against a
        // snapshot that lacks everything after this batch.
        h.apply(
            &Graph::from_triples([t("c", "knows", iri("a")), t("d", "knows", iri("a"))]),
            &Graph::new(),
        )
        .unwrap();
        assert_eq!(h.pending_compactions(), 1);
        // Newer write, then an inline compact folding it in.
        h.apply(
            &Graph::from_triples([t("e", "knows", iri("a"))]),
            &Graph::new(),
        )
        .unwrap();
        h.compact_shard(0);
        assert_eq!(h.pending_compactions(), 0, "stale rebuild discarded");
        // Subsequent applies must never resurrect the stale snapshot.
        h.apply(
            &Graph::from_triples([t("f", "knows", iri("a"))]),
            &Graph::new(),
        )
        .unwrap();
        h.flush_compactions();
        let knows = h.property_id("http://x/knows").unwrap();
        let a = h.instance_id(&iri("a")).unwrap();
        let mut subs = h.subjects(knows, &Value::Instance(a));
        subs.sort_unstable();
        let expect: Vec<u64> = ["c", "d", "e", "f"]
            .iter()
            .map(|s| h.instance_id(&iri(s)).unwrap())
            .collect();
        let mut expect = expect;
        expect.sort_unstable();
        assert_eq!(subs, expect, "no write lost across the race");
    }

    /// The shared overlay-literal table is dropped once every overlay is
    /// empty and no rebuild is pending (and queries still answer from
    /// the folded layers).
    #[test]
    fn literal_table_garbage_collected_when_quiescent() {
        let mut h = sharded(2).with_background_compaction(false);
        h.apply(
            &Graph::from_triples([t("x", "note", Term::literal("hello"))]),
            &Graph::new(),
        )
        .unwrap();
        assert!(h.literals.id(&Literal::string("hello")).is_some());
        for i in 0..h.shard_count() {
            h.compact_shard(i);
        }
        // compact_shard alone does not GC (callers may batch them); the
        // next apply does.
        h.apply(&Graph::new(), &Graph::new()).unwrap();
        assert!(h.literals.literals.is_empty(), "table reclaimed");
        let note = h.property_id("http://x/note").unwrap();
        let x = h.instance_id(&iri("x")).unwrap();
        let objs = h.objects(note, x);
        assert_eq!(objs.len(), 1, "content lives on in the layers");
        assert_eq!(h.value_to_term(objs[0]).unwrap(), Term::literal("hello"));
    }

    #[test]
    fn sharded_store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedHybridStore>();
    }
}
