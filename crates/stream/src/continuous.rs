//! Continuous queries: parsed SPARQL queries registered once and
//! re-evaluated against the hybrid view after every ingested batch —
//! the paper's execution model ("these queries are executed once per
//! graph instance", §1) without rebuilding the store per instance.

use crate::error::StreamError;
use crate::hybrid::{HybridStore, IngestReport};
use se_core::TripleSource;
use se_rdf::Graph;
use se_sparql::ast::Query;
use se_sparql::error::{QueryError, SparqlParseError};
use se_sparql::{parse_query, QueryOptions, ResultSet};

/// One registered continuous query.
#[derive(Debug, Clone)]
pub struct ContinuousQuery {
    /// Caller-chosen identifier (reported with every result).
    pub id: String,
    /// The parsed query (parsed once at registration).
    pub query: Query,
    /// Execution options (reasoning on/off, optimizer switches).
    pub options: QueryOptions,
}

/// The answer of one continuous query after a batch.
#[derive(Debug, Clone)]
pub struct ContinuousResult {
    /// The query's registration id.
    pub id: String,
    /// Its answer set over the post-batch hybrid view.
    pub results: ResultSet,
}

/// Holds parsed continuous queries and evaluates them on demand.
#[derive(Debug, Clone, Default)]
pub struct ContinuousQueryRegistry {
    queries: Vec<ContinuousQuery>,
}

impl ContinuousQueryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and registers a query under `id`. Re-registering an id
    /// replaces the previous query.
    pub fn register(
        &mut self,
        id: impl Into<String>,
        text: &str,
        options: QueryOptions,
    ) -> Result<(), SparqlParseError> {
        let id = id.into();
        let query = parse_query(text)?;
        self.queries.retain(|q| q.id != id);
        self.queries.push(ContinuousQuery { id, query, options });
        Ok(())
    }

    /// Removes the query registered under `id`; returns whether it existed.
    pub fn deregister(&mut self, id: &str) -> bool {
        let before = self.queries.len();
        self.queries.retain(|q| q.id != id);
        self.queries.len() != before
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The registered queries, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ContinuousQuery> + '_ {
        self.queries.iter()
    }

    /// Evaluates every registered query against `source`.
    pub fn evaluate_all<S: TripleSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<Vec<ContinuousResult>, QueryError> {
        self.queries
            .iter()
            .map(|q| {
                Ok(ContinuousResult {
                    id: q.id.clone(),
                    results: se_sparql::exec::execute(source, &q.query, &q.options)?,
                })
            })
            .collect()
    }
}

/// Outcome of one streamed batch: what the ingest did plus every
/// continuous-query answer over the new state.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Ingest accounting (insert/delete/no-op counts, compaction flag).
    pub report: IngestReport,
    /// Continuous-query answers, in registration order.
    pub results: Vec<ContinuousResult>,
}

/// A streaming session: a [`HybridStore`] plus a
/// [`ContinuousQueryRegistry`], driven batch by batch.
#[derive(Debug, Clone)]
pub struct StreamSession {
    store: HybridStore,
    registry: ContinuousQueryRegistry,
}

impl StreamSession {
    /// Wraps an existing hybrid store.
    pub fn new(store: HybridStore) -> Self {
        Self {
            store,
            registry: ContinuousQueryRegistry::new(),
        }
    }

    /// Parses and registers a continuous query.
    pub fn register_query(
        &mut self,
        id: impl Into<String>,
        text: &str,
        options: QueryOptions,
    ) -> Result<(), SparqlParseError> {
        self.registry.register(id, text, options)
    }

    /// The underlying hybrid store.
    pub fn store(&self) -> &HybridStore {
        &self.store
    }

    /// Mutable access (manual compaction, policy changes).
    pub fn store_mut(&mut self) -> &mut HybridStore {
        &mut self.store
    }

    /// The query registry.
    pub fn registry(&self) -> &ContinuousQueryRegistry {
        &self.registry
    }

    /// Ingests one batch (deletes, then inserts), compacts if the policy
    /// demands it, and re-evaluates every registered query.
    pub fn apply_batch(
        &mut self,
        inserts: &Graph,
        deletes: &Graph,
    ) -> Result<BatchOutcome, StreamError> {
        let report = self.store.apply(inserts, deletes)?;
        let results = self.registry.evaluate_all(&self.store)?;
        Ok(BatchOutcome { report, results })
    }
}
