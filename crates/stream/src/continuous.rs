//! Continuous queries: parsed SPARQL queries registered once and
//! re-evaluated against the hybrid view after every ingested batch —
//! the paper's execution model ("these queries are executed once per
//! graph instance", §1) without rebuilding the store per instance.
//!
//! [`StreamSession`] is generic over any ingestible [`TripleSource`]
//! (the [`StreamStore`] seam): the single-overlay [`HybridStore`] and the
//! scatter/gather [`ShardedHybridStore`](crate::ShardedHybridStore) drive
//! the same registry. With more than one registered query the registry
//! can evaluate them concurrently over the shared view — the `Send +
//! Sync` bounds on `TripleSource` make the fan-out free.

use crate::error::StreamError;
use crate::hybrid::{HybridStore, IngestReport};
use crate::runtime::ShardRuntime;
use crate::shard::ShardedHybridStore;
use se_core::TripleSource;
use se_rdf::Graph;
use se_sparql::ast::Query;
use se_sparql::error::{QueryError, SparqlParseError};
use se_sparql::{parse_query, QueryOptions, ResultSet};

/// An updatable [`TripleSource`]: the seam [`StreamSession`] drives.
pub trait StreamStore: TripleSource {
    /// Applies one batch (deletions first, then insertions), returning
    /// the ingest accounting.
    fn apply_batch(
        &mut self,
        inserts: &Graph,
        deletes: &Graph,
    ) -> Result<IngestReport, StreamError>;

    /// The store's persistent worker pool, if it runs one: continuous
    /// queries are evaluated as jobs on these workers instead of
    /// per-batch scoped spawns, so the whole session — ingest,
    /// compaction, query fan-out — shares one bounded thread budget.
    fn shared_runtime(&self) -> Option<&ShardRuntime> {
        None
    }
}

impl StreamStore for HybridStore {
    fn apply_batch(
        &mut self,
        inserts: &Graph,
        deletes: &Graph,
    ) -> Result<IngestReport, StreamError> {
        self.apply(inserts, deletes)
    }
}

impl StreamStore for ShardedHybridStore {
    fn apply_batch(
        &mut self,
        inserts: &Graph,
        deletes: &Graph,
    ) -> Result<IngestReport, StreamError> {
        self.apply(inserts, deletes)
    }

    fn shared_runtime(&self) -> Option<&ShardRuntime> {
        self.runtime()
    }
}

/// One registered continuous query.
#[derive(Debug, Clone)]
pub struct ContinuousQuery {
    /// Caller-chosen identifier (reported with every result).
    pub id: String,
    /// The original SPARQL text — retained so a session checkpoint
    /// ([`StreamSession::save`](crate::persist)) can re-register the
    /// query verbatim after a restart.
    pub text: String,
    /// The parsed query (parsed once at registration).
    pub query: Query,
    /// Execution options (reasoning on/off, optimizer switches).
    pub options: QueryOptions,
}

/// The answer of one continuous query after a batch.
#[derive(Debug, Clone)]
pub struct ContinuousResult {
    /// The query's registration id.
    pub id: String,
    /// Its answer set over the post-batch hybrid view.
    pub results: ResultSet,
}

/// Holds parsed continuous queries and evaluates them on demand.
#[derive(Debug, Clone, Default)]
pub struct ContinuousQueryRegistry {
    queries: Vec<ContinuousQuery>,
}

impl ContinuousQueryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and registers a query under `id`. Re-registering an id
    /// replaces the previous query.
    pub fn register(
        &mut self,
        id: impl Into<String>,
        text: &str,
        options: QueryOptions,
    ) -> Result<(), SparqlParseError> {
        let id = id.into();
        let query = parse_query(text)?;
        self.queries.retain(|q| q.id != id);
        self.queries.push(ContinuousQuery {
            id,
            text: text.to_string(),
            query,
            options,
        });
        Ok(())
    }

    /// Removes the query registered under `id`; returns whether it existed.
    pub fn deregister(&mut self, id: &str) -> bool {
        let before = self.queries.len();
        self.queries.retain(|q| q.id != id);
        self.queries.len() != before
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The registered queries, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ContinuousQuery> + '_ {
        self.queries.iter()
    }

    /// Evaluates every registered query against `source`, sequentially.
    pub fn evaluate_all<S: TripleSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<Vec<ContinuousResult>, QueryError> {
        self.queries
            .iter()
            .map(|q| {
                Ok(ContinuousResult {
                    id: q.id.clone(),
                    results: se_sparql::exec::execute(source, &q.query, &q.options)?,
                })
            })
            .collect()
    }

    /// Evaluates every registered query against `source`, one scoped
    /// worker per query sharing `&S` (sound because [`TripleSource`]
    /// carries `Send + Sync`). Falls back to the sequential path when at
    /// most one query is registered or the host has a single core (a
    /// thread spawn costs more than a cheap query). Results keep
    /// registration order.
    pub fn evaluate_all_parallel<S: TripleSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<Vec<ContinuousResult>, QueryError> {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if self.queries.len() <= 1 || cores <= 1 {
            return self.evaluate_all(source);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .queries
                .iter()
                .map(|q| {
                    scope.spawn(move || se_sparql::exec::execute(source, &q.query, &q.options))
                })
                .collect();
            self.queries
                .iter()
                .zip(handles)
                .map(|(q, h)| {
                    Ok(ContinuousResult {
                        id: q.id.clone(),
                        results: h.join().expect("query worker panicked")?,
                    })
                })
                .collect()
        })
    }

    /// Evaluates every registered query against `source` as jobs on a
    /// store's persistent [`ShardRuntime`] — no per-batch thread spawns.
    /// The runtime distributes the queries over its currently-idle
    /// workers (ones busy with a background rebuild are skipped) and the
    /// call blocks until all have answered, so the borrows of `source`
    /// never outlive the call. Falls back to the sequential path when at
    /// most one query is registered. Results keep registration order.
    pub fn evaluate_all_pooled<S: TripleSource + ?Sized>(
        &self,
        runtime: &ShardRuntime,
        source: &S,
    ) -> Result<Vec<ContinuousResult>, QueryError> {
        if self.queries.len() <= 1 {
            return self.evaluate_all(source);
        }
        let mut answers: Vec<Option<Result<ResultSet, QueryError>>> =
            (0..self.queries.len()).map(|_| None).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = self
            .queries
            .iter()
            .zip(answers.iter_mut())
            .map(|(q, slot)| {
                Box::new(move || {
                    *slot = Some(se_sparql::exec::execute(source, &q.query, &q.options));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        if let Err(msg) = runtime.run_scoped(tasks) {
            // Mirror the scoped path's contract: a panicking query worker
            // panics the caller, with the payload preserved.
            panic!("query worker panicked: {msg}");
        }
        self.queries
            .iter()
            .zip(answers)
            .map(|(q, answer)| {
                Ok(ContinuousResult {
                    id: q.id.clone(),
                    results: answer.expect("run_scoped ran every task")?,
                })
            })
            .collect()
    }
}

/// Outcome of one streamed batch: what the ingest did plus every
/// continuous-query answer over the new state.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Ingest accounting (insert/delete/no-op counts, compaction flag).
    pub report: IngestReport,
    /// Continuous-query answers, in registration order.
    pub results: Vec<ContinuousResult>,
}

/// A streaming session: an ingestible store (single-overlay
/// [`HybridStore`] by default, or the scatter/gather
/// [`ShardedHybridStore`](crate::ShardedHybridStore)) plus a
/// [`ContinuousQueryRegistry`], driven batch by batch.
#[derive(Debug, Clone)]
pub struct StreamSession<S: StreamStore = HybridStore> {
    store: S,
    registry: ContinuousQueryRegistry,
}

impl<S: StreamStore> StreamSession<S> {
    /// Wraps an existing store.
    pub fn new(store: S) -> Self {
        Self {
            store,
            registry: ContinuousQueryRegistry::new(),
        }
    }

    /// Parses and registers a continuous query.
    pub fn register_query(
        &mut self,
        id: impl Into<String>,
        text: &str,
        options: QueryOptions,
    ) -> Result<(), SparqlParseError> {
        self.registry.register(id, text, options)
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access (manual compaction, policy changes).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// The query registry.
    pub fn registry(&self) -> &ContinuousQueryRegistry {
        &self.registry
    }

    /// Mutable registry access (re-registering, deregistering).
    pub fn registry_mut(&mut self) -> &mut ContinuousQueryRegistry {
        &mut self.registry
    }

    /// Ingests one batch (deletes, then inserts), compacts if the policy
    /// demands it, and re-evaluates every registered query over the new
    /// state — on the store's persistent worker pool when it runs one
    /// (sharing the ingest workers' thread budget), otherwise on scoped
    /// spawns when more than one query is registered.
    pub fn apply_batch(
        &mut self,
        inserts: &Graph,
        deletes: &Graph,
    ) -> Result<BatchOutcome, StreamError> {
        let report = self.store.apply_batch(inserts, deletes)?;
        let results = match self.store.shared_runtime() {
            Some(runtime) => self.registry.evaluate_all_pooled(runtime, &self.store)?,
            None => self.registry.evaluate_all_parallel(&self.store)?,
        };
        Ok(BatchOutcome { report, results })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::CompactionPolicy;
    use se_ontology::Ontology;
    use se_rdf::{Term, Triple};

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(iri(s), Term::iri(format!("http://x/{p}")), o)
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add_object_property("http://x/knows");
        o.add_object_property("http://x/likes");
        o
    }

    fn store_with(triples: impl IntoIterator<Item = Triple>) -> HybridStore {
        HybridStore::build(&ontology(), &Graph::from_triples(triples)).unwrap()
    }

    #[test]
    fn reregistering_an_id_replaces_the_query() {
        let store = store_with([t("a", "knows", iri("b")), t("a", "likes", iri("c"))]);
        let mut reg = ContinuousQueryRegistry::new();
        reg.register(
            "q",
            "PREFIX e: <http://x/> SELECT ?o WHERE { e:a e:knows ?o }",
            QueryOptions::default(),
        )
        .unwrap();
        assert_eq!(reg.evaluate_all(&store).unwrap()[0].results.len(), 1);
        // Same id, different query: the old one must be gone, position
        // and count unchanged.
        reg.register(
            "q",
            "PREFIX e: <http://x/> SELECT ?o WHERE { e:a e:likes ?o }",
            QueryOptions::default(),
        )
        .unwrap();
        assert_eq!(reg.len(), 1);
        let results = reg.evaluate_all(&store).unwrap();
        assert_eq!(results[0].id, "q");
        let row = &results[0].results.rows[0];
        assert_eq!(row[0].as_ref().unwrap(), &iri("c"));
    }

    #[test]
    fn deregister_removes_and_reports() {
        let mut reg = ContinuousQueryRegistry::new();
        reg.register(
            "one",
            "PREFIX e: <http://x/> SELECT ?o WHERE { e:a e:knows ?o }",
            QueryOptions::default(),
        )
        .unwrap();
        reg.register(
            "two",
            "PREFIX e: <http://x/> SELECT ?o WHERE { e:a e:likes ?o }",
            QueryOptions::default(),
        )
        .unwrap();
        assert!(reg.deregister("one"));
        assert!(!reg.deregister("one"), "second removal reports absence");
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        let ids: Vec<&str> = reg.iter().map(|q| q.id.as_str()).collect();
        assert_eq!(ids, vec!["two"]);
        assert!(reg.deregister("two"));
        assert!(reg.is_empty());
    }

    #[test]
    fn registration_rejects_unparseable_queries() {
        let mut reg = ContinuousQueryRegistry::new();
        assert!(reg
            .register("bad", "SELECT WHERE {", QueryOptions::default())
            .is_err());
        assert!(reg.is_empty(), "failed registration leaves no residue");
    }

    /// Continuous-query answers must be identical on the batch that
    /// crosses a compaction boundary and on the batches around it — the
    /// registry never notices the baseline swap.
    #[test]
    fn results_stable_across_compaction_boundary() {
        let store = store_with([t("a", "knows", iri("hub"))])
            .with_policy(CompactionPolicy { max_overlay: 3 });
        let mut session = StreamSession::new(store);
        session
            .register_query(
                "members",
                "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:knows e:hub }",
                QueryOptions::default(),
            )
            .unwrap();
        let mut expected = 1usize;
        let mut crossed = false;
        for round in 0..6 {
            let inserts = Graph::from_triples([t(&format!("n{round}"), "knows", iri("hub"))]);
            let out = session.apply_batch(&inserts, &Graph::new()).unwrap();
            expected += 1;
            assert_eq!(
                out.results[0].results.len(),
                expected,
                "round {round}: answer drifted (compacted={})",
                out.report.compacted
            );
            crossed |= out.report.compacted;
        }
        assert!(crossed, "the stream must cross a compaction boundary");
        // Evaluating again without a batch gives the same answers —
        // parallel and sequential paths agree.
        let seq = session.registry().evaluate_all(session.store()).unwrap();
        let par = session
            .registry()
            .evaluate_all_parallel(session.store())
            .unwrap();
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq[0].results.rows.len(), par[0].results.rows.len());
    }

    /// The sharded store drives the same generic session.
    #[test]
    fn session_is_generic_over_the_sharded_store() {
        let store = ShardedHybridStore::build(
            &ontology(),
            &Graph::from_triples([t("a", "knows", iri("hub"))]),
            2,
        )
        .unwrap();
        let mut session = StreamSession::new(store);
        session
            .register_query(
                "q",
                "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:knows e:hub }",
                QueryOptions::default(),
            )
            .unwrap();
        let out = session
            .apply_batch(
                &Graph::from_triples([t("b", "knows", iri("hub"))]),
                &Graph::new(),
            )
            .unwrap();
        assert_eq!(out.report.inserted, 1);
        assert_eq!(out.results[0].results.len(), 2);
        session.store_mut().flush_compactions();
    }
}
